#!/usr/bin/env bash
# CI gate: byte-compile the whole package, then run the tier-1 test suite.
# Usage: scripts/ci_check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 tests =="
# --durations=15 keeps the slowest tests visible so suite latency creep is
# caught in review, not discovered months later.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q --durations=15 "$@"

echo "== service smoke test (repro-serve --self-test) =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.service.cli --self-test

echo "== feature engine smoke benchmark (BENCH_features.json) =="
# --min-speedup 0: the smoke run checks the equivalence oracles and emits the
# report; the wall-clock floor stays for manual/release invocations only
# (timing assertions on shared CI runners are load-dependent).
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_feature_engine.py --min-speedup 0 > /dev/null

echo "== batch planning smoke benchmark (BENCH_planning.json) =="
# --small --min-speedup 0: a timing-independent run of the dense-vs-sparse
# planning oracle — it *asserts* identical DBSCAN labels and covering
# selections between the two paths; the 5x speedup floor is checked by the
# full-size manual invocation (benchmarks/bench_batch_planning.py --min-speedup 5).
# The smoke report goes to a scratch file so it never clobbers a full-size
# BENCH_planning.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_batch_planning.py \
  --small --min-speedup 0 --report "$(mktemp)" > /dev/null

echo "== engines smoke benchmark (BENCH_async.json) =="
# --small --min-speedup 0: a dispatch-identity and retry-parity oracle, not a
# stopwatch — it *asserts* that the simulated engine through AsyncExecutor is
# byte-identical to serial dispatch and that an OpenAI-dialect engine over a
# flaky scripted transport retries to the same responses with zero
# double-counted usage records.  Timing floors are for manual invocations.
# The smoke report goes to a scratch file so it never clobbers a full-size
# BENCH_async.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_async_dispatch.py \
  --small --min-speedup 0 --report "$(mktemp)" > /dev/null

echo "== sharded run engine smoke benchmark (BENCH_engine.json) =="
# --small: a crash-resume oracle, not a stopwatch — it *asserts* that the
# sharded run is byte-identical to the unsharded path and that a run killed
# mid-flight resumes from its checkpoints with zero repeated LLM calls.
# The smoke report goes to a scratch file so it never clobbers a full-size
# BENCH_engine.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_sharded_run.py \
  --small --report "$(mktemp)" > /dev/null

echo "== OK =="
