#!/usr/bin/env bash
# CI gate: byte-compile the whole package, then run the tier-1 test suite.
# Usage: scripts/ci_check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 tests =="
# --durations=15 keeps the slowest tests visible so suite latency creep is
# caught in review, not discovered months later.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q --durations=15 "$@"

echo "== service smoke test (repro-serve --self-test) =="
# The self-test also validates the observability surface end to end: it runs
# one traced pass and one untraced pass (equal labels prove instrumentation
# never alters results), asserts span nesting, and scrapes its own
# GET /metrics over HTTP to check the Prometheus exposition is well-formed
# with populated latency histograms, retry counters and cache hit-rate gauges.
# It additionally serves itself on BOTH HTTP front ends (asyncio + threaded)
# to assert byte-identical bodies and HEAD support, and checks the tenant
# admission layer (quota reject/recover, budget blocking, API-key auth) on a
# fake clock.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.service.cli --self-test

echo "== observability smoke (traced run + repro-trace render) =="
# A fixed-seed traced pipeline run persists its spans as JSONL; the reader
# must parse the file, the spans must nest under one batcher:run root, and
# the repro-trace CLI must render the latency tree from the same file.
OBS_TRACE="$(mktemp)"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - "$OBS_TRACE" <<'PY'
import sys

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.data.registry import load_dataset
from repro.observability import JsonlTraceSink, Tracer, read_trace_file

trace_path = sys.argv[1]
with JsonlTraceSink(trace_path) as sink:
    dataset = load_dataset("beer", seed=7, scale=1.0)
    BatchER(BatcherConfig(seed=1, max_questions=8), tracer=Tracer(sink=sink)).run(dataset)
spans = read_trace_file(trace_path)
assert spans, "traced run persisted no spans"
roots = [span for span in spans if span["parent"] is None]
assert [root["name"] for root in roots] == ["batcher:run"], roots
known = {span["span"] for span in spans}
assert all(span["parent"] in known for span in spans if span["parent"] is not None)
assert any(str(span["name"]).startswith("stage:") for span in spans)
PY
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.observability.cli "$OBS_TRACE" --top 5 > /dev/null
rm -f "$OBS_TRACE"

echo "== observability smoke benchmark (BENCH_observability.json) =="
# --small --max-overhead-pct 0: an identity and trace-shape oracle, not a
# stopwatch — it *asserts* that a traced run returns byte-identical results
# to the untraced run and that the persisted trace nests correctly; the
# wall-clock overhead floor stays for manual/release invocations
# (benchmarks/bench_observability.py asserts <= 5% by default).
# The smoke report goes to a scratch file so it never clobbers a full-size
# BENCH_observability.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_observability.py \
  --small --max-overhead-pct 0 --report "$(mktemp)" > /dev/null

echo "== feature engine smoke benchmark (BENCH_features.json) =="
# --min-speedup 0: the smoke run checks the equivalence oracles and emits the
# report; the wall-clock floor stays for manual/release invocations only
# (timing assertions on shared CI runners are load-dependent).
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_feature_engine.py --min-speedup 0 > /dev/null

echo "== batch planning smoke benchmark (BENCH_planning.json) =="
# --small --min-speedup 0 --min-lsh-speedup 0: a timing-independent run of
# the planning oracles — it *asserts* identical DBSCAN labels and covering
# selections across the dense / exact-sparse / LSH arms, and at n = 5000 it
# rebuilds the exact graph to check the LSH subgraph property and the
# >= 0.95 edge-recall floor.  The wall-clock floors (dense-vs-sparse and
# LSH-vs-exact-sparse speedups) are checked by the full-size manual
# invocation (benchmarks/bench_batch_planning.py --min-speedup 5
# --min-lsh-speedup 5 --n 1000000).  The smoke report goes to a scratch
# file so it never clobbers a full-size BENCH_planning.json.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_batch_planning.py \
  --small --min-speedup 0 --min-lsh-speedup 0 --report "$(mktemp)" > /dev/null

echo "== engines smoke benchmark (BENCH_async.json) =="
# --small --min-speedup 0: a dispatch-identity and retry-parity oracle, not a
# stopwatch — it *asserts* that the simulated engine through AsyncExecutor is
# byte-identical to serial dispatch and that an OpenAI-dialect engine over a
# flaky scripted transport retries to the same responses with zero
# double-counted usage records.  Timing floors are for manual invocations.
# The smoke report goes to a scratch file so it never clobbers a full-size
# BENCH_async.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_async_dispatch.py \
  --small --min-speedup 0 --report "$(mktemp)" > /dev/null

echo "== sharded run engine smoke benchmark (BENCH_engine.json) =="
# --small: a crash-resume oracle, not a stopwatch — it *asserts* that the
# sharded run is byte-identical to the unsharded path and that a run killed
# mid-flight resumes from its checkpoints with zero repeated LLM calls.
# The smoke report goes to a scratch file so it never clobbers a full-size
# BENCH_engine.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_sharded_run.py \
  --small --report "$(mktemp)" > /dev/null

echo "== resilience chaos smoke benchmark (BENCH_resilience.json) =="
# Deterministic chaos harness on the fake clock — zero real sleeps.  It
# *asserts* the breaker-open p50 is <1% of the full-retry-ladder baseline
# against a dead backend, that a flapping backend recovers within one
# half-open probe cycle, that a deadline budget caps a slow-but-alive stall
# below the unbudgeted ladder, and that a healthy run with the breaker wired
# is byte-identical to one without.  The smoke report goes to a scratch file
# so it never clobbers a full-size BENCH_resilience.json with small-n numbers.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_resilience.py \
  --small --report "$(mktemp)" > /dev/null

echo "== serving latency smoke benchmark (BENCH_latency.json) =="
# --small --oracles-only: timing-independent — it *asserts* that the asyncio
# front end answers byte-identically to the threaded one (both delegate to
# the shared ServiceRouter) and that a greedy tenant hammering admission at
# 10x quota cannot starve a quota-respecting tenant (virtual-clock token
# buckets).  The p50/p95/p99 load arm runs only on manual/release
# invocations; the smoke report goes to a scratch file so it never clobbers
# the tracked full-size BENCH_latency.json.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_latency.py \
  --small --oracles-only --report "$(mktemp)" > /dev/null

echo "== OK =="
