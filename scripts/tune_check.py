"""Developer tuning harness: quick shape check across datasets and strategies.

Not part of the library API; used while calibrating the simulated LLM and the
synthetic datasets so that the reproduced experiments have the paper's shape.
"""

import argparse
import time

from repro import BatchER, BatcherConfig, load_dataset
from repro.core.standard import StandardPromptingER

SCALES = {
    "wa": 0.06, "ab": 0.06, "ag": 0.06, "ds": 0.025, "da": 0.05,
    "fz": 1.0, "ia": 1.0, "beer": 1.0,
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--datasets", nargs="*", default=list(SCALES))
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    start = time.time()
    for name in args.datasets:
        dataset = load_dataset(name, seed=args.seed, scale=SCALES[name])
        config = BatcherConfig(seed=args.seed)
        standard = StandardPromptingER(config).run(dataset)
        fixed_random = BatchER(config.with_overrides(batching="random", selection="fixed")).run(dataset)
        diverse_cover = BatchER(config.with_overrides(batching="diverse", selection="covering")).run(dataset)
        similar_fixed = BatchER(config.with_overrides(batching="similar", selection="fixed")).run(dataset)
        topkq = BatchER(config.with_overrides(batching="diverse", selection="topk-question")).run(dataset)
        print(
            f"{name:5s} n={standard.num_questions:4d} | "
            f"std F1={standard.metrics.f1:5.1f} P={standard.metrics.precision:4.1f} api={standard.cost.api_cost:6.3f} | "
            f"rand+fix F1={fixed_random.metrics.f1:5.1f} api={fixed_random.cost.api_cost:6.3f} | "
            f"sim+fix F1={similar_fixed.metrics.f1:5.1f} | "
            f"div+tkq F1={topkq.metrics.f1:5.1f} lab={topkq.cost.labeling_cost:6.3f} | "
            f"div+cov F1={diverse_cover.metrics.f1:5.1f} P={diverse_cover.metrics.precision:4.1f} "
            f"lab={diverse_cover.cost.labeling_cost:6.3f}"
        )
    print(f"elapsed {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
