"""Thin wrapper around :mod:`repro.experiments.tune_check`.

The implementation lives in the package so the installed ``repro-tune-check``
console script and this in-repo script share one code path.
Run with:  PYTHONPATH=src python scripts/tune_check.py
"""

from repro.experiments.tune_check import main

if __name__ == "__main__":
    raise SystemExit(main())
