"""Packaging metadata for the BatchER reproduction.

Installs the ``repro`` package from ``src/`` plus console entry points for the
developer tuning harness and the experiment report runner.
"""

from pathlib import Path

from setuptools import find_packages, setup

_readme = Path(__file__).parent / "README.md"

setup(
    name="batcher-repro",
    version="1.10.0",
    description=(
        "Reproduction of 'Cost-Effective In-Context Learning for Entity "
        "Resolution: A Design Space Exploration' (ICDE 2024) with a staged "
        "pipeline API, concurrent LLM dispatch, a streaming Resolver, a "
        "micro-batching resolution server, a sharded, checkpointable "
        "run engine and a unified tracing + metrics layer"
    ),
    long_description=_readme.read_text(encoding="utf-8") if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    entry_points={
        "console_scripts": [
            "repro-tune-check=repro.experiments.tune_check:main",
            "repro-experiments=repro.experiments.runner:main",
            "repro-serve=repro.service.cli:main",
            "repro-trace=repro.observability.cli:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
