"""Small shared utilities.

Currently: stable seeding.  Python's built-in ``hash`` of strings is randomised
per process (PYTHONHASHSEED), so anything that derives RNG seeds from strings
must go through :func:`stable_seed` to keep datasets and simulations
reproducible across processes and machines.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: object) -> int:
    """Derive a deterministic 64-bit seed from arbitrary string-convertible parts."""
    text = "||".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")
