"""Multi-tenant admission: API keys, per-tenant quotas and cost budgets.

A :class:`TenantConfig` declares one tenant of the serving layer — an API key,
a requests-per-second quota and an optional cost budget.  At runtime the
:class:`TenantManager` authenticates API keys to live :class:`Tenant` objects
and enforces both limits at admission time:

* **quota** — a token bucket (the same
  :class:`~repro.engines.transport.TokenBucket` the LLM transport throttles
  with) debited one unit per submitted pair.  Serving admission differs from
  transport throttling in one way: an over-quota request is *rejected* with
  :class:`TenantQuotaExceeded` (HTTP 429 + ``Retry-After``) instead of slept,
  and the refusal leaves the bucket untouched — a greedy tenant hammering the
  front end cannot drive its own bucket into unbounded debt, so its next
  within-quota request is admitted as soon as the bucket genuinely refills.
* **budget** — per-tenant cost attribution extending the service's global
  cost-aware admission: each live (uncached) resolution charges its owning
  tenant the flush's marginal cost, and once a tenant's cumulative spend
  reaches its ``cost_budget`` new uncached work is refused with
  :class:`TenantBudgetExceeded` (HTTP 429) while cache hits keep serving —
  per tenant, the same degrade-to-a-cache semantics the session budget has.

Tenancy is opt-in: a service with no configured tenants admits anonymous
traffic exactly as before, and :attr:`ServiceConfig.require_api_key` decides
whether keyless requests are served anonymously or refused with
:class:`UnknownTenant` (HTTP 401).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping

from repro.engines.transport import Clock, TokenBucket
from repro.service.microbatcher import AdmissionError

__all__ = [
    "Tenant",
    "TenantBudgetExceeded",
    "TenantConfig",
    "TenantManager",
    "TenantQuotaExceeded",
    "UnknownTenant",
    "ANONYMOUS_TENANT",
]

#: Metric label used for unauthenticated traffic.
ANONYMOUS_TENANT = "anonymous"


class UnknownTenant(AdmissionError):
    """Missing or unrecognized API key on a service that requires one.

    The HTTP layer maps this to 401 (the key identifies, it does not merely
    authorize, so 401 fits better than 403).
    """


class TenantQuotaExceeded(AdmissionError):
    """A tenant exceeded its requests-per-second quota (HTTP 429).

    Attributes:
        tenant: name of the over-quota tenant.
        retry_after: seconds until the tenant's bucket can afford one unit.
    """

    def __init__(self, message: str, tenant: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = max(0.0, retry_after)


class TenantBudgetExceeded(AdmissionError):
    """A tenant's cumulative cost reached its budget (HTTP 429).

    Cache hits are still served — per tenant, the budget degrades service to
    a cache, it does not go dark.

    Attributes:
        tenant: name of the budget-exhausted tenant.
    """

    def __init__(self, message: str, tenant: str) -> None:
        super().__init__(message)
        self.tenant = tenant


@dataclass(frozen=True)
class TenantConfig:
    """Declaration of one serving tenant.

    Attributes:
        name: stable tenant identifier (metric label, ``/stats`` key).
        api_key: the key presented in the ``X-API-Key`` request header.
        requests_per_second: quota rate in submitted pairs per second;
            ``None`` disables the quota bucket for this tenant.
        burst: bucket capacity in pairs — how many requests may arrive back
            to back before the rate cap bites (defaults to one second's worth
            of quota, minimum 1).
        cost_budget: optional per-tenant budget in dollars; once the tenant's
            attributed cost reaches it, new uncached work is refused.
    """

    name: str
    api_key: str
    requests_per_second: float | None = None
    burst: float | None = None
    cost_budget: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.api_key:
            raise ValueError(f"tenant {self.name!r} needs a non-empty api_key")
        if self.requests_per_second is not None and self.requests_per_second <= 0:
            raise ValueError(
                f"tenant {self.name!r}: requests_per_second must be > 0, "
                f"got {self.requests_per_second}"
            )
        if self.burst is not None and self.burst < 1:
            raise ValueError(
                f"tenant {self.name!r}: burst must be >= 1, got {self.burst}"
            )
        if self.cost_budget is not None and self.cost_budget <= 0:
            raise ValueError(
                f"tenant {self.name!r}: cost_budget must be > 0, "
                f"got {self.cost_budget}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict snapshot (JSON-serializable)."""
        return {
            "name": self.name,
            "api_key": self.api_key,
            "requests_per_second": self.requests_per_second,
            "burst": self.burst,
            "cost_budget": self.cost_budget,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantConfig":
        """Rebuild a config from a :meth:`to_dict` snapshot."""
        known = {config_field.name for config_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown tenant config fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


class Tenant:
    """Runtime state of one tenant: quota bucket, spend, counters.

    Built by the :class:`TenantManager`; all counters are thread-safe, and
    the quota bucket reads time through the injected clock, so tests drive
    admission with a :class:`~repro.engines.faults.FakeClock`.
    """

    def __init__(self, config: TenantConfig, clock: Clock | None = None) -> None:
        self.config = config
        self._clock = clock or Clock()
        rate = config.requests_per_second
        self._bucket = (
            TokenBucket(
                rate,
                capacity=config.burst if config.burst is not None else max(1.0, rate),
                clock=self._clock,
            )
            if rate is not None
            else None
        )
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected_quota = 0
        self._rejected_budget = 0
        self._spent = 0.0

    @property
    def name(self) -> str:
        """The tenant's stable identifier."""
        return self.config.name

    @property
    def spent(self) -> float:
        """Cost attributed to this tenant so far, in dollars."""
        with self._lock:
            return self._spent

    def admit(self, units: int = 1) -> None:
        """Pass one admission check of ``units`` submitted pairs.

        Raises:
            TenantQuotaExceeded: when the quota bucket cannot afford the
                units right now (nothing is debited on refusal).
        """
        if self._bucket is not None:
            wait = self._bucket.try_reserve(float(units))
            if wait > 0:
                with self._lock:
                    self._rejected_quota += 1
                raise TenantQuotaExceeded(
                    f"tenant {self.name!r} exceeded its quota of "
                    f"{self.config.requests_per_second:g} pairs/s; "
                    f"retry in {wait:.3f}s",
                    tenant=self.name,
                    retry_after=wait,
                )
        with self._lock:
            self._admitted += units

    def check_budget(self) -> None:
        """Refuse new uncached work once the tenant budget is spent.

        Raises:
            TenantBudgetExceeded: when ``cost_budget`` is set and reached.
        """
        budget = self.config.cost_budget
        if budget is None:
            return
        with self._lock:
            spent = self._spent
        if spent >= budget:
            with self._lock:
                self._rejected_budget += 1
            raise TenantBudgetExceeded(
                f"tenant {self.name!r} spent ${spent:.4f} of its "
                f"${budget:.4f} budget; only cached pairs are served",
                tenant=self.name,
            )

    def charge(self, amount: float) -> None:
        """Attribute ``amount`` dollars of resolution cost to this tenant."""
        if amount <= 0:
            return
        with self._lock:
            self._spent += amount

    def stats(self) -> dict[str, Any]:
        """JSON-serializable snapshot for the ``/stats`` tenant block."""
        with self._lock:
            snapshot = {
                "admitted": self._admitted,
                "rejected_quota": self._rejected_quota,
                "rejected_budget": self._rejected_budget,
                "cost_spent": round(self._spent, 8),
            }
        snapshot["requests_per_second"] = self.config.requests_per_second
        snapshot["cost_budget"] = self.config.cost_budget
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tenant(name={self.name!r}, "
            f"rps={self.config.requests_per_second}, "
            f"budget={self.config.cost_budget})"
        )


class TenantManager:
    """Authenticates API keys and owns every tenant's runtime state.

    Args:
        configs: the declared tenants; duplicate names or API keys raise.
        require_api_key: when true, :meth:`authenticate` refuses keyless or
            unknown-key requests; when false they map to ``None`` (anonymous,
            admitted without tenant limits).
        clock: time source shared by every tenant's quota bucket.
    """

    def __init__(
        self,
        configs: Iterable[TenantConfig] = (),
        require_api_key: bool = False,
        clock: Clock | None = None,
    ) -> None:
        clock = clock or Clock()
        self._tenants: dict[str, Tenant] = {}
        self._by_key: dict[str, Tenant] = {}
        for config in configs:
            if config.name in self._tenants:
                raise ValueError(f"duplicate tenant name {config.name!r}")
            if config.api_key in self._by_key:
                raise ValueError(
                    f"tenants {self._by_key[config.api_key].name!r} and "
                    f"{config.name!r} share an API key"
                )
            tenant = Tenant(config, clock=clock)
            self._tenants[config.name] = tenant
            self._by_key[config.api_key] = tenant
        self.require_api_key = require_api_key
        if require_api_key and not self._tenants:
            raise ValueError("require_api_key needs at least one configured tenant")

    def __len__(self) -> int:
        return len(self._tenants)

    @property
    def names(self) -> tuple[str, ...]:
        """Configured tenant names, declaration order."""
        return tuple(self._tenants)

    def authenticate(self, api_key: str | None) -> Tenant | None:
        """Resolve an API key to its tenant.

        Returns ``None`` for anonymous traffic when keys are optional.

        Raises:
            UnknownTenant: for a missing key when ``require_api_key`` is set,
                or for a key that matches no tenant (always — presenting a
                wrong key is an error even on an open service).
        """
        if api_key is None or api_key == "":
            if self.require_api_key:
                raise UnknownTenant(
                    "this service requires an API key (X-API-Key header)"
                )
            return None
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise UnknownTenant("unknown API key")
        return tenant

    def get(self, name: str) -> Tenant | None:
        """The named tenant, or ``None``."""
        return self._tenants.get(name)

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-tenant ``/stats`` blocks, keyed by tenant name."""
        return {name: tenant.stats() for name, tenant in self._tenants.items()}
