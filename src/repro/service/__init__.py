"""Online serving subsystem: micro-batching resolution server.

The paper amortizes per-question token cost *within* one run's batches; this
package applies the same amortization *across concurrent callers*.  Many
producers submit single :class:`~repro.data.schema.EntityPair` requests; a
bounded :class:`RequestQueue` plus :class:`MicroBatcher` aggregates them and
flushes micro-batches through one shared streaming
:class:`~repro.pipeline.resolver.Resolver` session, so the instruction and
demonstration tokens of each prompt are shared by questions from different
callers.

Layers:

* :class:`ResultCache` — pair-level LRU keyed by canonical content
  fingerprints (:func:`pair_fingerprint`, shared with the columnar feature
  engine), with optional JSONL spill / warm-start; repeat queries cost zero
  LLM calls, and spilled entries carry their feature vectors so a restart
  warm-starts the session's :class:`~repro.features.engine.FeatureStore` too.
* :class:`RequestQueue` / :class:`MicroBatcher` — bounded admission with
  backpressure, and size-or-deadline flushing.
* :class:`ResolutionService` — the facade: cache lookup, in-flight
  deduplication, cost-aware admission (:class:`CostBudgetExceeded` once the
  session budget is spent), ``submit`` / ``resolve_many`` / ``stats``, and
  the engine-backed ``resolve_bulk`` path that shards large submissions
  deterministically past the micro-batch queue (counters under
  ``stats().engine``).
* :mod:`repro.service.tenants` — multi-tenant admission: API keys
  (``X-API-Key``) resolving to per-tenant requests-per-second quotas
  (non-debiting token-bucket rejection → 429 + ``Retry-After``) and cost
  budgets (attributed flush costs; exhausted tenants degrade to cache hits).
* :mod:`repro.service.http` / :mod:`repro.service.aio` — two stdlib HTTP
  JSON front ends (``POST /resolve``, ``POST /bulk``, ``GET /stats``,
  ``GET /healthz``; every GET route answers HEAD) sharing one
  transport-agnostic ``ServiceRouter``, so the threaded and asyncio servers
  answer byte-identically; exposed via the ``repro-serve`` console script
  (:mod:`repro.service.cli`, ``--frontend async|threaded``).
"""

from repro.service.cache import CachedResult, ResultCache, pair_fingerprint
from repro.service.config import ServiceConfig
from repro.service.microbatcher import (
    AdmissionError,
    MicroBatcher,
    PendingRequest,
    RequestQueue,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.service.service import (
    CostBudgetExceeded,
    EngineStats,
    ResolutionService,
    ServiceDegraded,
    ServiceStats,
)
from repro.service.tenants import (
    Tenant,
    TenantBudgetExceeded,
    TenantConfig,
    TenantManager,
    TenantQuotaExceeded,
    UnknownTenant,
)

__all__ = [
    "AdmissionError",
    "CachedResult",
    "CostBudgetExceeded",
    "EngineStats",
    "MicroBatcher",
    "PendingRequest",
    "RequestQueue",
    "ResolutionService",
    "ResultCache",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceDegraded",
    "ServiceOverloaded",
    "ServiceStats",
    "Tenant",
    "TenantBudgetExceeded",
    "TenantConfig",
    "TenantManager",
    "TenantQuotaExceeded",
    "UnknownTenant",
    "pair_fingerprint",
]
