"""The resolution service facade: cache → admission → queue → micro-batch.

:class:`ResolutionService` wraps one shared :class:`~repro.pipeline.resolver.
Resolver` session behind a bounded request queue and a micro-batching
consumer.  A submitted pair takes one of three paths:

1. **cache hit** — the canonical content fingerprint is already cached; the
   returned future is completed immediately at zero LLM cost;
2. **in-flight join** — an identical pair is already queued or being resolved;
   the new future attaches to the pending entry, so one LLM question serves
   every duplicate submitter;
3. **admission** — otherwise the request passes cost-aware admission (the
   optional session ``cost_budget``) and backpressure (the bounded queue),
   then waits for the micro-batcher to flush it through the pipeline.

Requests may be submitted before :meth:`ResolutionService.start`; they simply
queue up (capacity permitting) and are drained once the consumer starts.
Pre-start submission gives deterministic flush compositions, which the
self-test and benchmarks use to pin down exact outputs for a fixed seed.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from contextlib import nullcontext
from dataclasses import dataclass
from typing import ContextManager, Iterable, Sequence

from repro.cost.tracker import CostBreakdown
from repro.data.schema import Dataset, EntityPair
from repro.engine.sharding import ShardPlanner
from repro.engines.base import Engine as EngineBackend
from repro.engines.transport import Clock, RetryingTransport
from repro.features.engine import FeatureStoreStats
from repro.llm.executors import ConcurrentExecutor, ExecutionBackend, SerialExecutor
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NOOP_TRACER, Tracer
from repro.pipeline.resolver import Resolution, Resolver
from repro.resilience import (
    STATE_OPEN,
    CircuitBreaker,
    DeadlineBudget,
    deadline_scope,
)
from repro.service.cache import CachedResult, ResultCache, pair_fingerprint
from repro.service.config import ServiceConfig
from repro.service.microbatcher import (
    AdmissionError,
    MicroBatcher,
    PendingRequest,
    RequestQueue,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.service.tenants import ANONYMOUS_TENANT, Tenant, TenantManager

__all__ = [
    "AdmissionError",
    "CostBudgetExceeded",
    "EngineStats",
    "ResolutionService",
    "ServiceClosed",
    "ServiceDegraded",
    "ServiceOverloaded",
    "ServiceStats",
]

#: Retry-After ceiling for overload responses when no breaker cooldown is
#: configured to clamp against (seconds).
DEFAULT_OVERLOAD_RETRY_CAP = 30.0


@dataclass(frozen=True)
class EngineStats:
    """Counters of the service's engine-backed bulk path.

    Attributes:
        bulk_requests: calls to :meth:`ResolutionService.resolve_bulk`.
        bulk_pairs: pairs submitted through the bulk path in total.
        shards_resolved: bulk shards that completed resolution (a request
            rejected mid-way — e.g. by the cost budget — stops counting at
            the shard the rejection struck).
        pairs_from_cache: bulk pairs served by the result cache, by an
            in-flight join, or by deduplication within one submission — all
            at zero LLM cost.
        pairs_resolved: distinct bulk pairs resolved live by the session.
    """

    bulk_requests: int = 0
    bulk_pairs: int = 0
    shards_resolved: int = 0
    pairs_from_cache: int = 0
    pairs_resolved: int = 0

    def to_dict(self) -> dict[str, int]:
        """Return a plain-dict snapshot (JSON-serializable, for ``/stats``)."""
        return {
            "bulk_requests": self.bulk_requests,
            "bulk_pairs": self.bulk_pairs,
            "shards_resolved": self.shards_resolved,
            "pairs_from_cache": self.pairs_from_cache,
            "pairs_resolved": self.pairs_resolved,
        }


class CostBudgetExceeded(AdmissionError):
    """Raised when the session cost budget is exhausted (cache still serves)."""


class ServiceDegraded(AdmissionError):
    """New LLM-bound work refused because the backend breaker is open.

    Cache hits and in-flight joins are still served — a degraded service
    shrinks to a cache, it does not go dark.  The HTTP layer maps this to
    503 with a ``Retry-After`` header taken from :attr:`retry_after`.

    Attributes:
        retry_after: seconds until the breaker will next admit a probe.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's counters.

    Attributes:
        submitted: requests accepted by :meth:`ResolutionService.submit`
            (cache hits and in-flight joins included, rejections excluded).
        resolved: futures completed with a resolution so far.
        cache_hits / cache_misses: result-cache lookup outcomes.
        cache_size: current number of cached entries.
        inflight_joined: requests that attached to an already-pending
            identical pair instead of enqueueing a duplicate.
        rejected_overload: submissions rejected by queue backpressure.
        rejected_budget: submissions rejected by the cost budget.
        rejected_degraded: submissions refused while the backend breaker was
            open (degraded mode; cache hits and joins are never refused).
        queue_depth: requests currently waiting in the queue.
        flushes: micro-batches flushed through the pipeline.
        llm_calls: cumulative LLM calls of the underlying session.
        pool_size / num_labeled: demonstration-pool accounting of the session.
        cost: cumulative session :class:`CostBreakdown`.
        engine: counters of the engine-backed bulk path
            (:meth:`ResolutionService.resolve_bulk`).
        llm_engine: operational snapshot of the session's LLM engine backend
            (name, model, capability flags, request/token counters and — for
            HTTP backends — retry and rate-limit counters), from
            :meth:`repro.engines.base.Engine.describe`; ``None`` when the
            session's LLM is not a registered engine.
        feature_store: snapshot of the session's columnar feature-vector
            store (size, hit rate, evictions, and the ``planning`` routing
            counters of its sparse-neighbor-graph planner); ``None`` before
            the store exists (no demonstrations yet).
        uptime_seconds: seconds since :meth:`ResolutionService.start` (0.0
            before).
        throughput_pairs_per_second: ``resolved / uptime_seconds``.
        breaker: snapshot of the backend circuit breaker (state, trips,
            fast failures, open duration); ``None`` when gating is disabled.
        tenants: per-tenant admission/spend blocks keyed by tenant name
            (admitted, quota/budget rejections, attributed cost); ``None``
            when no tenants are configured.
    """

    submitted: int
    resolved: int
    cache_hits: int
    cache_misses: int
    cache_size: int
    inflight_joined: int
    rejected_overload: int
    rejected_budget: int
    rejected_degraded: int
    queue_depth: int
    flushes: int
    llm_calls: int
    pool_size: int
    num_labeled: int
    cost: CostBreakdown
    engine: EngineStats
    llm_engine: dict | None
    feature_store: FeatureStoreStats | None
    uptime_seconds: float
    throughput_pairs_per_second: float
    breaker: dict | None = None
    tenants: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict[str, object]:
        """Return a plain-dict snapshot (JSON-serializable, for ``/stats``)."""
        return {
            "submitted": self.submitted,
            "resolved": self.resolved,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_size": self.cache_size,
            "cache_hit_rate": self.cache_hit_rate,
            "inflight_joined": self.inflight_joined,
            "rejected_overload": self.rejected_overload,
            "rejected_budget": self.rejected_budget,
            "rejected_degraded": self.rejected_degraded,
            "queue_depth": self.queue_depth,
            "flushes": self.flushes,
            "llm_calls": self.llm_calls,
            "pool_size": self.pool_size,
            "num_labeled": self.num_labeled,
            "cost": self.cost.to_dict(),
            "engine": self.engine.to_dict(),
            "llm_engine": self.llm_engine,
            "feature_store": (
                self.feature_store.to_dict() if self.feature_store is not None else None
            ),
            "uptime_seconds": self.uptime_seconds,
            "throughput_pairs_per_second": self.throughput_pairs_per_second,
            "breaker": self.breaker,
            "tenants": self.tenants,
        }


class ResolutionService:
    """Micro-batching resolution server over one shared resolver session.

    Args:
        config: serving-layer configuration (micro-batch shape, queue bound,
            cache capacity, cost budget); its ``batcher`` field configures the
            underlying session.
        resolver: optional pre-built session; by default one is created from
            ``config.batcher`` with a worker pool of ``config.num_workers``
            threads for concurrent prompt dispatch within each flush.
        demonstrations: labeled pool for the default-built resolver (ignored
            when ``resolver`` is given).
        attributes: attribute schema for the default-built resolver.
        clock: injectable time source for every deadline the service computes
            (admission timeouts, batch deadlines, resolve waits, uptime);
            tests drive it with a :class:`~repro.engines.faults.FakeClock`.
        tracer: span producer threaded through the session, micro-batch
            flushes and the LLM transport; default: tracing disabled.
        metrics: metrics registry to populate; by default the service builds
            its own (always exposed via :attr:`metrics` and ``GET /metrics``).
        breaker: pre-built circuit breaker to adopt (shared with an engine's
            transport, for example); by default one is built from
            ``config.breaker`` when that is set, and an engine-level breaker
            already on the session's transport is adopted otherwise.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        resolver: Resolver | None = None,
        demonstrations: Sequence[EntityPair] = (),
        attributes: tuple[str, ...] | None = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock or Clock()
        self.tracer = tracer or NOOP_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry(self._clock)
        self._owns_executor = resolver is None
        self._executor: ExecutionBackend | None = None
        if resolver is None:
            self._executor = (
                ConcurrentExecutor(self.config.num_workers, persistent=True)
                if self.config.num_workers > 1
                else SerialExecutor()
            )
            resolver = Resolver(
                config=self.config.batcher,
                demonstrations=demonstrations,
                attributes=attributes,
                executor=self._executor,
                tracer=self.tracer if self.tracer.enabled else None,
            )
        elif tracer is not None:
            resolver.tracer = tracer
        self._resolver = resolver
        self._cache = ResultCache(self.config.cache_capacity)
        self._queue = RequestQueue(self.config.queue_capacity, clock=self._clock)
        self._batcher = MicroBatcher(
            self._queue,
            self._flush,
            max_batch_size=self.config.max_batch_size,
            max_wait=self.config.max_wait_seconds,
            on_flush=self._observe_flush,
        )
        # fingerprint -> list of (pair-as-submitted, future) awaiting one
        # in-flight resolution.  The first entry's pair is the one resolved.
        self._inflight: dict[str, list[tuple[EntityPair, Future]]] = {}
        # Spilled feature vectors that arrived before the session's feature
        # store existed (schema not yet known); seeded once it does.
        self._pending_vectors: dict[str, tuple[list[float], str | None]] = {}
        self._lock = threading.Lock()
        # Serializes session access between the micro-batch consumer thread
        # and bulk callers — the Resolver is a shared, stateful session.
        self._resolver_lock = threading.Lock()
        self._submitted = 0
        self._resolved = 0
        self._inflight_joined = 0
        self._rejected_overload = 0
        self._rejected_budget = 0
        self._rejected_degraded = 0
        self._bulk_requests = 0
        self._bulk_pairs = 0
        self._bulk_shards = 0
        self._bulk_cached = 0
        self._bulk_resolved = 0
        self._started_at: float | None = None
        self._stopped = False
        # Multi-tenant admission: API keys → quota buckets + cost budgets.
        self.tenants = TenantManager(
            self.config.tenants,
            require_api_key=self.config.require_api_key,
            clock=self._clock,
        )
        # Availability gating: build a breaker from config (or adopt the one
        # passed in / already on the engine's transport) and make sure the
        # transport both consults and feeds it.
        self.breaker: CircuitBreaker | None = breaker
        if self.breaker is None and self.config.breaker is not None:
            llm = self._resolver.llm
            self.breaker = CircuitBreaker(
                self.config.breaker,
                clock=self._clock,
                name=getattr(llm, "engine_name", type(llm).__name__),
            )
        transport = getattr(self._resolver.llm, "transport", None)
        if isinstance(transport, RetryingTransport):
            if self.breaker is None:
                self.breaker = transport.breaker
            elif transport.breaker is None:
                transport.breaker = self.breaker
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Wire the metric families to the service's live state.

        Live event streams (flush reasons, LLM call latency) are recorded as
        they happen; everything that already has an authoritative counter
        (cache stats, queue depth, transport totals, feature-store hit rate)
        is bridged with scrape-time callbacks instead of double-keeping.
        """
        metrics = self.metrics
        self._metric_flushes = metrics.counter(
            "repro_service_flushes_total",
            "Micro-batch flushes by trigger reason.",
            labels=("reason",),
        )
        for reason in ("size", "deadline", "close"):
            self._metric_flushes.inc(0, reason=reason)
        self._metric_flush_seconds = metrics.histogram(
            "repro_service_flush_seconds", "Micro-batch flush latency."
        )
        # Per-tenant request families, pre-seeded for every configured tenant
        # (and the anonymous label) so scrapers see a stable schema before a
        # tenant's first request — the same discipline as the breaker/429
        # pre-seeding below.
        self._metric_requests = metrics.counter(
            "repro_service_requests_total",
            "Front-end requests by tenant and HTTP status.",
            labels=("tenant", "status"),
        )
        self._metric_request_seconds = metrics.histogram(
            "repro_service_request_seconds",
            "Front-end request latency by tenant.",
            labels=("tenant",),
        )
        for name in (*self.tenants.names, ANONYMOUS_TENANT):
            self._metric_requests.inc(0, tenant=name, status="200")
        self._metric_llm_latency = metrics.histogram(
            "repro_llm_latency_seconds",
            "LLM completion latency by engine and model.",
            labels=("engine", "model"),
        )
        llm = self._resolver.llm
        engine_label = getattr(llm, "engine_name", type(llm).__name__)

        def observe_completion(response, seconds: float) -> None:
            self._metric_llm_latency.observe(
                seconds, engine=engine_label, model=response.model
            )

        llm.add_completion_observer(observe_completion)

        usage = self._resolver.usage
        metrics.counter(
            "repro_llm_calls_total", "LLM calls made by the session."
        ).set_function(lambda: usage.num_calls)
        tokens = metrics.counter(
            "repro_llm_tokens_total", "Tokens spent by the session.", labels=("kind",)
        )
        tokens.set_function(lambda: usage.prompt_tokens, kind="prompt")
        tokens.set_function(lambda: usage.completion_tokens, kind="completion")
        metrics.gauge(
            "repro_llm_cost_dollars", "Cumulative session cost (API + labeling)."
        ).set_function(lambda: self._resolver.cost().total_cost)

        cache = self._cache
        metrics.counter(
            "repro_cache_hits_total", "Result-cache lookup hits."
        ).set_function(lambda: cache.hits)
        metrics.counter(
            "repro_cache_misses_total", "Result-cache lookup misses."
        ).set_function(lambda: cache.misses)
        metrics.gauge(
            "repro_cache_size", "Entries currently in the result cache."
        ).set_function(lambda: len(cache))
        metrics.gauge(
            "repro_cache_hit_rate", "Fraction of result-cache lookups served."
        ).set_function(
            lambda: cache.hits / (cache.hits + cache.misses)
            if (cache.hits + cache.misses)
            else 0.0
        )
        metrics.gauge(
            "repro_feature_store_hit_rate",
            "Fraction of feature-vector lookups served from the store.",
        ).set_function(self._feature_store_hit_rate)
        metrics.gauge(
            "repro_feature_store_size", "Feature vectors currently cached."
        ).set_function(
            lambda: self._resolver.feature_store.stats().size
            if self._resolver.feature_store is not None
            else 0
        )
        planner_routes = metrics.counter(
            "repro_planner_route_total",
            "Epsilon-graph builds by planner routing regime.",
            labels=("regime",),
        )
        planner_routes.set_function(
            lambda: self._planner_stat("dense_graphs"), regime="dense"
        )
        planner_routes.set_function(
            lambda: self._planner_stat("sparse_graphs"), regime="sparse"
        )
        planner_routes.set_function(
            lambda: self._planner_stat("lsh_graphs"), regime="lsh"
        )
        metrics.counter(
            "repro_planner_lsh_candidates_total",
            "Directed candidate pairs verified by the LSH planning regime.",
        ).set_function(lambda: self._planner_stat("lsh_candidates"))
        metrics.gauge(
            "repro_queue_depth", "Requests waiting in the micro-batch queue."
        ).set_function(lambda: len(self._queue))
        metrics.counter(
            "repro_service_submitted_total", "Requests accepted by submit()."
        ).set_function(lambda: self._submitted)
        metrics.counter(
            "repro_service_resolved_total", "Futures completed with a resolution."
        ).set_function(lambda: self._resolved)
        metrics.counter(
            "repro_service_inflight_joined_total",
            "Requests that joined an identical in-flight pair.",
        ).set_function(lambda: self._inflight_joined)
        rejected = metrics.counter(
            "repro_service_rejected_total",
            "Submissions rejected at admission, by reason.",
            labels=("reason",),
        )
        rejected.set_function(lambda: self._rejected_overload, reason="overload")
        rejected.set_function(lambda: self._rejected_budget, reason="budget")
        rejected.set_function(lambda: self._rejected_degraded, reason="degraded")

        # Breaker families render even without a breaker (at zero / closed):
        # scrapers must see a stable schema whether or not gating is on, the
        # same discipline as the pre-seeded 429 retry counter below.
        breaker = self.breaker
        metrics.gauge(
            "repro_breaker_state",
            "Backend circuit-breaker state (0=closed, 1=open, 2=half-open).",
        ).set_function(lambda: breaker.state_code() if breaker is not None else 0)
        metrics.counter(
            "repro_breaker_trips_total",
            "Times the breaker tripped open (probe re-opens included).",
        ).set_function(lambda: breaker.trips if breaker is not None else 0)
        metrics.counter(
            "repro_breaker_fast_failures_total",
            "Requests refused by the breaker without touching the backend.",
        ).set_function(lambda: breaker.fast_failures if breaker is not None else 0)
        metrics.counter(
            "repro_breaker_open_seconds_total",
            "Cumulative seconds the breaker spent open or half-open.",
        ).set_function(
            lambda: breaker.open_seconds_total() if breaker is not None else 0.0
        )
        metrics.counter(
            "repro_service_degraded_total",
            "Submissions refused in degraded mode (breaker open).",
        ).set_function(lambda: self._rejected_degraded)

        # HTTP-backed engines route through a RetryingTransport; bind the
        # service's tracer and registry so retry/429/rate-limit-wait counters
        # and per-attempt spans land in the same place as everything else.
        # Without one (simulated engines), the retry family still renders —
        # at zero — so scrapers see a stable schema across backends.
        transport = getattr(llm, "transport", None)
        if isinstance(transport, RetryingTransport):
            transport.bind_observability(tracer=self.tracer, metrics=metrics)
        else:
            metrics.counter(
                "repro_transport_retries_total",
                "Retried attempts by failure reason.",
                labels=("reason",),
            ).inc(0, reason="429")

    def _feature_store_hit_rate(self) -> float:
        store = self._resolver.feature_store
        if store is None:
            return 0.0
        return store.stats().hit_rate

    def _planner_stat(self, name: str) -> int:
        """One routing counter of the resolver's planner (0 before planning)."""
        store = self._resolver.feature_store
        if store is None:
            return 0
        return int(getattr(store.planner.stats(), name))

    def _observe_flush(self, batch: list[PendingRequest], reason: str) -> None:
        """Per-flush metrics hook (runs on the consumer thread, pre-flush)."""
        self._metric_flushes.inc(reason=reason)

    def observe_request(
        self, tenant: str | None, status: int, seconds: float
    ) -> None:
        """Record one front-end request into the per-tenant metric families.

        Both HTTP front ends call this once per routed request, so the
        ``repro_service_requests_total{tenant,status}`` counter and the
        per-tenant latency histogram mean the same thing whichever front end
        served the traffic.
        """
        label = tenant if tenant else ANONYMOUS_TENANT
        self._metric_requests.inc(tenant=label, status=str(status))
        self._metric_request_seconds.observe(seconds, tenant=label)

    def authenticate(self, api_key: str | None) -> Tenant | None:
        """Resolve an API key to a tenant (see :meth:`TenantManager.authenticate`).

        Raises:
            UnknownTenant: for a missing key when the config requires one, or
                for a key matching no tenant.
        """
        return self.tenants.authenticate(api_key)

    def overload_retry_after(self) -> float:
        """Backlog-derived ``Retry-After`` for overload (503) responses.

        A full queue drains one micro-batch per flush deadline, so the
        backlog clears in roughly ``queue_depth / max_batch_size`` flushes of
        ``max_wait_seconds`` each.  The estimate is clamped to ``[1,
        cooldown]`` — the breaker's cooldown when gating is configured (the
        longest the service itself ever asks a client to back off), else
        ``DEFAULT_OVERLOAD_RETRY_CAP`` — so a deep backlog never turns into
        an unbounded go-away.
        """
        flushes = -(-self.queue_depth // self.config.max_batch_size)
        estimate = flushes * self.config.max_wait_seconds
        cap = (
            self.breaker.config.cooldown_seconds
            if self.breaker is not None
            else DEFAULT_OVERLOAD_RETRY_CAP
        )
        return min(max(1.0, estimate), max(1.0, cap))

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, config: ServiceConfig | None = None, **kwargs
    ) -> "ResolutionService":
        """Build a service whose session pool is ``dataset``'s train split."""
        return cls(
            config=config,
            demonstrations=list(dataset.splits.train),
            attributes=dataset.attributes,
            **kwargs,
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ResolutionService":
        """Warm the session, warm-start the cache, and start the consumer.

        Idempotent while running.  Returns ``self`` so it chains with the
        constructor.

        Raises:
            ServiceClosed: when restarting a stopped service.
        """
        if self._stopped:
            raise ServiceClosed("service has been stopped; build a new one")
        if self._batcher.running:
            return self
        if self._resolver.pool_size:
            self._resolver.warm()
        if self.config.spill_path is not None:
            self._cache.warm_start(self.config.spill_path, on_vector=self._seed_vector)
        if self._started_at is None:
            self._started_at = self._clock.monotonic()
        self._batcher.start()
        return self

    def stop(self, spill: bool = True) -> None:
        """Drain queued work, stop the consumer, and release resources.

        Queued requests are still flushed before the consumer exits; anything
        that somehow remains is failed with :class:`ServiceClosed`.

        Args:
            spill: write the cache to ``config.spill_path`` (when configured).
        """
        if self._stopped:
            return
        self._stopped = True
        self._batcher.stop()
        for request in self._queue.drain():
            self._fail(request.fingerprint, ServiceClosed("service stopped"))
        # Spill only when this session actually started (and hence
        # warm-started from the file): stopping a never-started service must
        # not truncate a previous session's persisted cache.
        if spill and self.config.spill_path is not None and self._started_at is not None:
            self._drain_pending_vectors()
            store = self._resolver.feature_store
            if store is not None:
                self._cache.spill(
                    self.config.spill_path,
                    vector_lookup=store.get,
                    vector_tag=store.spill_tag,
                )
            else:
                # The schema was never learned this session, so the store was
                # never built: write the still-buffered warm-start vectors
                # back out instead of silently dropping them from the file.
                with self._lock:
                    pending = dict(self._pending_vectors)
                tags = {tag for _, tag in pending.values()}
                tag = tags.pop() if len(tags) == 1 else None
                self._cache.spill(
                    self.config.spill_path,
                    vector_lookup=(
                        (lambda fingerprint: pending.get(fingerprint, (None, None))[0])
                        if tag is not None
                        else None
                    ),
                    vector_tag=tag,
                )
        if self._owns_executor and isinstance(self._executor, ConcurrentExecutor):
            self._executor.shutdown()

    def _seed_vector(
        self, fingerprint: str, vector: list[float], tag: str | None
    ) -> None:
        """Seed the session's feature store with one spilled vector.

        Vectors are skipped silently unless both their provenance tag
        (extractor variant + attribute schema) and their dimensionality match
        the current store — a spill file from a session with a different
        configuration must not poison the store.  The tag check matters even
        when dimensions agree: e.g. the ``lr`` and ``jaccard`` structure-aware
        extractors share a dimension but produce different vectors.

        When the store does not exist yet (attribute schema still unknown),
        the vector is buffered and seeded once it does — otherwise a session
        that learns its schema only after ``start()`` would drop every
        spilled vector and re-spill the file without them.
        """
        store = self._resolver.feature_store
        if store is None:
            with self._lock:
                self._pending_vectors[fingerprint] = (vector, tag)
            return
        if tag != store.spill_tag or len(vector) != store.dimension:
            return
        store.put(fingerprint, vector)

    def _drain_pending_vectors(self) -> None:
        """Seed buffered spill vectors once the feature store exists."""
        if not self._pending_vectors or self._resolver.feature_store is None:
            return
        with self._lock:
            pending, self._pending_vectors = self._pending_vectors, {}
        for fingerprint, (vector, tag) in pending.items():
            self._seed_vector(fingerprint, vector, tag)

    def __enter__(self) -> "ResolutionService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    def submit(
        self, pair: EntityPair, tenant: Tenant | None = None
    ) -> "Future[Resolution]":
        """Submit one pair; returns a future resolving to its resolution.

        Cache hits complete immediately; identical in-flight pairs share one
        pending resolution; everything else passes admission and queues for
        the next micro-batch.

        Args:
            tenant: the submitting tenant (from :meth:`authenticate`); its
                quota bucket is debited one unit *before* any other path —
                the rate limit protects the front end, so even cache hits
                count against it — and its cost budget gates new uncached
                work the way the global ``cost_budget`` does.  ``None``
                submits anonymously (global limits only).

        Raises:
            ServiceClosed: if the service has been stopped.
            TenantQuotaExceeded: if the tenant is over its requests-per-second
                quota.
            TenantBudgetExceeded: if the tenant's cost budget is spent and
                the pair is not cached.
            ServiceDegraded: if the backend breaker is open and the pair is
                neither cached nor already in flight.
            CostBudgetExceeded: if the session cost budget is exhausted and
                the pair is not cached.
            ServiceOverloaded: if the queue stays full past the admission
                timeout.
        """
        if self._stopped:
            raise ServiceClosed("service has been stopped")
        if tenant is not None:
            tenant.admit()
        if self._pending_vectors:
            self._drain_pending_vectors()
        fingerprint = pair_fingerprint(pair)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            future: Future = Future()
            future.set_result(
                Resolution(pair=pair, label=cached.label, answered=cached.answered)
            )
            with self._lock:
                self._submitted += 1
                self._resolved += 1
            return future

        future: Future = Future()
        if self._attach(fingerprint, pair, future, register_if_absent=False):
            return future

        # Degraded mode: with the breaker open, new LLM-bound work is refused
        # up front (cache hits and joins were already served above) instead
        # of queueing doomed requests behind a gated backend.  Half-open is
        # *not* degraded — probe traffic is how the service recovers.
        self._check_degraded()

        # Cost-aware admission applies to *new* LLM work only: cache hits and
        # in-flight joins are free and therefore always served.  The tenant
        # budget extends the same discipline per tenant.
        if tenant is not None:
            tenant.check_budget()
        budget = self.config.cost_budget
        if budget is not None:
            spent = self._resolver.cost().total_cost
            if spent >= budget:
                with self._lock:
                    self._rejected_budget += 1
                raise CostBudgetExceeded(
                    f"session cost ${spent:.4f} has reached the budget "
                    f"${budget:.4f}; only cached pairs are served"
                )

        if self._attach(fingerprint, pair, future, register_if_absent=True):
            return future  # lost a race with a concurrent submitter: joined
        request = PendingRequest(
            pair=pair,
            fingerprint=fingerprint,
            future=future,
            enqueued_at=self._clock.monotonic(),
            tenant=tenant.name if tenant is not None else None,
        )
        try:
            self._queue.put(request, timeout=self.config.admission_timeout_seconds)
        except ServiceOverloaded as error:
            with self._lock:
                self._rejected_overload += 1
            self._fail(fingerprint, error)  # joined duplicates must not hang
            raise
        except ServiceClosed as error:
            self._fail(fingerprint, error)
            raise
        with self._lock:
            self._submitted += 1
        return future

    def _check_degraded(self) -> None:
        """Refuse new LLM-bound work while the backend breaker is open."""
        breaker = self.breaker
        if breaker is not None and breaker.state == STATE_OPEN:
            with self._lock:
                self._rejected_degraded += 1
            raise ServiceDegraded(
                "backend circuit breaker is open; only cached and in-flight "
                "pairs are served",
                retry_after=breaker.retry_after,
            )

    def _deadline(self) -> ContextManager[DeadlineBudget | None]:
        """Ambient deadline scope for one logical unit of LLM-bound work."""
        budget = self.config.deadline_budget_seconds
        if budget is None:
            return nullcontext(None)
        return deadline_scope(DeadlineBudget(budget, clock=self._clock))

    def _attach(
        self,
        fingerprint: str,
        pair: EntityPair,
        future: Future,
        register_if_absent: bool,
    ) -> bool:
        """Join an identical in-flight pair (returns ``True``), or optionally
        register this request as the fingerprint's owner (returns ``False``)."""
        with self._lock:
            waiters = self._inflight.get(fingerprint)
            if waiters is not None:
                waiters.append((pair, future))
                self._submitted += 1
                self._inflight_joined += 1
                return True
            if register_if_absent:
                self._inflight[fingerprint] = [(pair, future)]
            return False

    def resolve_many(
        self,
        pairs: Iterable[EntityPair],
        timeout: float | None = 60.0,
        tenant: Tenant | None = None,
    ) -> list[Resolution]:
        """Submit many pairs and block until all are resolved (input order).

        Args:
            timeout: overall deadline in seconds for the whole set
                (``None`` waits indefinitely).
            tenant: submitting tenant, threaded through :meth:`submit`.

        Raises:
            AdmissionError: if any submission is rejected.
            TimeoutError: if the deadline passes before all pairs resolve.
        """
        futures = [self.submit(pair, tenant=tenant) for pair in pairs]
        deadline = None if timeout is None else self._clock.monotonic() + timeout
        resolutions = []
        for future in futures:
            remaining = None if deadline is None else max(0.0, deadline - self._clock.monotonic())
            resolutions.append(future.result(timeout=remaining))
        return resolutions

    def resolve_bulk(
        self,
        pairs: Iterable[EntityPair],
        shards: int | None = None,
        timeout: float | None = 60.0,
        tenant: Tenant | None = None,
    ) -> list[Resolution]:
        """Resolve a large pair set through the engine-backed bulk path.

        Bulk submissions bypass the micro-batch queue (which is shaped for
        latency, not throughput) and go straight to the shared session in
        deterministic fingerprint-hashed shards — the same content-addressed
        partitioning the :class:`~repro.engine.engine.RunEngine` uses.  No
        shard may exceed ``batcher.batch_size ** 2`` pairs (the resolver's
        own streaming chunk size), and the session lock is released between
        shards, so concurrent latency-path flushes interleave with a long
        bulk resolution instead of starving behind it.

        Free work stays free: the result cache, deduplication within the
        submission, *and* pairs already in flight on the micro-batch path
        all cost zero additional LLM calls — a bulk request joins a pending
        identical pair's resolution rather than paying for it twice.

        Args:
            pairs: the pairs to resolve; resolutions come back in input order.
            shards: minimum shard count; by default one shard per
                ``batcher.batch_size ** 2`` unique uncached pairs (raised
                automatically when more shards are needed to respect the
                per-shard ceiling).
            timeout: seconds to wait for joined in-flight resolutions
                (``None`` waits indefinitely).
            tenant: submitting tenant; its quota bucket is debited one unit
                per pair up front, its budget is re-checked at every shard
                boundary next to the global one, and each resolved shard's
                marginal cost is attributed to it.

        Raises:
            ServiceClosed: if the service has been stopped.
            TenantQuotaExceeded: if the tenant's bucket cannot afford the
                whole submission.
            ServiceDegraded: if uncached work remains while the backend
                breaker is open (cached and joined pairs alone still resolve).
            CostBudgetExceeded: if uncached work remains but the session cost
                budget is exhausted (cached pairs alone still resolve).
            TimeoutError: if a joined in-flight pair does not resolve within
                ``timeout``.
        """
        if self._stopped:
            raise ServiceClosed("service has been stopped")
        pairs = list(pairs)
        if tenant is not None and pairs:
            tenant.admit(len(pairs))
        with self._lock:
            self._bulk_requests += 1
            self._bulk_pairs += len(pairs)
        if not pairs:
            return []

        fingerprints = [pair_fingerprint(pair) for pair in pairs]
        resolved: dict[str, Resolution] = {}
        joined: dict[str, Future] = {}
        pending: dict[str, EntityPair] = {}
        for pair, fingerprint in zip(pairs, fingerprints):
            if fingerprint in resolved or fingerprint in joined or fingerprint in pending:
                continue
            # In-flight check before the cache check: a flush caches its
            # results *before* popping them from the in-flight table, so a
            # pair that leaves in-flight between these two lookups is caught
            # by the cache, never re-paid.
            with self._lock:
                waiters = self._inflight.get(fingerprint)
                if waiters is not None:
                    future: Future = Future()
                    waiters.append((pair, future))
                    self._inflight_joined += 1
                    joined[fingerprint] = future
                    continue
            cached = self._cache.get(fingerprint)
            if cached is not None:
                resolved[fingerprint] = Resolution(
                    pair=pair, label=cached.label, answered=cached.answered
                )
            else:
                pending.setdefault(fingerprint, pair)
        with self._lock:
            self._bulk_cached += len(pairs) - len(pending)

        if pending:
            unique = list(pending.values())
            chunk = self.config.batcher.batch_size**2
            floor = max(1, -(-len(unique) // chunk))
            num_shards = max(shards, floor) if shards is not None else floor
            shard_indices = ShardPlanner(num_shards).plan_pairs(unique)
            populated = [indices for indices in shard_indices if indices]
            for indices in populated:
                # Re-checked per shard, not once per request: a single huge
                # bulk submission may then overshoot the budget by at most
                # one shard, matching the per-submit granularity of the
                # micro-batch path.  Shards resolved before the rejection
                # stay cached, so a retry pays nothing for them.  The same
                # per-shard granularity applies to degraded mode: a breaker
                # that opens mid-bulk stops the run at the next shard
                # boundary with everything before it cached.
                self._check_degraded()
                if tenant is not None:
                    tenant.check_budget()
                budget = self.config.cost_budget
                if budget is not None:
                    spent = self._resolver.cost().total_cost
                    if spent >= budget:
                        with self._lock:
                            self._rejected_budget += 1
                        raise CostBudgetExceeded(
                            f"session cost ${spent:.4f} has reached the budget "
                            f"${budget:.4f}; only cached pairs are served"
                        )
                shard_pairs = [unique[index] for index in indices]
                cost_before = self._resolver.cost().total_cost
                with self._resolver_lock, self._deadline():
                    shard_resolutions = self._resolver.resolve(shard_pairs)
                if tenant is not None:
                    tenant.charge(self._resolver.cost().total_cost - cost_before)
                with self._lock:
                    self._bulk_shards += 1
                    self._bulk_resolved += len(shard_pairs)
                for pair, resolution in zip(shard_pairs, shard_resolutions):
                    fingerprint = pair_fingerprint(pair)
                    resolved[fingerprint] = resolution
                    # As on the micro-batch path, fallback labels are never
                    # cached — the next request gets a fresh LLM attempt.
                    if resolution.answered:
                        self._cache.put(
                            fingerprint,
                            CachedResult(
                                label=resolution.label, answered=resolution.answered
                            ),
                        )

        if joined:
            deadline = None if timeout is None else self._clock.monotonic() + timeout
            for fingerprint, future in joined.items():
                remaining = (
                    None if deadline is None else max(0.0, deadline - self._clock.monotonic())
                )
                resolved[fingerprint] = future.result(timeout=remaining)

        resolutions = []
        for pair, fingerprint in zip(pairs, fingerprints):
            source = resolved[fingerprint]
            resolutions.append(
                Resolution(pair=pair, label=source.label, answered=source.answered)
            )
        return resolutions

    # -- flushing ------------------------------------------------------------

    def _flush(self, batch: list[PendingRequest]) -> None:
        """Resolve one micro-batch and fan results out to every waiter."""
        if not batch:
            return
        with self.metrics.time(self._metric_flush_seconds):
            with self.tracer.span("service:flush") as scope:
                if self.tracer.enabled:
                    scope.set_attribute("requests", len(batch))
                    scope.set_attribute("reason", self._batcher.flush_reason(batch))
                self._flush_batch(batch)

    def _flush_batch(self, batch: list[PendingRequest]) -> None:
        # First resolutions may establish the attribute schema (and hence the
        # feature store); seed any warm-start vectors that were waiting on it.
        self._drain_pending_vectors()
        # Defensive within-flush dedup: in-flight joining already collapses
        # duplicates, but a representative per fingerprint keeps the pipeline
        # input unique even if a duplicate slips through.
        unique: dict[str, EntityPair] = {}
        owners: dict[str, str] = {}
        for request in batch:
            if request.fingerprint not in unique and request.tenant is not None:
                owners[request.fingerprint] = request.tenant
            unique.setdefault(request.fingerprint, request.pair)
        cost_before = self._resolver.cost().total_cost
        try:
            # One flush is one logical request for deadline purposes: the
            # budget spans the whole resolve, retry backoff included.
            with self._resolver_lock, self._deadline():
                resolutions = self._resolver.resolve(list(unique.values()))
        except Exception as error:  # noqa: BLE001 - failures travel via futures
            for fingerprint in unique:
                self._fail(fingerprint, error)
            return
        # Attribute the flush's marginal cost to the tenants whose requests
        # paid it: each unique pair's *owner* (the request that enqueued it;
        # in-flight joiners ride free, matching the cache/join discipline)
        # is charged an equal share of the flush's cost delta.
        if owners:
            per_pair = (
                self._resolver.cost().total_cost - cost_before
            ) / len(unique)
            if per_pair > 0:
                for fingerprint, tenant_name in owners.items():
                    owner = self.tenants.get(tenant_name)
                    if owner is not None:
                        owner.charge(per_pair)
        for fingerprint, resolution in zip(unique, resolutions):
            # Fallback labels (answered=False) are never cached: the next
            # request for such a pair gets a fresh LLM attempt instead of a
            # permanently memoized guess.
            if resolution.answered:
                self._cache.put(
                    fingerprint,
                    CachedResult(label=resolution.label, answered=resolution.answered),
                )
            with self._lock:
                waiters = self._inflight.pop(fingerprint, [])
            completed = 0
            for pair, future in waiters:
                # A waiter may have cancelled its future; setting a result on
                # it would raise and kill the consumer thread.
                if not future.done():
                    future.set_result(
                        Resolution(
                            pair=pair,
                            label=resolution.label,
                            answered=resolution.answered,
                        )
                    )
                    completed += 1
            with self._lock:
                self._resolved += completed

    def _fail(self, fingerprint: str, error: Exception) -> None:
        with self._lock:
            waiters = self._inflight.pop(fingerprint, [])
        for _, future in waiters:
            if not future.done():
                future.set_exception(error)

    # -- introspection -------------------------------------------------------

    @property
    def resolver(self) -> Resolver:
        """The shared underlying session (read-only use recommended)."""
        return self._resolver

    @property
    def cache(self) -> ResultCache:
        """The pair-level result cache."""
        return self._cache

    @property
    def running(self) -> bool:
        """Whether the micro-batch consumer is running."""
        return self._batcher.running

    @property
    def ready(self) -> bool:
        """Readiness: running *and* able to accept new LLM-bound work.

        Liveness (:attr:`running`) says the process is healthy; readiness
        additionally requires the backend breaker not to be open, so a load
        balancer can drain a replica whose backend is gated while health
        checks keep passing.  Half-open counts as ready — probe traffic is
        how the replica recovers.
        """
        return self.running and (
            self.breaker is None or self.breaker.state != STATE_OPEN
        )

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the queue."""
        return len(self._queue)

    def stats(self) -> ServiceStats:
        """Return a point-in-time snapshot of the service's counters."""
        if self._pending_vectors:
            self._drain_pending_vectors()
        with self._lock:
            submitted = self._submitted
            resolved = self._resolved
            inflight_joined = self._inflight_joined
            rejected_overload = self._rejected_overload
            rejected_budget = self._rejected_budget
            rejected_degraded = self._rejected_degraded
            engine = EngineStats(
                bulk_requests=self._bulk_requests,
                bulk_pairs=self._bulk_pairs,
                shards_resolved=self._bulk_shards,
                pairs_from_cache=self._bulk_cached,
                pairs_resolved=self._bulk_resolved,
            )
        uptime = (
            self._clock.monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        store = self._resolver.feature_store
        llm = self._resolver.llm
        llm_engine = llm.describe() if isinstance(llm, EngineBackend) else None
        return ServiceStats(
            submitted=submitted,
            resolved=resolved,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_size=len(self._cache),
            inflight_joined=inflight_joined,
            rejected_overload=rejected_overload,
            rejected_budget=rejected_budget,
            rejected_degraded=rejected_degraded,
            queue_depth=self.queue_depth,
            flushes=self._batcher.num_flushes,
            llm_calls=self._resolver.usage.num_calls,
            pool_size=self._resolver.pool_size,
            num_labeled=self._resolver.num_labeled,
            cost=self._resolver.cost(),
            engine=engine,
            llm_engine=llm_engine,
            feature_store=store.stats() if store is not None else None,
            uptime_seconds=uptime,
            throughput_pairs_per_second=(resolved / uptime if uptime > 0 else 0.0),
            breaker=self.breaker.stats() if self.breaker is not None else None,
            tenants=self.tenants.stats() if len(self.tenants) else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResolutionService(max_batch_size={self.config.max_batch_size}, "
            f"queue_depth={self.queue_depth}, cache_size={len(self._cache)}, "
            f"running={self.running})"
        )
