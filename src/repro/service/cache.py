"""Pair-level result cache: canonical fingerprints, LRU, JSONL spill.

A long-lived service sees the same entity pairs again and again (hot items,
retries, mirrored catalogs).  Caching by a *canonical content fingerprint* —
not by ``pair_id`` — means any two requests about the same record contents hit
the same entry, so repeat queries cost zero LLM calls regardless of who
submitted them or what ids they used.

The fingerprint scheme (:func:`~repro.data.fingerprint.pair_fingerprint`) is
shared with the columnar feature engine, so the spill file can carry each
entry's feature vector alongside its judgement: a warm-started service
repopulates both the result cache *and* the feature store from one JSONL file.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.data.fingerprint import pair_fingerprint
from repro.data.schema import MatchLabel

__all__ = ["CachedResult", "ResultCache", "pair_fingerprint"]


@dataclass(frozen=True)
class CachedResult:
    """The cached outcome for one pair fingerprint.

    Only the judgement is stored (label + whether the LLM actually answered),
    not the pair itself — a hit re-attaches the caller's own pair, so cached
    answers serve any request with the same contents.
    """

    label: MatchLabel
    answered: bool


class ResultCache:
    """Thread-safe LRU cache from pair fingerprint to :class:`CachedResult`.

    Args:
        capacity: maximum number of entries; the least-recently-used entry is
            evicted on overflow.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CachedResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, fingerprint: str) -> CachedResult | None:
        """Look up a fingerprint, refreshing its recency on a hit."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return entry

    def put(self, fingerprint: str, result: CachedResult) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry on overflow."""
        with self._lock:
            self._entries[fingerprint] = result
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    # -- accounting ----------------------------------------------------------

    @property
    def hits(self) -> int:
        """Number of successful lookups."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    # -- persistence ---------------------------------------------------------

    def _snapshot(self) -> list[tuple[str, CachedResult]]:
        with self._lock:
            return list(self._entries.items())

    def spill(
        self,
        path: str | Path,
        vector_lookup: Callable[[str], Sequence[float] | None] | None = None,
        vector_tag: str | None = None,
    ) -> int:
        """Write all entries to ``path`` as JSONL (LRU order, oldest first).

        Returns the number of entries written.  The file is a warm-start
        artifact, not a database: :meth:`warm_start` replays it through
        :meth:`put`, so capacity and recency semantics are preserved.

        Args:
            vector_lookup: optional callable mapping a fingerprint to its
                feature vector (or ``None``); when it yields one, the entry
                gains a ``"vector"`` field, letting :meth:`warm_start` seed a
                feature store alongside the result cache.
            vector_tag: provenance tag written as the ``"extractor"`` field of
                every vector-carrying entry (the feature store's spill tag);
                warm-start uses it to reject vectors from a different
                extractor variant or attribute schema.
        """
        entries = self._snapshot()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for fingerprint, result in entries:
                entry: dict[str, object] = {
                    "fingerprint": fingerprint,
                    "label": int(result.label),
                    "answered": result.answered,
                }
                if vector_lookup is not None:
                    vector = vector_lookup(fingerprint)
                    if vector is not None:
                        entry["vector"] = [float(value) for value in vector]
                        if vector_tag is not None:
                            entry["extractor"] = vector_tag
                handle.write(json.dumps(entry) + "\n")
        return len(entries)

    def warm_start(
        self,
        path: str | Path,
        on_vector: Callable[[str, list[float], str | None], None] | None = None,
    ) -> int:
        """Load entries spilled by :meth:`spill`; missing file is a no-op.

        Returns the number of entries loaded.  Files written before the
        vector extension (no ``"vector"`` fields) load unchanged.

        Args:
            on_vector: optional callback invoked with ``(fingerprint, vector,
                extractor_tag)`` for entries carrying a spilled feature
                vector — the service uses it to seed the feature store after
                checking the tag against the current extractor.

        Torn-tail tolerance: a spill interrupted mid-write (a crash, a full
        disk) leaves at most one partial entry, and only as the *final* line
        of the file.  An unparseable final line is therefore skipped — the
        preceding entries warm-start normally — while corruption anywhere
        else still raises, since that is a damaged file rather than an
        interrupted append.

        Raises:
            ValueError: if the file exists but a non-final line is not a
                valid entry.
        """
        path = Path(path)
        if not path.exists():
            return 0
        loaded = 0
        lines = list(_read_lines(path))
        for index, (line_number, line) in enumerate(lines):
            try:
                entry = json.loads(line)
                fingerprint = entry["fingerprint"]
                result = CachedResult(
                    label=MatchLabel(entry["label"]), answered=bool(entry["answered"])
                )
                vector = entry.get("vector")
                if vector is not None:
                    if not isinstance(vector, list):
                        raise ValueError(
                            f"'vector' must be a list, got {type(vector).__name__}"
                        )
                    vector = [float(value) for value in vector]
                tag = entry.get("extractor")
                if tag is not None and not isinstance(tag, str):
                    raise ValueError(
                        f"'extractor' must be a string, got {type(tag).__name__}"
                    )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
                if index == len(lines) - 1:
                    break  # torn final line from an interrupted spill
                raise ValueError(
                    f"invalid cache spill entry at {path}:{line_number}: {error}"
                ) from error
            self.put(fingerprint, result)
            if vector is not None and on_vector is not None:
                on_vector(fingerprint, vector, tag)
            loaded += 1
        return loaded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"hit_rate={self.hit_rate:.2f})"
        )


def _read_lines(path: Path) -> Iterator[tuple[int, str]]:
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                yield line_number, line
