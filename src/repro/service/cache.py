"""Pair-level result cache: canonical fingerprints, LRU, JSONL spill.

A long-lived service sees the same entity pairs again and again (hot items,
retries, mirrored catalogs).  Caching by a *canonical content fingerprint* —
not by ``pair_id`` — means any two requests about the same record contents hit
the same entry, so repeat queries cost zero LLM calls regardless of who
submitted them or what ids they used.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.data.schema import EntityPair, MatchLabel


def pair_fingerprint(pair: EntityPair) -> str:
    """Return the canonical content fingerprint of an entity pair.

    The fingerprint hashes the attribute values of both records (attribute
    order normalised, missing values skipped) and deliberately ignores
    ``pair_id`` and record ids: two pairs with identical contents are the same
    cache entry.  Left/right order is preserved — ER pairs are directed
    (table A vs. table B).

    Every field is length-prefixed, so the encoding is unambiguous for
    arbitrary attribute names and values (no separator byte a hostile client
    string could collide with).
    """
    digest = hashlib.blake2b(digest_size=16)
    for record in (pair.left, pair.right):
        present = [
            (name, value)
            for name, value in sorted(record.values.items())
            if value is not None
        ]
        digest.update(f"{len(present)};".encode("ascii"))
        for name, value in present:
            for text in (name, value):
                encoded = text.encode("utf-8")
                digest.update(f"{len(encoded)}:".encode("ascii"))
                digest.update(encoded)
    return digest.hexdigest()


@dataclass(frozen=True)
class CachedResult:
    """The cached outcome for one pair fingerprint.

    Only the judgement is stored (label + whether the LLM actually answered),
    not the pair itself — a hit re-attaches the caller's own pair, so cached
    answers serve any request with the same contents.
    """

    label: MatchLabel
    answered: bool


class ResultCache:
    """Thread-safe LRU cache from pair fingerprint to :class:`CachedResult`.

    Args:
        capacity: maximum number of entries; the least-recently-used entry is
            evicted on overflow.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CachedResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, fingerprint: str) -> CachedResult | None:
        """Look up a fingerprint, refreshing its recency on a hit."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return entry

    def put(self, fingerprint: str, result: CachedResult) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry on overflow."""
        with self._lock:
            self._entries[fingerprint] = result
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    # -- accounting ----------------------------------------------------------

    @property
    def hits(self) -> int:
        """Number of successful lookups."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    # -- persistence ---------------------------------------------------------

    def _snapshot(self) -> list[tuple[str, CachedResult]]:
        with self._lock:
            return list(self._entries.items())

    def spill(self, path: str | Path) -> int:
        """Write all entries to ``path`` as JSONL (LRU order, oldest first).

        Returns the number of entries written.  The file is a warm-start
        artifact, not a database: :meth:`warm_start` replays it through
        :meth:`put`, so capacity and recency semantics are preserved.
        """
        entries = self._snapshot()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for fingerprint, result in entries:
                handle.write(
                    json.dumps(
                        {
                            "fingerprint": fingerprint,
                            "label": int(result.label),
                            "answered": result.answered,
                        }
                    )
                    + "\n"
                )
        return len(entries)

    def warm_start(self, path: str | Path) -> int:
        """Load entries spilled by :meth:`spill`; missing file is a no-op.

        Returns the number of entries loaded.

        Raises:
            ValueError: if the file exists but a line is not a valid entry.
        """
        path = Path(path)
        if not path.exists():
            return 0
        loaded = 0
        for line_number, line in enumerate(_read_lines(path), start=1):
            try:
                entry = json.loads(line)
                fingerprint = entry["fingerprint"]
                result = CachedResult(
                    label=MatchLabel(entry["label"]), answered=bool(entry["answered"])
                )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"invalid cache spill entry at {path}:{line_number}: {error}"
                ) from error
            self.put(fingerprint, result)
            loaded += 1
        return loaded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"hit_rate={self.hit_rate:.2f})"
        )


def _read_lines(path: Path) -> Iterator[str]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line
