"""Stdlib HTTP JSON front end for a :class:`ResolutionService`.

Endpoints:

* ``POST /resolve`` — body ``{"pairs": [{"pair_id"?, "left": {...}, "right":
  {...}}]}`` where ``left``/``right`` are flat attribute→value mappings;
  responds ``{"resolutions": [Resolution.to_dict(), ...]}``.
* ``POST /bulk`` — same pair payload plus an optional ``"shards"`` integer;
  resolves through the engine-backed bulk path
  (:meth:`ResolutionService.resolve_bulk`), which shards the submission
  deterministically past the micro-batch queue.
* ``GET /stats`` — the service's :meth:`ServiceStats.to_dict` snapshot,
  consolidated with a ``"metrics"`` dump of the service's registry so both
  endpoints read from the same source of truth.
* ``GET /metrics`` — the registry in Prometheus text exposition format
  (``text/plain; version=0.0.4``), ready for an external scraper.
* ``GET /healthz`` — *liveness* probe: 200 while the process serves, with
  ``live`` / ``ready`` fields so one probe answers both questions.
* ``GET /readyz`` — *readiness* probe: 503 (+ ``Retry-After``) while the
  backend circuit breaker is open or the consumer is not running, so a load
  balancer drains the replica without restarting it.

Error mapping: malformed requests → 400, cost-budget rejection → 429,
queue backpressure and degraded mode (breaker open) → 503 (with
``Retry-After``), tripped deadline budgets → 504.
"""

from __future__ import annotations

import itertools
import json
import math
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.data.schema import EntityPair, Record
from repro.resilience import CircuitOpenError, DeadlineExceeded
from repro.service.service import (
    CostBudgetExceeded,
    ResolutionService,
    ServiceClosed,
    ServiceDegraded,
    ServiceOverloaded,
)

#: Upper bound on accepted request bodies (1 MiB keeps parsing cheap).
MAX_BODY_BYTES = 1 << 20

#: Deadline for one HTTP resolve call (generous; micro-batches are fast).
RESOLVE_TIMEOUT_SECONDS = 60.0

_request_ids = itertools.count(1)


class BadRequest(ValueError):
    """A malformed ``/resolve`` payload (mapped to HTTP 400)."""


def _retry_after_header(seconds: float) -> str:
    """Format a ``Retry-After`` value: integral seconds, at least 1."""
    return str(max(1, math.ceil(seconds)))


def pair_from_json(payload: Mapping[str, Any], request_id: int) -> EntityPair:
    """Build an :class:`EntityPair` from one ``/resolve`` payload entry.

    Raises:
        BadRequest: when the entry is not ``{"left": {...}, "right": {...}}``
            with string attribute values.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest(f"pair entry must be an object, got {type(payload).__name__}")
    sides = {}
    for side in ("left", "right"):
        values = payload.get(side)
        if not isinstance(values, Mapping) or not values:
            raise BadRequest(f"pair entry needs a non-empty {side!r} object")
        clean: dict[str, str | None] = {}
        for name, value in values.items():
            if value is not None and not isinstance(value, str):
                raise BadRequest(
                    f"attribute {name!r} of {side!r} must be a string or null"
                )
            clean[str(name)] = value
        sides[side] = clean
    pair_id = payload.get("pair_id") or f"http-{request_id}"
    return EntityPair(
        pair_id=str(pair_id),
        left=Record(record_id=f"{pair_id}-L", values=sides["left"]),
        right=Record(record_id=f"{pair_id}-R", values=sides["right"]),
    )


def pairs_from_json(body: Any) -> list[EntityPair]:
    """Parse the full ``/resolve`` body into entity pairs.

    Raises:
        BadRequest: for anything other than ``{"pairs": [entry, ...]}``.
    """
    if not isinstance(body, Mapping) or "pairs" not in body:
        raise BadRequest('body must be a JSON object with a "pairs" array')
    entries = body["pairs"]
    if not isinstance(entries, list):
        raise BadRequest('"pairs" must be an array')
    return [pair_from_json(entry, next(_request_ids)) for entry in entries]


def _shards_from_json(body: Mapping[str, Any]) -> int | None:
    """Parse the optional ``"shards"`` field of a ``/bulk`` body.

    Raises:
        BadRequest: when present but not a positive integer.
    """
    shards = body.get("shards")
    if shards is None:
        return None
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise BadRequest('"shards" must be a positive integer')
    return shards


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the server's attached service."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- helpers -------------------------------------------------------------

    def _send_json(
        self, status: int, payload: Mapping[str, Any], headers: Mapping[str, str] = {}
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, headers: Mapping[str, str] = {}
    ) -> None:
        # Error paths may not have consumed the request body; close the
        # connection so unread bytes cannot desynchronize HTTP/1.1 keep-alive.
        self.close_connection = True
        self._send_json(status, {"error": message}, {"Connection": "close", **headers})

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - log plumbing
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/healthz":
            # Liveness: always 200 while the process answers.  Readiness is
            # reported as a field here and as the status code of /readyz.
            self._send_json(
                200,
                {
                    "status": "ok",
                    "live": True,
                    "ready": service.ready,
                    "running": service.running,
                    "pool_size": service.resolver.pool_size,
                },
            )
        elif self.path == "/readyz":
            breaker = service.breaker
            payload = {
                "ready": service.ready,
                "running": service.running,
                "breaker": breaker.stats() if breaker is not None else None,
            }
            if service.ready:
                self._send_json(200, payload)
            else:
                retry_after = breaker.retry_after if breaker is not None else 1.0
                self._send_json(
                    503, payload, {"Retry-After": _retry_after_header(retry_after)}
                )
        elif self.path == "/stats":
            payload = service.stats().to_dict()
            payload["metrics"] = service.metrics.snapshot()
            self._send_json(200, payload)
        elif self.path == "/metrics":
            body = service.metrics.render().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/resolve", "/bulk"):
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error_json(400, f"body must be 1..{MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
            pairs = pairs_from_json(body)
            shards = _shards_from_json(body) if self.path == "/bulk" else None
        except (BadRequest, UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, str(error))
            return
        try:
            if self.path == "/bulk":
                resolutions = self.server.service.resolve_bulk(pairs, shards=shards)
            else:
                resolutions = self.server.service.resolve_many(
                    pairs, timeout=RESOLVE_TIMEOUT_SECONDS
                )
        except CostBudgetExceeded as error:
            self._send_error_json(429, str(error))
            return
        except (ServiceDegraded, CircuitOpenError) as error:
            # Degraded mode: the breaker refused new LLM-bound work, either
            # at admission (ServiceDegraded) or deep in the transport
            # (CircuitOpenError surfacing through a failed flush future).
            retry_after = getattr(error, "retry_after", 1.0)
            self._send_error_json(
                503, str(error), {"Retry-After": _retry_after_header(retry_after)}
            )
            return
        except (ServiceOverloaded, ServiceClosed) as error:
            self._send_error_json(503, str(error), {"Retry-After": "1"})
            return
        except DeadlineExceeded as error:
            self._send_error_json(504, str(error))
            return
        # concurrent.futures.TimeoutError is only an alias of the builtin
        # from Python 3.11; catch both to stay correct on 3.10.
        except (TimeoutError, FutureTimeoutError):
            self._send_error_json(503, "resolution timed out", {"Retry-After": "1"})
            return
        except Exception as error:  # noqa: BLE001 - a failed flush must not
            # drop the connection without a response.
            self._send_error_json(500, f"resolution failed: {error}")
            return
        self._send_json(
            200, {"resolutions": [resolution.to_dict() for resolution in resolutions]}
        )


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ResolutionService`.

    Args:
        service: the (started) service answering the requests.
        host / port: bind address; port ``0`` picks a free port (see
            :attr:`server_port` for the actual one).
        verbose: log one line per request to stderr.
    """

    daemon_threads = True

    def __init__(
        self,
        service: ResolutionService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _ServiceRequestHandler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        """The server's ``http://host:port`` base URL."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> "ServiceHTTPServer":
        """Serve on a daemon thread (for tests and embedded use)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-service-http", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and join the background thread (if any)."""
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
