"""Stdlib HTTP JSON front end for a :class:`ResolutionService`.

Endpoints:

* ``POST /resolve`` — body ``{"pairs": [{"pair_id"?, "left": {...}, "right":
  {...}}]}`` where ``left``/``right`` are flat attribute→value mappings;
  responds ``{"resolutions": [Resolution.to_dict(), ...]}``.
* ``POST /bulk`` — same pair payload plus an optional ``"shards"`` integer;
  resolves through the engine-backed bulk path
  (:meth:`ResolutionService.resolve_bulk`), which shards the submission
  deterministically past the micro-batch queue.
* ``GET /stats`` — the service's :meth:`ServiceStats.to_dict` snapshot,
  consolidated with a ``"metrics"`` dump of the service's registry so both
  endpoints read from the same source of truth.
* ``GET /metrics`` — the registry in Prometheus text exposition format
  (``text/plain; version=0.0.4``), ready for an external scraper.
* ``GET /healthz`` — *liveness* probe: 200 while the process serves, with
  ``live`` / ``ready`` fields so one probe answers both questions.
* ``GET /readyz`` — *readiness* probe: 503 (+ ``Retry-After``) while the
  backend circuit breaker is open or the consumer is not running, so a load
  balancer drains the replica without restarting it.

Every ``GET`` route also answers ``HEAD`` (same status and headers, no
body) — load balancers commonly probe with HEAD and the stdlib default would
have answered 501.

Multi-tenant requests authenticate with an ``X-API-Key`` header (see
:mod:`repro.service.tenants`); an unknown key maps to 401, an over-quota or
budget-exhausted tenant to 429 (quota rejections carry a ``Retry-After``).

Error mapping: malformed requests → 400, stalled/short request bodies → 408,
cost-budget and tenant-quota rejection → 429, queue backpressure and degraded
mode (breaker open) → 503 (with ``Retry-After``; the backpressure value is
derived from the queue backlog, see
:meth:`ResolutionService.overload_retry_after`), tripped deadline budgets
→ 504.

The routing and error-mapping logic lives in the transport-agnostic
:class:`ServiceRouter` so this threaded front end and the asyncio one
(:mod:`repro.service.aio`) return byte-identical bodies for the same request
— the identity oracle of ``benchmarks/bench_latency.py`` holds by
construction.
"""

from __future__ import annotations

import itertools
import json
import math
import socket
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.data.schema import EntityPair, Record
from repro.resilience import CircuitOpenError, DeadlineExceeded
from repro.service.service import (
    CostBudgetExceeded,
    ResolutionService,
    ServiceClosed,
    ServiceDegraded,
    ServiceOverloaded,
)
from repro.service.tenants import (
    TenantBudgetExceeded,
    TenantQuotaExceeded,
    UnknownTenant,
)

#: Upper bound on accepted request bodies (1 MiB keeps parsing cheap).
MAX_BODY_BYTES = 1 << 20

#: Deadline for one HTTP resolve call (generous; micro-batches are fast).
RESOLVE_TIMEOUT_SECONDS = 60.0

#: Default deadline for reading one request body off the socket.  A client
#: that promises ``Content-Length`` bytes and stalls mid-body is answered 408
#: once this expires instead of parking a handler forever (slowloris).
DEFAULT_BODY_READ_TIMEOUT_SECONDS = 10.0

_request_ids = itertools.count(1)


class BadRequest(ValueError):
    """A malformed ``/resolve`` payload (mapped to HTTP 400)."""


def _retry_after_header(seconds: float) -> str:
    """Format a ``Retry-After`` value: integral seconds, at least 1."""
    return str(max(1, math.ceil(seconds)))


def pair_from_json(payload: Mapping[str, Any], request_id: int) -> EntityPair:
    """Build an :class:`EntityPair` from one ``/resolve`` payload entry.

    Raises:
        BadRequest: when the entry is not ``{"left": {...}, "right": {...}}``
            with string attribute values.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest(f"pair entry must be an object, got {type(payload).__name__}")
    sides = {}
    for side in ("left", "right"):
        values = payload.get(side)
        if not isinstance(values, Mapping) or not values:
            raise BadRequest(f"pair entry needs a non-empty {side!r} object")
        clean: dict[str, str | None] = {}
        for name, value in values.items():
            if value is not None and not isinstance(value, str):
                raise BadRequest(
                    f"attribute {name!r} of {side!r} must be a string or null"
                )
            clean[str(name)] = value
        sides[side] = clean
    pair_id = payload.get("pair_id") or f"http-{request_id}"
    return EntityPair(
        pair_id=str(pair_id),
        left=Record(record_id=f"{pair_id}-L", values=sides["left"]),
        right=Record(record_id=f"{pair_id}-R", values=sides["right"]),
    )


def pairs_from_json(body: Any) -> list[EntityPair]:
    """Parse the full ``/resolve`` body into entity pairs.

    Raises:
        BadRequest: for anything other than ``{"pairs": [entry, ...]}``.
    """
    if not isinstance(body, Mapping) or "pairs" not in body:
        raise BadRequest('body must be a JSON object with a "pairs" array')
    entries = body["pairs"]
    if not isinstance(entries, list):
        raise BadRequest('"pairs" must be an array')
    return [pair_from_json(entry, next(_request_ids)) for entry in entries]


def _shards_from_json(body: Mapping[str, Any]) -> int | None:
    """Parse the optional ``"shards"`` field of a ``/bulk`` body.

    Raises:
        BadRequest: when present but not a positive integer.
    """
    shards = body.get("shards")
    if shards is None:
        return None
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise BadRequest('"shards" must be a positive integer')
    return shards


@dataclass(frozen=True)
class RouteResult:
    """One routed response, transport-agnostic.

    The front ends (threaded and asyncio) turn this into wire bytes; the
    body, status and extra headers are identical whichever transport carried
    the request.

    Attributes:
        status: HTTP status code.
        body: response body bytes (front ends omit it for ``HEAD`` but still
            send its length, per RFC 9110).
        content_type: ``Content-Type`` header value.
        headers: extra response headers (``Retry-After`` etc.).
        close: whether the connection must be closed after this response
            (error paths may not have consumed the request body; leaving the
            connection open would desynchronize HTTP/1.1 keep-alive).
    """

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()
    close: bool = False


def _json_result(
    status: int,
    payload: Mapping[str, Any],
    headers: tuple[tuple[str, str], ...] = (),
    close: bool = False,
) -> RouteResult:
    return RouteResult(
        status=status,
        body=json.dumps(payload).encode("utf-8"),
        headers=headers,
        close=close,
    )


def _error_result(
    status: int, message: str, headers: tuple[tuple[str, str], ...] = ()
) -> RouteResult:
    return _json_result(status, {"error": message}, headers=headers, close=True)


class ServiceRouter:
    """Transport-agnostic request routing for one :class:`ResolutionService`.

    Both HTTP front ends delegate every parsed request here, so routing,
    tenant authentication, error mapping and response bodies are identical by
    construction.  Per-tenant request metrics
    (``repro_service_requests_total{tenant,status}`` and the latency
    histogram) are recorded for the POST routes on the way out.
    """

    def __init__(self, service: ResolutionService) -> None:
        self.service = service

    def handle(
        self,
        method: str,
        path: str,
        headers: Mapping[str, str],
        body: bytes | None = None,
    ) -> RouteResult:
        """Route one request; never raises (failures become error results).

        Args:
            method: ``GET``, ``HEAD`` or ``POST`` (anything else → 501).
            path: request path.
            headers: request headers with *lower-cased* names.
            body: request body (POST only).
        """
        if method in ("GET", "HEAD"):
            return self._handle_get(path)
        if method == "POST":
            clock = self.service.metrics.clock
            started = clock.monotonic()
            tenant_label: str | None = None
            try:
                tenant = self.service.authenticate(headers.get("x-api-key"))
                tenant_label = tenant.name if tenant is not None else None
                result = self._handle_post(path, body if body is not None else b"", tenant)
            except UnknownTenant as error:
                result = _error_result(401, str(error))
            self.service.observe_request(
                tenant_label, result.status, clock.monotonic() - started
            )
            return result
        return _error_result(501, f"unsupported method {method!r}")

    # -- GET/HEAD routes -----------------------------------------------------

    def _handle_get(self, path: str) -> RouteResult:
        service = self.service
        if path == "/healthz":
            # Liveness: always 200 while the process answers.  Readiness is
            # reported as a field here and as the status code of /readyz.
            return _json_result(
                200,
                {
                    "status": "ok",
                    "live": True,
                    "ready": service.ready,
                    "running": service.running,
                    "pool_size": service.resolver.pool_size,
                },
            )
        if path == "/readyz":
            breaker = service.breaker
            payload = {
                "ready": service.ready,
                "running": service.running,
                "breaker": breaker.stats() if breaker is not None else None,
            }
            if service.ready:
                return _json_result(200, payload)
            retry_after = breaker.retry_after if breaker is not None else 1.0
            return _json_result(
                503, payload, (("Retry-After", _retry_after_header(retry_after)),)
            )
        if path == "/stats":
            payload = service.stats().to_dict()
            payload["metrics"] = service.metrics.snapshot()
            return _json_result(200, payload)
        if path == "/metrics":
            return RouteResult(
                status=200,
                body=service.metrics.render().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return _error_result(404, f"unknown path {path!r}")

    # -- POST routes ---------------------------------------------------------

    def _handle_post(self, path: str, raw: bytes, tenant) -> RouteResult:
        if path not in ("/resolve", "/bulk"):
            return _error_result(404, f"unknown path {path!r}")
        try:
            body = json.loads(raw.decode("utf-8"))
            pairs = pairs_from_json(body)
            shards = _shards_from_json(body) if path == "/bulk" else None
        except (BadRequest, UnicodeDecodeError, json.JSONDecodeError) as error:
            return _error_result(400, str(error))
        service = self.service
        try:
            if path == "/bulk":
                resolutions = service.resolve_bulk(pairs, shards=shards, tenant=tenant)
            else:
                resolutions = service.resolve_many(
                    pairs, timeout=RESOLVE_TIMEOUT_SECONDS, tenant=tenant
                )
        except TenantQuotaExceeded as error:
            return _error_result(
                429,
                str(error),
                (("Retry-After", _retry_after_header(error.retry_after)),),
            )
        except (TenantBudgetExceeded, CostBudgetExceeded) as error:
            return _error_result(429, str(error))
        except (ServiceDegraded, CircuitOpenError) as error:
            # Degraded mode: the breaker refused new LLM-bound work, either
            # at admission (ServiceDegraded) or deep in the transport
            # (CircuitOpenError surfacing through a failed flush future).
            retry_after = getattr(error, "retry_after", 1.0)
            return _error_result(
                503, str(error), (("Retry-After", _retry_after_header(retry_after)),)
            )
        except ServiceOverloaded as error:
            # Backpressure: tell the client when the backlog should have
            # drained instead of a flat "come back in a second".
            return _error_result(
                503,
                str(error),
                (
                    (
                        "Retry-After",
                        _retry_after_header(service.overload_retry_after()),
                    ),
                ),
            )
        except ServiceClosed as error:
            return _error_result(503, str(error), (("Retry-After", "1"),))
        except DeadlineExceeded as error:
            return _error_result(504, str(error))
        # concurrent.futures.TimeoutError is only an alias of the builtin
        # from Python 3.11; catch both to stay correct on 3.10.
        except (TimeoutError, FutureTimeoutError):
            return _error_result(503, "resolution timed out", (("Retry-After", "1"),))
        except Exception as error:  # noqa: BLE001 - a failed flush must not
            # drop the connection without a response.
            return _error_result(500, f"resolution failed: {error}")
        return _json_result(
            200, {"resolutions": [resolution.to_dict() for resolution in resolutions]}
        )


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the server's attached service."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- helpers -------------------------------------------------------------

    def _send_result(self, result: RouteResult, head_only: bool = False) -> None:
        if result.close:
            self.close_connection = True
        self.send_response(result.status)
        self.send_header("Content-Type", result.content_type)
        self.send_header("Content-Length", str(len(result.body)))
        for name, value in result.headers:
            self.send_header(name, value)
        if result.close:
            self.send_header("Connection", "close")
        self.end_headers()
        if not head_only:
            self.wfile.write(result.body)

    def _request_headers(self) -> dict[str, str]:
        return {name.lower(): value for name, value in self.headers.items()}

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - log plumbing
            super().log_message(format, *args)

    def _read_body(self, length: int) -> bytes | None:
        """Read exactly ``length`` body bytes under a socket deadline.

        Returns ``None`` when the client stalls mid-body or closes early —
        a slowloris client that promises ``Content-Length`` bytes and sends
        fewer must not park this handler thread forever.  The deadline covers
        the *whole* body, so trickling one byte per timeout window cannot
        extend it indefinitely either.
        """
        deadline_clock = self.server.service.metrics.clock
        deadline = deadline_clock.monotonic() + self.server.body_read_timeout
        chunks: list[bytes] = []
        remaining = length
        while remaining > 0:
            budget = deadline - deadline_clock.monotonic()
            if budget <= 0:
                return None
            try:
                self.connection.settimeout(budget)
                chunk = self.rfile.read1(remaining) if hasattr(
                    self.rfile, "read1"
                ) else self.rfile.read(remaining)
            except (socket.timeout, TimeoutError):
                return None
            except OSError:
                return None
            finally:
                self.connection.settimeout(self.server.socket_timeout)
            if not chunk:
                return None  # client closed before sending the promised bytes
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._send_result(self.server.router.handle("GET", self.path, {}))

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        # Load balancers commonly probe with HEAD; answer with the GET
        # route's status and headers (Content-Length included) minus the body
        # instead of the stdlib's default 501.
        self._send_result(
            self.server.router.handle("HEAD", self.path, {}), head_only=True
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_result(_error_result(400, "invalid Content-Length"))
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_result(
                _error_result(400, f"body must be 1..{MAX_BODY_BYTES} bytes")
            )
            return
        raw = self._read_body(length)
        if raw is None:
            self._send_result(
                _error_result(
                    408,
                    f"request body stalled: {length} bytes promised, fewer "
                    f"received within {self.server.body_read_timeout:g}s",
                )
            )
            return
        result = self.server.router.handle(
            "POST", self.path, self._request_headers(), raw
        )
        self._send_result(result)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ResolutionService`.

    Args:
        service: the (started) service answering the requests.
        host / port: bind address; port ``0`` picks a free port (see
            :attr:`server_port` for the actual one).
        verbose: log one line per request to stderr.
        body_read_timeout: seconds a client gets to deliver a promised
            request body before the handler answers 408 (slowloris guard).
    """

    daemon_threads = True

    #: Per-connection socket timeout restored after each body read; also
    #: bounds how long an idle keep-alive connection may sit between
    #: requests before the handler closes it.
    socket_timeout = 65.0

    def __init__(
        self,
        service: ResolutionService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        body_read_timeout: float = DEFAULT_BODY_READ_TIMEOUT_SECONDS,
    ) -> None:
        if body_read_timeout <= 0:
            raise ValueError(
                f"body_read_timeout must be > 0, got {body_read_timeout}"
            )
        self.service = service
        self.router = ServiceRouter(service)
        self.verbose = verbose
        self.body_read_timeout = body_read_timeout
        super().__init__((host, port), _ServiceRequestHandler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        """The server's ``http://host:port`` base URL."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> "ServiceHTTPServer":
        """Serve on a daemon thread (for tests and embedded use)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-service-http", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and join the background thread (if any)."""
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
