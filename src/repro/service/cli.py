"""``repro-serve``: run the micro-batching resolution server from the shell.

Default mode binds the HTTP front end over a service whose demonstration pool
is a named synthetic benchmark's train split:

.. code-block:: bash

    repro-serve --dataset beer --port 8777

``--self-test`` instead runs a deterministic end-to-end smoke check — 100
simulated concurrent requests (with duplicates) through the full
queue → micro-batcher → pipeline → cache path — and prints a JSON report.
It exits non-zero if micro-batching failed to amortize LLM calls, if a
repeated request set missed the cache, or if a re-run with the same seed
produced different labels.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Sequence

from repro.core.config import BatcherConfig
from repro.data.registry import available_datasets, load_dataset
from repro.observability.tracing import Tracer
from repro.resilience import BreakerConfig
from repro.service.config import ServiceConfig
from repro.service.service import ResolutionService
from repro.service.tenants import TenantConfig

#: One Prometheus text-exposition sample line: ``name{labels} value``.
_SAMPLE_LINE = re.compile(
    r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


def _exposition_is_valid(text: str) -> bool:
    """Whether every non-comment line of ``text`` is a well-formed sample."""
    samples = [line for line in text.splitlines() if line and not line.startswith("#")]
    return bool(samples) and all(_SAMPLE_LINE.match(line) for line in samples)


def _family_total(text: str, name: str) -> float:
    """Sum of all sample values of one metric family in an exposition."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest and rest[0] not in (" ", "{"):
            continue  # a longer family name sharing the prefix
        try:
            total += float(line.rsplit(" ", 1)[1])
        except (IndexError, ValueError):
            continue
    return total


def _fetch_metrics(service: ResolutionService) -> tuple[str, str]:
    """Serve the service over HTTP on a free port and GET ``/metrics``."""
    from urllib.request import urlopen

    from repro.service.http import ServiceHTTPServer

    server = ServiceHTTPServer(service, port=0).serve_in_background()
    try:
        with urlopen(f"{server.address}/metrics", timeout=10.0) as response:
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode("utf-8")
    finally:
        server.shutdown()
        server.server_close()
    return text, content_type


def _frontend_checks(service: ResolutionService) -> dict[str, bool]:
    """Serve ``service`` on both front ends and compare their behavior.

    Returns check outcomes: the async front end must answer a warmed (cached)
    ``POST /resolve`` with a byte-identical body to the threaded one, and both
    must answer ``HEAD /healthz`` with 200 and no body.
    """
    from urllib.request import Request, urlopen

    from repro.service.aio import AsyncServiceHTTPServer
    from repro.service.http import ServiceHTTPServer

    payload = json.dumps(
        {
            "pairs": [
                {
                    "pair_id": "self-test-identity",
                    "left": {"name": "ipa", "style": "india pale ale"},
                    "right": {"name": "IPA", "style": "India Pale Ale"},
                }
            ]
        }
    ).encode("utf-8")

    def post(base: str) -> bytes:
        request = Request(
            f"{base}/resolve", data=payload, headers={"Content-Type": "application/json"}
        )
        with urlopen(request, timeout=30.0) as response:
            return response.read()

    def head(base: str) -> tuple[int, bytes]:
        request = Request(f"{base}/healthz", method="HEAD")
        with urlopen(request, timeout=10.0) as response:
            return response.status, response.read()

    threaded = ServiceHTTPServer(service, port=0).serve_in_background()
    aio = AsyncServiceHTTPServer(service, port=0).serve_in_background()
    try:
        post(threaded.address)  # warm the cache: comparisons below are hits
        threaded_body = post(threaded.address)
        async_body = post(aio.address)
        threaded_head = head(threaded.address)
        async_head = head(aio.address)
    finally:
        aio.shutdown()
        threaded.shutdown()
        threaded.server_close()
    return {
        "async_frontend_byte_identical_to_threaded": (
            bool(threaded_body) and threaded_body == async_body
        ),
        "head_answered_on_both_frontends": (
            threaded_head == (200, b"") and async_head == (200, b"")
        ),
    }


def _tenant_checks() -> dict[str, bool]:
    """Deterministic (fake-clock) checks of the tenant admission layer."""
    from repro.engines.faults import FakeClock
    from repro.service.tenants import (
        TenantBudgetExceeded,
        TenantManager,
        TenantQuotaExceeded,
        UnknownTenant,
    )

    clock = FakeClock()
    manager = TenantManager(
        (
            TenantConfig(
                name="quota", api_key="k-quota", requests_per_second=1.0, burst=1.0
            ),
            TenantConfig(name="budget", api_key="k-budget", cost_budget=0.01),
        ),
        require_api_key=True,
        clock=clock,
    )

    quota = manager.authenticate("k-quota")
    assert quota is not None
    quota.admit()
    quota_rejects = False
    try:
        quota.admit()
    except TenantQuotaExceeded as error:
        quota_rejects = error.retry_after > 0
    clock.advance(1.5)  # refill at 1 req/s -> the bucket can afford one again
    quota.admit()
    quota_recovers = True

    budget = manager.authenticate("k-budget")
    assert budget is not None
    budget.check_budget()  # nothing spent yet
    budget.charge(0.02)
    budget_blocks = False
    try:
        budget.check_budget()
    except TenantBudgetExceeded:
        budget_blocks = True

    unknown_rejected = False
    try:
        manager.authenticate("wrong-key")
    except UnknownTenant:
        unknown_rejected = True
    missing_rejected = False
    try:
        manager.authenticate(None)  # keys are required for this manager
    except UnknownTenant:
        missing_rejected = True

    return {
        "tenant_quota_rejects_then_recovers": quota_rejects and quota_recovers,
        "tenant_budget_blocks_after_spend": budget_blocks,
        "unknown_or_missing_api_key_rejected": unknown_rejected and missing_rejected,
    }


def parse_tenant(spec: str) -> TenantConfig:
    """Parse one ``--tenant`` spec: comma-separated ``key=value`` fields.

    ``name`` and ``key`` are required; ``rps``, ``burst`` and ``budget`` are
    optional, e.g. ``--tenant name=acme,key=k-acme,rps=50,budget=2.5``.
    """
    fields: dict[str, str] = {}
    for part in spec.split(","):
        name, sep, value = part.partition("=")
        if not sep or not name.strip():
            raise argparse.ArgumentTypeError(
                f"tenant field {part!r} is not key=value"
            )
        fields[name.strip()] = value.strip()
    unknown = set(fields) - {"name", "key", "rps", "burst", "budget"}
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown tenant fields: {sorted(unknown)}"
        )
    if "name" not in fields or "key" not in fields:
        raise argparse.ArgumentTypeError("tenant spec needs name= and key=")
    try:
        return TenantConfig(
            name=fields["name"],
            api_key=fields["key"],
            requests_per_second=float(fields["rps"]) if "rps" in fields else None,
            burst=float(fields["burst"]) if "burst" in fields else None,
            cost_budget=float(fields["budget"]) if "budget" in fields else None,
        )
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def build_service(args: argparse.Namespace) -> ResolutionService:
    """Build (but do not start) a service from parsed CLI arguments."""
    dataset = load_dataset(args.dataset, seed=args.data_seed, scale=args.scale)
    config = ServiceConfig(
        batcher=BatcherConfig(seed=args.seed, model=args.model),
        max_batch_size=args.max_batch_size,
        max_wait_seconds=args.max_wait,
        num_workers=args.workers,
        cache_capacity=args.cache_capacity,
        spill_path=args.spill,
        cost_budget=args.cost_budget,
        tenants=tuple(args.tenant),
        require_api_key=args.require_api_key,
    )
    return ResolutionService.from_dataset(dataset, config)


def run_self_test(
    seed: int = 1,
    data_seed: int = 7,
    dataset_name: str = "beer",
    scale: float = 1.0,
    model: str = "gpt-3.5-03",
    max_batch_size: int = 16,
    max_wait_seconds: float = 0.05,
    num_workers: int = 4,
) -> dict[str, object]:
    """Run the deterministic serving smoke test and return its report.

    The workload is 100 requests over (up to) 80 unique pairs plus 20
    duplicates, all submitted before the consumer starts so flush composition
    — and therefore every label — is reproducible for a fixed seed.

    The report's ``"ok"`` key is ``False`` when an amortization / cache /
    determinism / observability invariant is violated (``main()`` turns that
    into exit code 1); individual outcomes are under ``"checks"``.

    The first pass runs with tracing enabled and the second without: equal
    labels across the passes therefore also prove that instrumentation
    observes the run without altering it.  Before stopping, the first pass
    serves itself over HTTP on a free port and validates the ``GET /metrics``
    Prometheus exposition (populated latency histogram, retry counters,
    cache hit-rate gauge).
    """
    dataset = load_dataset(dataset_name, seed=data_seed, scale=scale)
    unique = [pair.without_label() for pair in dataset.splits.test][:80]
    workload = unique + unique[: max(1, len(unique) // 4)]

    def serve_once(tracer: Tracer | None) -> tuple[list[int], dict[str, object]]:
        config = ServiceConfig(
            batcher=BatcherConfig(seed=seed, model=model),
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_seconds,
            num_workers=num_workers,
            # Gating enabled so the self-test also proves the breaker surface:
            # state in /stats, pre-seeded metric families, and (on a healthy
            # simulated backend) a breaker that never leaves "closed".
            breaker=BreakerConfig(),
        )
        service = ResolutionService.from_dataset(dataset, config, tracer=tracer)
        # Submit the whole workload before starting the consumer: flush
        # composition is then a pure function of the workload, which is what
        # makes every label reproducible for a fixed seed.
        futures = [service.submit(pair) for pair in workload]
        service.start()
        labels = [int(future.result(timeout=60.0).label) for future in futures]
        first_pass = service.stats().to_dict()
        # Phase 2: the same unique set again — must be pure cache hits.
        service.resolve_many(unique)
        repeat = service.stats().to_dict()
        metrics_text, metrics_content_type = _fetch_metrics(service)
        frontend_checks = _frontend_checks(service) if tracer is not None else {}
        service.stop()
        return labels, {
            "first_pass": first_pass,
            "repeat": repeat,
            "metrics_text": metrics_text,
            "metrics_content_type": metrics_content_type,
            "frontend_checks": frontend_checks,
        }

    tracer = Tracer()
    labels, report = serve_once(tracer)
    labels_again, _ = serve_once(None)

    first = report["first_pass"]
    repeat = report["repeat"]
    feature_store = repeat.get("feature_store") or {}
    metrics_text = str(report.pop("metrics_text"))
    metrics_content_type = str(report.pop("metrics_content_type"))
    spans = tracer.finished_spans()
    span_names = {span.name for span in spans}
    stage_spans = [span for span in spans if span.name.startswith("stage:")]
    checks = {
        "fewer_llm_calls_than_requests": first["llm_calls"] < len(workload),
        "duplicates_joined_in_flight": first["inflight_joined"] >= 1,
        "repeat_hits_cache_with_zero_new_llm_calls": (
            repeat["llm_calls"] == first["llm_calls"]
            and repeat["cache_hits"] >= len(unique)
        ),
        "deterministic_labels_for_fixed_seed": labels == labels_again,
        # The columnar feature engine memoizes every vector the session
        # computed (pool + questions), content-addressed by fingerprint.
        "feature_store_holds_session_vectors": (
            feature_store.get("size", 0) >= len(unique)
        ),
        # Pass 1 was traced, pass 2 was not; equal labels above already prove
        # tracing changed nothing.  These pin the trace shape itself.
        "traced_flushes_with_nested_stages": (
            {"service:flush", "resolver:resolve", "stage:inference"} <= span_names
            and bool(stage_spans)
            and all(span.parent_id is not None for span in stage_spans)
        ),
        "metrics_exposition_is_valid": (
            _exposition_is_valid(metrics_text)
            and metrics_content_type.startswith("text/plain")
        ),
        "llm_latency_histogram_populated": (
            _family_total(metrics_text, "repro_llm_latency_seconds_count") > 0
        ),
        "retry_counters_exposed": "repro_transport_retries_total" in metrics_text,
        "cache_hit_rate_gauge_populated": (
            _family_total(metrics_text, "repro_cache_hit_rate") > 0
        ),
        "flushes_counted_by_reason": (
            _family_total(metrics_text, "repro_service_flushes_total") >= 1
        ),
        # The planner's routing counters must reach both surfaces: the
        # /stats planning dict (lsh_routes / candidate counts / oracle
        # recall) and the per-regime route metric.  At self-test scale every
        # self-join is dense, so the dense counter carries the routes while
        # the lsh family renders at zero — proving the schema is stable
        # before any large input arrives.
        "planner_routing_counters_in_stats": (
            {"lsh_routes", "lsh_candidates", "lsh_recall_min"}
            <= set(feature_store.get("planning") or {})
        ),
        "planner_route_metric_exposed": (
            "repro_planner_route_total" in metrics_text
            and _family_total(metrics_text, "repro_planner_route_total") >= 1
        ),
        # The resilience layer: breaker state must reach /stats, and every
        # breaker/degraded family must render pre-seeded — at zero, since the
        # simulated backend is healthy — so scrape schemas are stable before
        # the first outage.
        "breaker_state_in_stats": (
            (first.get("breaker") or {}).get("state") == "closed"
        ),
        "breaker_metrics_pre_seeded_at_zero": all(
            name in metrics_text and _family_total(metrics_text, name) == 0
            for name in (
                "repro_breaker_state",
                "repro_breaker_trips_total",
                "repro_breaker_fast_failures_total",
                "repro_service_degraded_total",
            )
        ),
        # Per-tenant request metric families render even without configured
        # tenants (pre-seeded for the anonymous label), so dashboards keyed on
        # them populate before the first API key is handed out.
        "tenant_request_metrics_exposed": (
            "repro_service_requests_total" in metrics_text
        ),
    }
    # The asyncio front end must be indistinguishable from the threaded one
    # (byte-identical bodies) and the tenant layer must enforce quota/budget/
    # auth deterministically — both checked on the pass-1 service above.
    checks.update(report.pop("frontend_checks"))
    checks.update(_tenant_checks())
    report.update(
        {
            "requests": len(workload),
            "unique_pairs": len(unique),
            "feature_store": feature_store,
            "checks": checks,
            "ok": all(checks.values()),
        }
    )
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Micro-batching entity-resolution server (simulated LLM).",
    )
    parser.add_argument(
        "--dataset",
        default="beer",
        choices=available_datasets(),
        help="benchmark whose train split seeds the demonstration pool",
    )
    parser.add_argument("--seed", type=int, default=1, help="session seed")
    parser.add_argument(
        "--data-seed", type=int, default=7, help="dataset generation seed"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale multiplier"
    )
    parser.add_argument("--model", default="gpt-3.5-03", help="LLM profile name")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8777)
    parser.add_argument(
        "--max-batch-size", type=int, default=32, help="pairs per micro-batch flush"
    )
    parser.add_argument(
        "--max-wait", type=float, default=0.05, help="micro-batch deadline (seconds)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="concurrent prompt dispatch threads"
    )
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument(
        "--spill", default=None, help="JSONL path for cache warm-start/spill"
    )
    parser.add_argument(
        "--cost-budget", type=float, default=None, help="session budget in dollars"
    )
    parser.add_argument(
        "--frontend",
        choices=("async", "threaded"),
        default="async",
        help=(
            "HTTP front end: the asyncio server (default) or the threaded "
            "stdlib server kept as a behavioral oracle"
        ),
    )
    parser.add_argument(
        "--tenant",
        action="append",
        type=parse_tenant,
        default=[],
        metavar="name=N,key=K[,rps=R][,burst=B][,budget=D]",
        help="register a tenant (repeatable); requests authenticate via X-API-Key",
    )
    parser.add_argument(
        "--require-api-key",
        action="store_true",
        help="reject requests without a registered X-API-Key (401)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the deterministic serving smoke test and exit",
    )
    args = parser.parse_args(argv)
    if args.require_api_key and not args.tenant:
        parser.error("--require-api-key needs at least one --tenant")

    if args.self_test:
        report = run_self_test(
            seed=args.seed,
            data_seed=args.data_seed,
            dataset_name=args.dataset,
            scale=args.scale,
            model=args.model,
            max_batch_size=args.max_batch_size,
            max_wait_seconds=args.max_wait,
            num_workers=args.workers,
        )
        print(json.dumps(report, indent=2))
        return 0 if report["ok"] else 1

    service = build_service(args).start()
    if args.frontend == "threaded":
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(
            service, host=args.host, port=args.port, verbose=True
        )
    else:
        from repro.service.aio import AsyncServiceHTTPServer

        server = AsyncServiceHTTPServer(
            service, host=args.host, port=args.port, verbose=True
        ).serve_in_background()
    print(
        f"repro-serve ({args.frontend}) listening on {server.address}", flush=True
    )
    print(
        "try:  curl -s -X POST "
        f"{server.address}/resolve -d '"
        '{"pairs": [{"left": {"name": "ipa"}, "right": {"name": "IPA"}}]}\'',
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        if args.frontend == "threaded":
            server.server_close()
        else:
            server.shutdown()
        service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
