"""Configuration of the resolution service layer.

A :class:`ServiceConfig` wraps one :class:`~repro.core.config.BatcherConfig`
(the design-space point the service resolves with) and adds the serving knobs:
micro-batch shape, queue bounds, worker pool size, result-cache capacity and
the cost-aware admission budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.core.config import BatcherConfig
from repro.resilience.breaker import BreakerConfig
from repro.service.tenants import TenantConfig

#: Default number of pairs collected into one micro-batch flush.
DEFAULT_MAX_BATCH_SIZE = 32

#: Default micro-batch deadline in seconds (flush even when not full).
DEFAULT_MAX_WAIT_SECONDS = 0.05


@dataclass(frozen=True)
class ServiceConfig:
    """Serving-layer configuration around a :class:`BatcherConfig`.

    Attributes:
        batcher: the design-space point used to resolve flushed micro-batches
            (its ``batch_size`` still governs questions per *prompt*; a flush
            of ``max_batch_size`` pairs is split into prompts by the pipeline).
        max_batch_size: pairs per micro-batch flush; a flush is triggered as
            soon as this many requests are queued.
        max_wait_seconds: micro-batch deadline; a partial batch is flushed
            once the oldest queued request has waited this long.  ``0`` flushes
            whatever is immediately available.
        queue_capacity: bound of the request queue; producers hitting a full
            queue block (backpressure) and are rejected after
            ``admission_timeout_seconds``.
        admission_timeout_seconds: how long a producer may block on a full
            queue before :class:`~repro.service.service.ServiceOverloaded` is
            raised.
        num_workers: thread-pool size used for concurrent prompt dispatch
            inside each flush (1 = serial dispatch).
        cache_capacity: maximum number of entries of the pair-level result
            cache (LRU eviction).
        spill_path: optional JSONL file the cache is warm-started from at
            ``start()`` and spilled to at ``stop()``; ``None`` disables
            persistence.
        cost_budget: optional session budget in dollars; once the session's
            cumulative cost (API + labeling) reaches it, new *uncached* work is
            rejected with :class:`~repro.service.service.CostBudgetExceeded`.
            Cache hits are always served — a budget-exhausted service degrades
            to a cache, it does not go dark.  Admission checks *recorded*
            cost, so the budget can be overshot by at most the cost of the
            requests already queued or in flight when it is crossed (bounded
            by ``queue_capacity``); size the budget with that headroom in
            mind.
        breaker: optional :class:`~repro.resilience.BreakerConfig` enabling
            the circuit breaker around the LLM backend.  When the breaker is
            open the service serves cache hits and in-flight joins but
            refuses new LLM-bound work with
            :class:`~repro.service.service.ServiceDegraded` (HTTP 503 +
            ``Retry-After``); ``None`` disables availability gating.
        deadline_budget_seconds: optional total wall-clock budget per flush
            (threaded down through the retry ladder as the ambient
            :func:`~repro.resilience.current_deadline`); ``None`` disables
            deadline budgets.
        tenants: declared serving tenants
            (:class:`~repro.service.tenants.TenantConfig`): API keys mapping
            to per-tenant requests-per-second quotas and cost budgets.  Empty
            means single-tenant operation — every request is anonymous and
            only the global limits apply.
        require_api_key: refuse keyless requests with
            :class:`~repro.service.tenants.UnknownTenant` (HTTP 401) instead
            of serving them anonymously; requires at least one tenant.
    """

    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS
    queue_capacity: int = 256
    admission_timeout_seconds: float = 5.0
    num_workers: int = 4
    cache_capacity: int = 4096
    spill_path: str | None = None
    cost_budget: float | None = None
    breaker: BreakerConfig | None = None
    deadline_budget_seconds: float | None = None
    tenants: tuple[TenantConfig, ...] = ()
    require_api_key: bool = False

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.admission_timeout_seconds < 0:
            raise ValueError(
                "admission_timeout_seconds must be >= 0, "
                f"got {self.admission_timeout_seconds}"
            )
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {self.cache_capacity}")
        if self.cost_budget is not None and self.cost_budget <= 0:
            raise ValueError(f"cost_budget must be > 0, got {self.cost_budget}")
        if (
            self.deadline_budget_seconds is not None
            and self.deadline_budget_seconds <= 0
        ):
            raise ValueError(
                "deadline_budget_seconds must be > 0, "
                f"got {self.deadline_budget_seconds}"
            )
        # Tuple-ify (so list literals work) and fail fast on collisions the
        # TenantManager would otherwise reject only at service construction.
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        keys = [tenant.api_key for tenant in self.tenants]
        if len(set(keys)) != len(keys):
            raise ValueError("tenants must have distinct API keys")
        if self.require_api_key and not self.tenants:
            raise ValueError("require_api_key needs at least one configured tenant")

    def with_overrides(self, **overrides: Any) -> "ServiceConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict snapshot (``batcher`` nested as its own dict)."""
        return {
            "batcher": self.batcher.to_dict(),
            "max_batch_size": self.max_batch_size,
            "max_wait_seconds": self.max_wait_seconds,
            "queue_capacity": self.queue_capacity,
            "admission_timeout_seconds": self.admission_timeout_seconds,
            "num_workers": self.num_workers,
            "cache_capacity": self.cache_capacity,
            "spill_path": self.spill_path,
            "cost_budget": self.cost_budget,
            "breaker": self.breaker.to_dict() if self.breaker is not None else None,
            "deadline_budget_seconds": self.deadline_budget_seconds,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "require_api_key": self.require_api_key,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        """Rebuild a config from a :meth:`to_dict` snapshot.

        Raises:
            ValueError: for unknown fields (and, via the nested configs'
                ``__post_init__``, for invalid field values).
        """
        known = {config_field.name for config_field in fields(cls)}
        snapshot = dict(data)
        unknown = set(snapshot) - known
        if unknown:
            raise ValueError(
                f"unknown service config fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        batcher = snapshot.pop("batcher", None)
        if isinstance(batcher, Mapping):
            batcher = BatcherConfig.from_dict(batcher)
        if batcher is not None:
            snapshot["batcher"] = batcher
        breaker = snapshot.get("breaker")
        if isinstance(breaker, Mapping):
            snapshot["breaker"] = BreakerConfig.from_dict(breaker)
        tenants = snapshot.get("tenants")
        if tenants is not None:
            snapshot["tenants"] = tuple(
                TenantConfig.from_dict(entry) if isinstance(entry, Mapping) else entry
                for entry in tenants
            )
        return cls(**snapshot)
