"""Request queue and micro-batcher: aggregate concurrent requests into flushes.

The paper's amortization argument is per-run: one batch prompt spreads its
instruction and demonstration tokens over ``batch_size`` questions.  A serving
deployment can apply the same idea *across callers*: many concurrent producers
enqueue single pairs, and one consumer flushes them through the pipeline as a
micro-batch once either ``max_batch_size`` requests are waiting or the oldest
request has waited ``max_wait`` seconds — the classic latency/throughput
trade-off dial of batching inference servers.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.data.schema import EntityPair
from repro.engines.transport import Clock


class ServiceClosed(RuntimeError):
    """Raised when submitting to a queue/service that has been shut down."""


class AdmissionError(RuntimeError):
    """Base class for requests rejected at admission time."""


class ServiceOverloaded(AdmissionError):
    """Raised when the bounded request queue stays full past the timeout."""


@dataclass
class PendingRequest:
    """One enqueued resolution request awaiting a micro-batch flush.

    Attributes:
        pair: the pair to resolve.
        fingerprint: canonical content fingerprint (cache / dedup key).
        future: completed with a :class:`~repro.pipeline.resolver.Resolution`
            (or an exception) when the flush containing this request finishes.
        enqueued_at: ``time.monotonic()`` timestamp of admission.
        tenant: name of the submitting tenant (cost attribution of the flush
            charges the pair's owning tenant); ``None`` for anonymous traffic.
    """

    pair: EntityPair
    fingerprint: str
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    tenant: str | None = None


class RequestQueue:
    """A bounded FIFO of :class:`PendingRequest` with batch-oriented reads.

    Producers call :meth:`put`, blocking while the queue is full
    (backpressure) and failing with :class:`ServiceOverloaded` after
    ``timeout`` seconds.  The consumer calls :meth:`get_batch`, which blocks
    until at least one request is available and then collects up to
    ``max_size`` requests, waiting at most ``max_wait`` seconds for the batch
    to fill.

    Args:
        capacity: maximum number of queued requests.
        clock: time source for admission timestamps and deadlines; tests
            inject a :class:`~repro.engines.faults.FakeClock` to drive the
            deadline logic without sleeping.
    """

    def __init__(self, capacity: int, clock: Clock | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock or Clock()
        self._items: list[PendingRequest] = []
        self._condition = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether the queue has been closed to new requests."""
        with self._condition:
            return self._closed

    def put(self, request: PendingRequest, timeout: float | None = None) -> None:
        """Enqueue a request, blocking while the queue is full.

        Raises:
            ServiceClosed: if the queue has been closed.
            ServiceOverloaded: if the queue is still full after ``timeout``
                seconds (``None`` blocks indefinitely).
        """
        deadline = None if timeout is None else self.clock.monotonic() + timeout
        with self._condition:
            while True:
                if self._closed:
                    raise ServiceClosed("request queue is closed")
                if len(self._items) < self.capacity:
                    break
                remaining = (
                    None if deadline is None else deadline - self.clock.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ServiceOverloaded(
                        f"request queue full ({self.capacity} pending) for "
                        f"{timeout:.3f}s; retry later or raise queue_capacity"
                    )
                self._condition.wait(remaining)
            self._items.append(request)
            self._condition.notify_all()

    def get_batch(self, max_size: int, max_wait: float) -> list[PendingRequest]:
        """Collect the next micro-batch (empty only when closed and drained).

        Blocks until at least one request is available, then keeps collecting
        until either ``max_size`` requests are in hand or the oldest request
        in the batch has waited ``max_wait`` seconds since its admission — so
        time spent queued behind a slow flush counts against the deadline.

        Raises:
            ValueError: for a non-positive ``max_size`` or negative
                ``max_wait``.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        with self._condition:
            while not self._items:
                if self._closed:
                    return []
                self._condition.wait()
            batch = self._take(max_size)
            deadline = batch[0].enqueued_at + max_wait
            while len(batch) < max_size and not self._closed:
                remaining = deadline - self.clock.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
                batch.extend(self._take(max_size - len(batch)))
            self._condition.notify_all()
            return batch

    def _take(self, count: int) -> list[PendingRequest]:
        taken = self._items[:count]
        del self._items[: len(taken)]
        if taken:
            self._condition.notify_all()
        return taken

    def drain(self) -> list[PendingRequest]:
        """Remove and return every queued request (used during shutdown)."""
        with self._condition:
            remaining = self._items[:]
            self._items.clear()
            self._condition.notify_all()
            return remaining

    def close(self) -> None:
        """Refuse new requests and wake every blocked producer/consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()


class MicroBatcher:
    """Background consumer flushing a :class:`RequestQueue` in micro-batches.

    Args:
        queue: the bounded request queue to drain.
        flush: callback invoked with each non-empty micro-batch; the
            service's flush handler fails the batch's futures rather than
            raising, but if the callback does raise, the batcher fails any
            still-pending futures of the batch with that exception and keeps
            the consumer thread alive (:attr:`num_flush_failures` counts
            such flushes).
        max_batch_size: requests per flush.
        max_wait: seconds the oldest admitted request may wait before a
            partial batch is flushed.
        on_flush: optional observer called as ``on_flush(batch, reason)``
            before each flush, where ``reason`` is ``"size"`` (the batch
            filled), ``"deadline"`` (the oldest request's wait expired) or
            ``"close"`` (shutdown drain).  Exceptions it raises are swallowed
            like flush exceptions — observation must not kill the consumer.
    """

    def __init__(
        self,
        queue: RequestQueue,
        flush: Callable[[list[PendingRequest]], None],
        max_batch_size: int,
        max_wait: float,
        on_flush: Callable[[list[PendingRequest], str], None] | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.queue = queue
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self._flush = flush
        self._on_flush = on_flush
        self._thread: threading.Thread | None = None
        self.num_flushes = 0
        #: Flushes whose callback raised (the batch's futures were failed
        #: with that exception and the consumer thread kept running).
        self.num_flush_failures = 0

    @property
    def running(self) -> bool:
        """Whether the consumer thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the consumer thread (idempotent)."""
        if self.running:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-microbatcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = None) -> None:
        """Close the queue, drain remaining batches, and join the thread.

        If the consumer is still mid-flush when ``timeout`` expires, the
        thread handle is kept so :attr:`running` stays truthful and a later
        ``stop()`` can finish the join.
        """
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout)
            if not self._thread.is_alive():
                self._thread = None

    def flush_reason(self, batch: list[PendingRequest]) -> str:
        """Why ``batch`` left the queue: ``"size"``, ``"close"`` or ``"deadline"``."""
        if len(batch) >= self.max_batch_size:
            return "size"
        if self.queue.closed:
            return "close"
        return "deadline"

    def _loop(self) -> None:
        while True:
            batch = self.queue.get_batch(self.max_batch_size, self.max_wait)
            if not batch:
                # Only returned once the queue is closed and fully drained.
                return
            self.num_flushes += 1
            if self._on_flush is not None:
                try:
                    self._on_flush(batch, self.flush_reason(batch))
                except Exception:  # noqa: BLE001 - observers must not kill
                    pass  # the consumer thread
            try:
                self._flush(batch)
            except Exception as error:  # noqa: BLE001 - the consumer must
                # outlive any single bad flush (an open circuit breaker, a
                # poison batch).  The flush callback normally owns delivery,
                # but if it raised *before* failing its futures, waiters
                # would hang forever — fail them here, then keep consuming.
                self.num_flush_failures += 1
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(error)
