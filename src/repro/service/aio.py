"""Asyncio HTTP front end for a :class:`ResolutionService`.

:class:`AsyncServiceHTTPServer` serves the same routes as the threaded
:class:`~repro.service.http.ServiceHTTPServer` — both delegate every parsed
request to the shared, transport-agnostic
:class:`~repro.service.http.ServiceRouter`, so the two front ends return
byte-identical response bodies for the same request.  What differs is the
transport discipline:

* **one event loop, no thread per connection** — connections are coroutine
  tasks on an :func:`asyncio.start_server` loop, so thousands of idle
  keep-alive connections cost file descriptors, not stacks;
* **bounded concurrency** — an :class:`asyncio.Semaphore` caps the number of
  connections that may be serviced at once (excess connections queue at the
  accept backlog instead of exhausting memory);
* **per-request read deadlines** — the request line, each header line and the
  body are all read under :func:`asyncio.wait_for` timeouts; a slowloris
  client that stalls mid-body is answered 408 and disconnected;
* **graceful drain** — :meth:`shutdown` stops accepting, cancels idle
  keep-alive connections immediately, and gives in-flight requests
  ``drain_timeout`` seconds to finish before cancelling them.

The service core itself (micro-batcher, cache, breaker, tenant admission) is
synchronous and stays untouched: routed requests are dispatched to it through
``loop.run_in_executor`` on a private thread pool, keeping the event loop
free to multiplex sockets while the resolution work runs on threads exactly
as it does behind the threaded front end.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Mapping

from repro.service.http import (
    MAX_BODY_BYTES,
    RouteResult,
    ServiceRouter,
    _error_result,
)
from repro.service.service import ResolutionService

#: Default cap on concurrently serviced connections.
DEFAULT_MAX_CONNECTIONS = 128

#: Default deadline for reading one request's headers or body.
DEFAULT_READ_TIMEOUT_SECONDS = 10.0

#: Default patience for an idle keep-alive connection between requests.
DEFAULT_IDLE_TIMEOUT_SECONDS = 65.0

#: Default grace period for in-flight requests during shutdown.
DEFAULT_DRAIN_TIMEOUT_SECONDS = 5.0


def _status_phrase(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:  # pragma: no cover - router only emits known codes
        return "Unknown"


class AsyncServiceHTTPServer:
    """An asyncio HTTP/1.1 server bound to one :class:`ResolutionService`.

    The event loop runs on a dedicated daemon thread
    (:meth:`serve_in_background`), so the server embeds in synchronous
    programs and tests exactly like the threaded front end.

    Args:
        service: the (started) service answering the requests.
        host / port: bind address; port ``0`` picks a free port (see
            :attr:`address` for the actual one).
        max_connections: cap on connections serviced concurrently.
        read_timeout: seconds a client gets to deliver each request's
            headers, and separately its promised body, before a 408/close.
        idle_timeout: seconds a keep-alive connection may sit idle between
            requests before the server closes it.
        drain_timeout: seconds :meth:`shutdown` waits for in-flight requests
            before cancelling them.
        verbose: log one line per request to stderr.
        max_workers: size of the dispatch thread pool bridging the event
            loop to the synchronous service core (default: ``max_batch_size``
            of the service config, at least 8).
    """

    def __init__(
        self,
        service: ResolutionService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        read_timeout: float = DEFAULT_READ_TIMEOUT_SECONDS,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT_SECONDS,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT_SECONDS,
        verbose: bool = False,
        max_workers: int | None = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        if read_timeout <= 0 or idle_timeout <= 0:
            raise ValueError("read_timeout and idle_timeout must be > 0")
        if drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.service = service
        self.router = ServiceRouter(service)
        self.verbose = verbose
        self.max_connections = max_connections
        self.read_timeout = read_timeout
        self.idle_timeout = idle_timeout
        self.drain_timeout = drain_timeout
        self._host = host
        self._port = port
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers
            if max_workers is not None
            else max(8, service.config.max_batch_size),
            thread_name_prefix="repro-aio-dispatch",
        )
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._bound: tuple[str, int] | None = None
        self._startup_error: BaseException | None = None
        self._connections: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> str:
        """The server's ``http://host:port`` base URL."""
        if self._bound is None:
            raise RuntimeError("server is not running")
        host, port = self._bound
        return f"http://{host}:{port}"

    def serve_in_background(self) -> "AsyncServiceHTTPServer":
        """Start the event loop on a daemon thread; returns once bound."""
        if self._thread is not None and self._thread.is_alive():
            return self
        started = threading.Event()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run, args=(started,), name="repro-service-aio", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover - defensive
            raise RuntimeError("asyncio front end failed to start within 10s")
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5.0)
            self._thread = None
            raise error
        return self

    def serve_forever(self) -> None:
        """Serve until interrupted (blocks the calling thread)."""
        self.serve_in_background()
        thread = self._thread
        if thread is not None:  # pragma: no branch - set by serve_in_background
            thread.join()

    def shutdown(self) -> None:
        """Drain in-flight requests, stop the loop, join the thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=self.drain_timeout + 10.0)
            self._thread = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    def _run(self, started: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(started))
        except BaseException as error:  # pragma: no cover - defensive
            if not started.is_set():
                self._startup_error = error
                started.set()
            else:
                raise
        finally:
            asyncio.set_event_loop(None)
            loop.close()
            self._loop = None

    async def _serve(self, started: threading.Event) -> None:
        self._stop = asyncio.Event()
        self._semaphore = asyncio.Semaphore(self.max_connections)
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except OSError as error:
            self._startup_error = error
            started.set()
            return
        sockname = server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain()
            self._bound = None

    async def _drain(self) -> None:
        # Idle keep-alive connections are parked in a readline with nothing
        # in flight; cut them immediately.  Busy ones get the grace period.
        for task in list(self._connections - self._busy):
            task.cancel()
        busy = {task for task in self._busy if not task.done()}
        if busy:
            await asyncio.wait(busy, timeout=self.drain_timeout)
        for task in list(self._connections):
            if not task.done():
                task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            async with self._semaphore:
                await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        except Exception:  # pragma: no cover - one bad peer must not
            # take the accept loop down.
            pass
        finally:
            self._connections.discard(task)
            self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        while True:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), self.idle_timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                return  # idle keep-alive connection expired
            except ValueError:
                await self._write_result(
                    writer, _error_result(400, "request line too long"), False, True
                )
                return
            if not request_line:
                return  # client closed the connection
            line = request_line.decode("latin-1").strip()
            if not line:
                continue  # tolerate stray CRLF between pipelined requests
            parts = line.split()
            if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                await self._write_result(
                    writer,
                    _error_result(400, f"malformed request line {line!r}"),
                    False,
                    True,
                )
                return
            method, path, version = parts

            headers = await self._read_headers(reader, writer)
            if headers is None:
                return  # error already answered (connection closes)

            self._busy.add(task)
            try:
                keep_alive = await self._serve_request(
                    method, path, version, headers, reader, writer
                )
            finally:
                self._busy.discard(task)
            if not keep_alive:
                return

    async def _read_headers(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        try:
            while True:
                raw = await asyncio.wait_for(reader.readline(), self.read_timeout)
                if raw in (b"\r\n", b"\n", b""):
                    return headers
                text = raw.decode("latin-1").rstrip("\r\n")
                name, sep, value = text.partition(":")
                if not sep or not name.strip():
                    await self._write_result(
                        writer,
                        _error_result(400, f"malformed header line {text!r}"),
                        False,
                        True,
                    )
                    return None
                headers[name.strip().lower()] = value.strip()
                if len(headers) > 128:
                    await self._write_result(
                        writer, _error_result(400, "too many headers"), False, True
                    )
                    return None
        except (asyncio.TimeoutError, TimeoutError):
            await self._write_result(
                writer,
                _error_result(
                    408, f"request headers stalled for {self.read_timeout:g}s"
                ),
                False,
                True,
            )
            return None
        except ValueError:
            await self._write_result(
                writer, _error_result(400, "header line too long"), False, True
            )
            return None

    async def _serve_request(
        self,
        method: str,
        path: str,
        version: str,
        headers: Mapping[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Answer one parsed request; returns whether to keep the connection."""
        loop = asyncio.get_running_loop()
        head_only = method == "HEAD"
        if method == "POST":
            result = await self._route_post(path, headers, reader, loop)
        elif method in ("GET", "HEAD"):
            result = await loop.run_in_executor(
                self._executor, self.router.handle, method, path, headers, None
            )
        else:
            result = _error_result(501, f"unsupported method {method!r}")
        # HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; the client's
        # Connection header and error paths (result.close) override.
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            close = result.close or connection != "keep-alive"
        elif version == "HTTP/1.1":
            close = result.close or connection == "close"
        else:
            close = True
        self.requests_served += 1
        if self.verbose:  # pragma: no cover - log plumbing
            import sys

            print(
                f"repro-aio: {method} {path} -> {result.status}", file=sys.stderr
            )
        await self._write_result(writer, result, head_only, close)
        return not close

    async def _route_post(
        self,
        path: str,
        headers: Mapping[str, str],
        reader: asyncio.StreamReader,
        loop: asyncio.AbstractEventLoop,
    ) -> RouteResult:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return _error_result(400, "invalid Content-Length")
        if length <= 0 or length > MAX_BODY_BYTES:
            return _error_result(400, f"body must be 1..{MAX_BODY_BYTES} bytes")
        try:
            raw = await asyncio.wait_for(
                reader.readexactly(length), self.read_timeout
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, TimeoutError):
            # Slowloris guard: the promised body never fully arrived.
            return _error_result(
                408,
                f"request body stalled: {length} bytes promised, fewer "
                f"received within {self.read_timeout:g}s",
            )
        return await loop.run_in_executor(
            self._executor, self.router.handle, "POST", path, headers, raw
        )

    async def _write_result(
        self,
        writer: asyncio.StreamWriter,
        result: RouteResult,
        head_only: bool,
        close: bool,
    ) -> None:
        lines = [
            f"HTTP/1.1 {result.status} {_status_phrase(result.status)}",
            f"Content-Type: {result.content_type}",
            f"Content-Length: {len(result.body)}",
        ]
        for name, value in result.headers:
            lines.append(f"{name}: {value}")
        lines.append("Connection: close" if close else "Connection: keep-alive")
        payload = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if not head_only:
            payload += result.body
        writer.write(payload)
        try:
            await writer.drain()
        except ConnectionError:
            pass
