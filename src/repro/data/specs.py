"""Per-dataset specifications mirroring the paper's Table II.

Each :class:`DatasetSpec` describes one of the eight Magellan benchmarks:
schema, domain, target pair/match counts, and two factories:

* ``entity_factory(rng, index)`` produces a *clean* world entity (a dict of
  attribute values) for the dataset's domain;
* ``variant_factory(values, rng)`` turns a clean entity into a *different but
  similar* entity (a hard negative): e.g. the same laptop brand with a
  different model number, the next album by the same artist, a paper by the
  same authors at a different venue.

The generator (:mod:`repro.data.generator`) combines these with the corruption
pipeline to synthesise matched and non-matched candidate pairs at the paper's
scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.data import vocabularies as vocab

EntityFactory = Callable[[random.Random, int], dict[str, str]]
VariantFactory = Callable[[dict[str, str], random.Random], dict[str, str]]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset (paper Table II row)."""

    code: str
    full_name: str
    domain: str
    attributes: tuple[str, ...]
    num_pairs: int
    num_matches: int
    entity_factory: EntityFactory = field(repr=False)
    variant_factory: VariantFactory = field(repr=False)
    numeric_attributes: frozenset[str] = frozenset()
    corruption_probability: float = 0.45
    missing_probability: float = 0.08
    hard_negative_fraction: float = 0.55


# ---------------------------------------------------------------------------
# Electronics / product domains (WA, AB, AG)
# ---------------------------------------------------------------------------

def _walmart_amazon_entity(rng: random.Random, index: int) -> dict[str, str]:
    brand = vocab.pick(rng, vocab.ELECTRONICS_BRANDS)
    product = vocab.pick(rng, vocab.ELECTRONICS_PRODUCTS)
    adjective = vocab.pick(rng, vocab.PRODUCT_ADJECTIVES)
    modelno = vocab.make_model_number(rng)
    return {
        "title": f"{brand} {adjective} {product} {modelno}",
        "category": vocab.pick(rng, vocab.ELECTRONICS_CATEGORIES),
        "brand": brand,
        "modelno": modelno,
        "price": vocab.make_price(rng, 10.0, 1500.0),
    }


def _walmart_amazon_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    new_model = vocab.make_model_number(rng)
    variant["modelno"] = new_model
    variant["title"] = values["title"].replace(values["modelno"], new_model)
    variant["price"] = vocab.make_price(rng, 10.0, 1500.0)
    if rng.random() < 0.3:
        variant["category"] = vocab.pick(rng, vocab.ELECTRONICS_CATEGORIES)
    return variant


def _abt_buy_entity(rng: random.Random, index: int) -> dict[str, str]:
    brand = vocab.pick(rng, vocab.ELECTRONICS_BRANDS)
    product = vocab.pick(rng, vocab.ELECTRONICS_PRODUCTS)
    adjective = vocab.pick(rng, vocab.PRODUCT_ADJECTIVES)
    modelno = vocab.make_model_number(rng)
    name = f"{brand} {product} {modelno}"
    description = (
        f"{adjective} {product.lower()} by {brand} featuring model {modelno}, "
        f"{vocab.pick(rng, vocab.ELECTRONICS_CATEGORIES)}"
    )
    return {
        "name": name,
        "description": description,
        "price": vocab.make_price(rng, 20.0, 1200.0),
    }


def _abt_buy_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    tokens = values["name"].split()
    new_model = vocab.make_model_number(rng)
    tokens[-1] = new_model
    variant["name"] = " ".join(tokens)
    variant["description"] = values["description"].rsplit("model", 1)[0] + f"model {new_model}"
    variant["price"] = vocab.make_price(rng, 20.0, 1200.0)
    return variant


def _amazon_google_entity(rng: random.Random, index: int) -> dict[str, str]:
    publisher = vocab.pick(rng, vocab.SOFTWARE_PUBLISHERS)
    product = vocab.pick(rng, vocab.SOFTWARE_PRODUCTS)
    edition = vocab.pick(rng, vocab.SOFTWARE_EDITIONS)
    return {
        "title": f"{publisher} {product} {edition}",
        "manufacturer": publisher,
        "price": vocab.make_price(rng, 9.0, 600.0),
    }


def _amazon_google_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    new_edition = vocab.pick(rng, vocab.SOFTWARE_EDITIONS)
    tokens = values["title"].split()
    variant["title"] = " ".join(tokens[:-1] + [new_edition])
    variant["price"] = vocab.make_price(rng, 9.0, 600.0)
    if rng.random() < 0.25:
        variant["manufacturer"] = vocab.pick(rng, vocab.SOFTWARE_PUBLISHERS)
        variant["title"] = f"{variant['manufacturer']} " + " ".join(tokens[1:-1] + [new_edition])
    return variant


# ---------------------------------------------------------------------------
# Citation domains (DS, DA)
# ---------------------------------------------------------------------------

def _citation_entity(rng: random.Random, index: int) -> dict[str, str]:
    topic = vocab.pick(rng, vocab.CITATION_TITLE_TOPICS)
    pattern = vocab.pick(rng, vocab.CITATION_TITLE_PATTERNS)
    venue = vocab.pick(rng, vocab.CITATION_VENUES_FULL)
    return {
        "title": pattern.format(topic=topic),
        "authors": vocab.make_author_list(rng),
        "venue": venue,
        "year": str(rng.randint(1994, 2010)),
    }


def _citation_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    choice = rng.random()
    if choice < 0.5:
        # Same authors, a different paper on a related topic.
        topic = vocab.pick(rng, vocab.CITATION_TITLE_TOPICS)
        pattern = vocab.pick(rng, vocab.CITATION_TITLE_PATTERNS)
        variant["title"] = pattern.format(topic=topic)
        variant["year"] = str(rng.randint(1994, 2010))
    else:
        # Different author team writing about the same topic in another venue.
        variant["authors"] = vocab.make_author_list(rng)
        variant["venue"] = vocab.pick(rng, vocab.CITATION_VENUES_FULL)
        variant["year"] = str(rng.randint(1994, 2010))
    return variant


# ---------------------------------------------------------------------------
# Restaurant domain (FZ)
# ---------------------------------------------------------------------------

def _restaurant_entity(rng: random.Random, index: int) -> dict[str, str]:
    name = (
        f"{vocab.pick(rng, vocab.RESTAURANT_NAME_PARTS_A)} "
        f"{vocab.pick(rng, vocab.RESTAURANT_NAME_PARTS_B)}"
    )
    return {
        "name": name.lower(),
        "addr": f"{rng.randint(1, 9999)} {vocab.pick(rng, vocab.STREET_NAMES).lower()}",
        "city": vocab.pick(rng, vocab.RESTAURANT_CITIES),
        "phone": vocab.make_phone(rng),
        "type": vocab.pick(rng, vocab.RESTAURANT_CUISINES),
        "class": str(rng.randint(0, 800)),
    }


def _restaurant_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    if rng.random() < 0.3:
        # Another branch of a similarly named restaurant in a different city,
        # serving a different cuisine.
        variant["city"] = vocab.pick(rng, vocab.RESTAURANT_CITIES)
        variant["addr"] = f"{rng.randint(1, 9999)} {vocab.pick(rng, vocab.STREET_NAMES).lower()}"
        variant["phone"] = vocab.make_phone(rng)
        variant["type"] = vocab.pick(rng, vocab.RESTAURANT_CUISINES)
    else:
        # Different restaurant sharing the first name token.
        first_token = values["name"].split()[0]
        variant["name"] = f"{first_token} {vocab.pick(rng, vocab.RESTAURANT_NAME_PARTS_B).lower()}"
        variant["phone"] = vocab.make_phone(rng)
        variant["type"] = vocab.pick(rng, vocab.RESTAURANT_CUISINES)
    variant["class"] = str(rng.randint(0, 800))
    return variant


# ---------------------------------------------------------------------------
# Music domain (IA)
# ---------------------------------------------------------------------------

def _music_entity(rng: random.Random, index: int) -> dict[str, str]:
    artist = vocab.pick(rng, vocab.MUSIC_ARTISTS)
    song = (
        f"{vocab.pick(rng, vocab.MUSIC_SONG_WORDS)} "
        f"{vocab.pick(rng, vocab.MUSIC_SONG_NOUNS)}"
    )
    album = (
        f"{vocab.pick(rng, vocab.MUSIC_SONG_WORDS)} "
        f"{vocab.pick(rng, vocab.MUSIC_SONG_NOUNS)}"
    )
    minutes = rng.randint(2, 6)
    seconds = rng.randint(0, 59)
    year = rng.randint(2005, 2017)
    return {
        "song_name": song,
        "artist_name": artist,
        "album_name": album,
        "genre": vocab.pick(rng, vocab.MUSIC_GENRES) + ", Music",
        "price": f"{rng.choice((0.99, 1.29)):.2f}",
        "copyright": f"(C) {year} {vocab.pick(rng, vocab.MUSIC_COPYRIGHT_HOLDERS)}",
        "time": f"{minutes}:{seconds:02d}",
        "released": f"{rng.randint(1, 28)}-{rng.choice(('Jan', 'Mar', 'Jun', 'Sep', 'Nov'))}-{year % 100:02d}",
    }


def _music_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    if rng.random() < 0.5:
        # Different track on the same album by the same artist.
        variant["song_name"] = (
            f"{vocab.pick(rng, vocab.MUSIC_SONG_WORDS)} "
            f"{vocab.pick(rng, vocab.MUSIC_SONG_NOUNS)}"
        )
        variant["time"] = f"{rng.randint(2, 6)}:{rng.randint(0, 59):02d}"
    else:
        # The same song title recorded on a different album (live / remix).
        variant["album_name"] = values["album_name"] + rng.choice((" (Live)", " (Remixes)", " II"))
        variant["time"] = f"{rng.randint(2, 6)}:{rng.randint(0, 59):02d}"
        variant["released"] = (
            f"{rng.randint(1, 28)}-{rng.choice(('Feb', 'Apr', 'Jul', 'Oct'))}-{rng.randint(6, 17):02d}"
        )
    return variant


# ---------------------------------------------------------------------------
# Beer domain (Beer)
# ---------------------------------------------------------------------------

def _beer_entity(rng: random.Random, index: int) -> dict[str, str]:
    name = (
        f"{vocab.pick(rng, vocab.BEER_NAME_ADJECTIVES)} "
        f"{vocab.pick(rng, vocab.BEER_NAME_NOUNS)} "
        f"{vocab.pick(rng, vocab.BEER_STYLES)}"
    )
    return {
        "beer_name": name,
        "brew_factory_name": vocab.pick(rng, vocab.BEER_BREWERIES),
        "style": vocab.pick(rng, vocab.BEER_STYLES),
        "abv": f"{rng.uniform(3.5, 12.0):.1f}%",
    }


def _beer_variant(values: dict[str, str], rng: random.Random) -> dict[str, str]:
    variant = dict(values)
    if rng.random() < 0.5:
        # Same brewery, a different beer in the same style family.
        variant["beer_name"] = (
            f"{vocab.pick(rng, vocab.BEER_NAME_ADJECTIVES)} "
            f"{vocab.pick(rng, vocab.BEER_NAME_NOUNS)} "
            f"{values['style']}"
        )
        variant["abv"] = f"{rng.uniform(3.5, 12.0):.1f}%"
    else:
        # Similarly named beer from a different brewery.
        variant["brew_factory_name"] = vocab.pick(rng, vocab.BEER_BREWERIES)
        variant["style"] = vocab.pick(rng, vocab.BEER_STYLES)
        variant["abv"] = f"{rng.uniform(3.5, 12.0):.1f}%"
    return variant


DATASET_SPECS: dict[str, DatasetSpec] = {
    "wa": DatasetSpec(
        code="WA",
        full_name="Walmart-Amazon",
        domain="Electronics",
        attributes=("title", "category", "brand", "modelno", "price"),
        num_pairs=10242,
        num_matches=962,
        entity_factory=_walmart_amazon_entity,
        variant_factory=_walmart_amazon_variant,
        numeric_attributes=frozenset({"price"}),
        hard_negative_fraction=0.55,
    ),
    "ab": DatasetSpec(
        code="AB",
        full_name="Abt-Buy",
        domain="Product",
        attributes=("name", "description", "price"),
        num_pairs=9575,
        num_matches=1028,
        entity_factory=_abt_buy_entity,
        variant_factory=_abt_buy_variant,
        numeric_attributes=frozenset({"price"}),
        missing_probability=0.12,
        hard_negative_fraction=0.50,
    ),
    "ag": DatasetSpec(
        code="AG",
        full_name="Amazon-Google",
        domain="Software",
        attributes=("title", "manufacturer", "price"),
        num_pairs=11460,
        num_matches=1167,
        entity_factory=_amazon_google_entity,
        variant_factory=_amazon_google_variant,
        numeric_attributes=frozenset({"price"}),
        corruption_probability=0.50,
        missing_probability=0.14,
        hard_negative_fraction=0.60,
    ),
    "ds": DatasetSpec(
        code="DS",
        full_name="DBLP-Scholar",
        domain="Citation",
        attributes=("title", "authors", "venue", "year"),
        num_pairs=28707,
        num_matches=5347,
        entity_factory=_citation_entity,
        variant_factory=_citation_variant,
        numeric_attributes=frozenset({"year"}),
        corruption_probability=0.45,
        missing_probability=0.12,
        hard_negative_fraction=0.55,
    ),
    "da": DatasetSpec(
        code="DA",
        full_name="DBLP-ACM",
        domain="Citation",
        attributes=("title", "authors", "venue", "year"),
        num_pairs=12363,
        num_matches=2220,
        entity_factory=_citation_entity,
        variant_factory=_citation_variant,
        numeric_attributes=frozenset({"year"}),
        corruption_probability=0.22,
        missing_probability=0.03,
        hard_negative_fraction=0.45,
    ),
    "fz": DatasetSpec(
        code="FZ",
        full_name="Fodors-Zagats",
        domain="Restaurant",
        attributes=("name", "addr", "city", "phone", "type", "class"),
        num_pairs=946,
        num_matches=110,
        entity_factory=_restaurant_entity,
        variant_factory=_restaurant_variant,
        numeric_attributes=frozenset({"class"}),
        corruption_probability=0.25,
        missing_probability=0.03,
        hard_negative_fraction=0.35,
    ),
    "ia": DatasetSpec(
        code="IA",
        full_name="iTunes-Amazon",
        domain="Music",
        attributes=(
            "song_name",
            "artist_name",
            "album_name",
            "genre",
            "price",
            "copyright",
            "time",
            "released",
        ),
        num_pairs=532,
        num_matches=132,
        entity_factory=_music_entity,
        variant_factory=_music_variant,
        numeric_attributes=frozenset({"price"}),
        corruption_probability=0.22,
        missing_probability=0.03,
        hard_negative_fraction=0.40,
    ),
    "beer": DatasetSpec(
        code="Beer",
        full_name="BeerAdvo-RateBeer",
        domain="Beer",
        attributes=("beer_name", "brew_factory_name", "style", "abv"),
        num_pairs=450,
        num_matches=68,
        entity_factory=_beer_entity,
        variant_factory=_beer_variant,
        numeric_attributes=frozenset(),
        corruption_probability=0.25,
        missing_probability=0.04,
        hard_negative_fraction=0.40,
    ),
}
"""Registry of the eight Table II dataset specifications, keyed by lower-case code."""


def get_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name`` (case-insensitive code).

    Raises:
        KeyError: if the dataset is unknown.
    """
    key = name.strip().lower()
    if key not in DATASET_SPECS:
        known = ", ".join(sorted(DATASET_SPECS))
        raise KeyError(f"unknown dataset {name!r}; expected one of: {known}")
    return DATASET_SPECS[key]
