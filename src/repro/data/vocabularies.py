"""Domain vocabularies used to synthesise Magellan-style ER benchmarks.

Each of the paper's eight datasets (Table II) covers a distinct domain
(electronics, generic products, software, bibliographic citations, restaurants,
music and beer).  This module holds the word banks from which the generator
composes realistic attribute values.  The banks are intentionally large enough
that generated entities collide only when the generator *wants* them to (hard
negatives), yet small enough to stay readable.
"""

from __future__ import annotations

import random

ELECTRONICS_BRANDS = (
    "Samsung", "Sony", "LG", "Panasonic", "Toshiba", "Philips", "Sharp", "Canon",
    "Nikon", "HP", "Dell", "Lenovo", "Asus", "Acer", "Logitech", "Belkin",
    "Netgear", "Linksys", "Sandisk", "Kingston", "Seagate", "Western Digital",
    "Garmin", "JVC", "Pioneer", "Kenwood", "Olympus", "Epson", "Brother",
)

ELECTRONICS_PRODUCTS = (
    "LCD Monitor", "LED TV", "Wireless Router", "Bluetooth Speaker", "DSLR Camera",
    "Laptop Battery", "USB Flash Drive", "External Hard Drive", "Memory Card",
    "Ink Cartridge", "Wireless Mouse", "Mechanical Keyboard", "HDMI Cable",
    "Surge Protector", "Car Stereo", "GPS Navigator", "Camcorder", "Headphones",
    "Tablet Case", "Phone Charger", "Webcam", "Printer", "Scanner", "Projector",
    "Sound Bar", "Docking Station", "Network Switch", "Smart Watch",
)

ELECTRONICS_CATEGORIES = (
    "electronics - general", "computers & accessories", "camera & photo",
    "car electronics", "audio & video", "office electronics", "cell phone accessories",
    "networking products", "storage devices", "printers & supplies",
)

PRODUCT_ADJECTIVES = (
    "Portable", "Compact", "Professional", "Premium", "Ultra", "Slim", "Rugged",
    "Wireless", "Digital", "Smart", "Classic", "Advanced", "Essential", "Deluxe",
)

SOFTWARE_PUBLISHERS = (
    "Microsoft", "Adobe", "Intuit", "Symantec", "McAfee", "Corel", "Autodesk",
    "Nero", "Roxio", "Sage", "Kaspersky", "Avanquest", "Broderbund", "Encore",
    "Individual Software", "Nova Development", "Topics Entertainment",
)

SOFTWARE_PRODUCTS = (
    "Office Suite", "Photo Editor", "Antivirus", "Tax Preparation", "Video Studio",
    "Illustration Suite", "CAD Designer", "Backup Utility", "DVD Burner",
    "Accounting Pro", "Language Learning", "Typing Tutor", "Web Designer",
    "PDF Converter", "System Optimizer", "Password Manager", "Music Composer",
    "Genealogy Builder", "Greeting Card Studio", "Home Designer",
)

SOFTWARE_EDITIONS = (
    "Standard", "Professional", "Home Edition", "Deluxe", "Premier", "Small Business",
    "Academic", "Upgrade", "Full Version", "2006", "2007", "2008", "Platinum",
)

CITATION_TITLE_TOPICS = (
    "query optimization", "data integration", "entity resolution", "schema matching",
    "approximate query processing", "stream processing", "transaction management",
    "index structures", "spatial databases", "graph mining", "information extraction",
    "data cleaning", "keyword search", "view maintenance", "database security",
    "parallel joins", "data warehousing", "sensor networks", "web data management",
    "probabilistic databases", "XML processing", "top-k queries", "record linkage",
    "column stores", "concurrency control", "data provenance", "crowdsourcing",
)

CITATION_TITLE_PATTERNS = (
    "On {topic} in large-scale systems",
    "Efficient {topic} for relational data",
    "A survey of {topic}",
    "Scalable {topic} with distributed processing",
    "Towards adaptive {topic}",
    "{topic} revisited: a practical approach",
    "Optimizing {topic} under uncertainty",
    "An experimental evaluation of {topic}",
    "Learning-based {topic}",
    "Incremental {topic} over evolving data",
)

AUTHOR_FIRST_NAMES = (
    "Michael", "David", "Jennifer", "Wei", "Hector", "Divesh", "Surajit", "Rakesh",
    "Laura", "Peter", "Anhai", "Jeffrey", "Christos", "Jiawei", "Philip", "Susan",
    "Raghu", "Joseph", "Alon", "Dan", "Magdalena", "Samuel", "Erhard", "Felix",
    "Xin", "Juan", "Maria", "Andrew", "Daniel", "Yannis",
)

AUTHOR_LAST_NAMES = (
    "Stonebraker", "DeWitt", "Widom", "Garcia-Molina", "Srivastava", "Chaudhuri",
    "Agrawal", "Haas", "Doan", "Naughton", "Faloutsos", "Han", "Bernstein",
    "Ramakrishnan", "Hellerstein", "Halevy", "Suciu", "Balazinska", "Madden",
    "Rahm", "Dong", "Ioannidis", "Abadi", "Franklin", "Gehrke", "Kossmann",
    "Jagadish", "Ives", "Miller", "Ooi",
)

CITATION_VENUES_FULL = (
    "SIGMOD Conference", "VLDB", "ICDE", "EDBT", "CIKM", "KDD", "WWW",
    "SIGMOD Record", "VLDB Journal", "ACM Transactions on Database Systems",
    "IEEE Transactions on Knowledge and Data Engineering", "Information Systems",
)

CITATION_VENUES_ABBREV = {
    "SIGMOD Conference": "SIGMOD",
    "VLDB": "Very Large Data Bases",
    "ICDE": "Intl. Conf. on Data Engineering",
    "EDBT": "Extending Database Technology",
    "CIKM": "Conf. on Information and Knowledge Management",
    "KDD": "Knowledge Discovery and Data Mining",
    "WWW": "World Wide Web Conference",
    "SIGMOD Record": "ACM SIGMOD Record",
    "VLDB Journal": "The VLDB Journal",
    "ACM Transactions on Database Systems": "ACM Trans. Database Syst.",
    "IEEE Transactions on Knowledge and Data Engineering": "IEEE Trans. Knowl. Data Eng.",
    "Information Systems": "Inf. Syst.",
}

RESTAURANT_NAME_PARTS_A = (
    "Golden", "Blue", "Little", "Grand", "Old Town", "Royal", "Silver", "Rustic",
    "Sunset", "Harbor", "Garden", "Corner", "Village", "Uptown", "Pacific", "Casa",
)

RESTAURANT_NAME_PARTS_B = (
    "Dragon", "Bistro", "Grill", "Kitchen", "Trattoria", "Cantina", "Diner",
    "Brasserie", "Cafe", "Steakhouse", "Taqueria", "Noodle House", "Oyster Bar",
    "Pizzeria", "Chophouse", "Tavern",
)

RESTAURANT_CITIES = (
    "new york", "los angeles", "san francisco", "chicago", "atlanta", "boston",
    "seattle", "austin", "denver", "portland", "new orleans", "miami",
)

RESTAURANT_CUISINES = (
    "italian", "french", "mexican", "chinese", "japanese", "american (new)",
    "american (traditional)", "seafood", "steakhouses", "thai", "indian",
    "mediterranean", "bbq", "cajun", "vegetarian",
)

STREET_NAMES = (
    "Main St.", "Broadway", "Sunset Blvd.", "5th Ave.", "Market St.", "Elm St.",
    "Ocean Dr.", "Peachtree Rd.", "Lake Shore Dr.", "Mission St.", "Melrose Ave.",
    "Columbus Ave.", "Canal St.", "Union Sq.", "Ventura Blvd.",
)

MUSIC_ARTISTS = (
    "The Midnight Owls", "Clara Voss", "DJ Meridian", "The Paper Lanterns",
    "Ember & Ash", "Silver Creek Band", "Luna Park", "The Brass Monkeys",
    "Holly Rivers", "静かな海", "Cobalt Sky", "The Wandering Notes", "Maya Solstice",
    "Neon Harbor", "Red Canyon Choir", "Violet Afternoon", "The Tall Pines",
)

MUSIC_SONG_WORDS = (
    "Midnight", "Summer", "Echoes", "Golden", "Falling", "Electric", "Wild",
    "Silent", "Neon", "Broken", "Dancing", "Lonely", "Burning", "Crystal",
    "Forever", "Yesterday", "Horizon", "Gravity", "Stardust", "Thunder",
)

MUSIC_SONG_NOUNS = (
    "Hearts", "Roads", "Lights", "Dreams", "Rivers", "Nights", "Skies", "Shadows",
    "Waves", "Fires", "Stories", "Cities", "Wings", "Mirrors", "Echo", "Rain",
)

MUSIC_GENRES = (
    "Pop", "Rock", "Hip-Hop/Rap", "Country", "Dance", "R&B/Soul", "Alternative",
    "Electronic", "Indie Rock", "Folk", "Jazz", "Latin",
)

MUSIC_COPYRIGHT_HOLDERS = (
    "Sunbeam Records", "Harborline Music", "Violet Note Entertainment",
    "Northern Lights Recordings", "Cascade Audio Group", "Bluebird Label Co.",
)

BEER_BREWERIES = (
    "Crooked River Brewing", "Iron Anchor Brewery", "Twin Peaks Ales",
    "Foggy Harbor Brewing Co.", "High Desert Brewers", "Maple Hollow Brewing",
    "Granite Ridge Beer Works", "Old Mill Brewery", "Copper Kettle Brewing",
    "Wild Prairie Ales", "Stone Bridge Brewing", "Lakeside Brewing Company",
    "Thunder Valley Brewery", "Cedar Grove Beer Co.", "Salt Flats Brewing",
)

BEER_STYLES = (
    "American IPA", "Imperial Stout", "Pale Ale", "Amber Lager", "Hefeweizen",
    "Porter", "Belgian Tripel", "Saison", "Pilsner", "Brown Ale", "Double IPA",
    "Sour Ale", "Barleywine", "Wheat Beer", "Oatmeal Stout",
)

BEER_NAME_ADJECTIVES = (
    "Hoppy", "Golden", "Dark", "Rusty", "Wandering", "Crimson", "Frosty", "Burly",
    "Smoky", "Velvet", "Grumpy", "Lucky", "Howling", "Drifting", "Blazing",
)

BEER_NAME_NOUNS = (
    "Trail", "Badger", "Sunset", "Anvil", "Harvest", "Moose", "Lighthouse",
    "Canyon", "Otter", "Ember", "Summit", "Raven", "Meadow", "Glacier", "Coyote",
)


def pick(rng: random.Random, options: tuple[str, ...]) -> str:
    """Pick one element of ``options`` uniformly at random."""
    return options[rng.randrange(len(options))]


def make_person_name(rng: random.Random) -> str:
    """Compose an author name ``First Last``."""
    return f"{pick(rng, AUTHOR_FIRST_NAMES)} {pick(rng, AUTHOR_LAST_NAMES)}"


def make_author_list(rng: random.Random, min_authors: int = 1, max_authors: int = 4) -> str:
    """Compose a comma-separated author list."""
    count = rng.randint(min_authors, max_authors)
    return ", ".join(make_person_name(rng) for _ in range(count))


def make_price(rng: random.Random, low: float = 5.0, high: float = 900.0) -> str:
    """Compose a price string with two decimals."""
    return f"{rng.uniform(low, high):.2f}"


def make_phone(rng: random.Random) -> str:
    """Compose a US-style phone number."""
    return f"{rng.randint(200, 989)}-{rng.randint(200, 989)}-{rng.randint(1000, 9999)}"


def make_model_number(rng: random.Random) -> str:
    """Compose an alphanumeric model number such as ``SX-4821B``."""
    letters = "".join(rng.choice("ABCDEFGHJKLMNPRSTUVWX") for _ in range(2))
    digits = rng.randint(100, 9999)
    suffix = rng.choice(("", "A", "B", "X", "S", "Pro"))
    return f"{letters}-{digits}{suffix}"
