"""Public dataset registry: named access to the eight synthetic benchmarks.

``load_dataset("wa")`` reproduces the Walmart-Amazon-style benchmark at the
paper's Table II scale; ``load_dataset("wa", scale=0.1)`` generates a
proportionally smaller instance for fast tests and examples.  Generated
datasets are cached per (name, seed, scale) so repeated loads within a process
are free.
"""

from __future__ import annotations

from functools import lru_cache

from repro.data.generator import generate_dataset
from repro.data.schema import Dataset
from repro.data.specs import DATASET_SPECS, get_spec


def available_datasets() -> tuple[str, ...]:
    """Return the lower-case codes of all available benchmark datasets."""
    return tuple(sorted(DATASET_SPECS))


@lru_cache(maxsize=64)
def _load_cached(name: str, seed: int, scale: float) -> Dataset:
    return generate_dataset(name, seed=seed, scale=scale)


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> Dataset:
    """Load (generate) the named benchmark dataset.

    Args:
        name: dataset code (``"wa"``, ``"ab"``, ``"ag"``, ``"ds"``, ``"da"``,
            ``"fz"``, ``"ia"``, ``"beer"``), case-insensitive.
        seed: RNG seed; different seeds produce different but statistically
            equivalent instances.
        scale: size multiplier relative to the paper's pair counts (1.0 =
            Table II scale).

    Returns:
        A fully generated, labeled and split :class:`repro.data.schema.Dataset`.
    """
    key = name.strip().lower()
    get_spec(key)  # validate early with a helpful error message
    return _load_cached(key, seed, scale)


def dataset_statistics(seed: int = 0, scale: float = 1.0) -> list[dict[str, object]]:
    """Return Table II style statistics for every benchmark dataset."""
    return [
        load_dataset(name, seed=seed, scale=scale).statistics()
        for name in available_datasets()
    ]
