"""Data substrate: ER data model, serialization, synthetic Magellan-style benchmarks.

The paper evaluates on eight Magellan benchmark datasets (Table II).  Those
datasets are not available offline, so :mod:`repro.data.generator` synthesises
datasets with the same schemas, sizes and match rates, and with realistic
dirtiness injected by :mod:`repro.data.corruption`.  The public entry point is
:func:`repro.data.registry.load_dataset`.
"""

from repro.data.schema import (
    CandidateSet,
    Dataset,
    DatasetSplits,
    EntityPair,
    MatchLabel,
    Record,
    Table,
)
from repro.data.serialization import serialize_pair, serialize_record
from repro.data.registry import available_datasets, dataset_statistics, load_dataset

__all__ = [
    "CandidateSet",
    "Dataset",
    "DatasetSplits",
    "EntityPair",
    "MatchLabel",
    "Record",
    "Table",
    "available_datasets",
    "dataset_statistics",
    "load_dataset",
    "serialize_pair",
    "serialize_record",
]
