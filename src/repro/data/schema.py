"""Core ER data model: records, tables, entity pairs, datasets and splits.

The paper's setting (Section II-A): two relational tables ``TA`` and ``TB``
with the same ``m`` attributes; a blocker produces candidate pairs
``(a, b) in TA x TB``; a matcher labels each candidate pair matching /
non-matching.  This module holds the immutable value objects used throughout
the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Iterator, Mapping


class MatchLabel(IntEnum):
    """Binary matching label for an entity pair."""

    NON_MATCH = 0
    MATCH = 1

    @classmethod
    def from_bool(cls, is_match: bool) -> "MatchLabel":
        """Convert a boolean match indicator into a :class:`MatchLabel`."""
        return cls.MATCH if is_match else cls.NON_MATCH


@dataclass(frozen=True)
class Record:
    """A single tuple of a relational table.

    Attributes:
        record_id: identifier unique within its table (e.g. ``"A-17"``).
        values: mapping from attribute name to (possibly missing) string value.
            Missing values are represented as ``None``.
    """

    record_id: str
    values: Mapping[str, str | None]

    def value(self, attribute: str) -> str | None:
        """Return the value of ``attribute`` (``None`` if missing)."""
        return self.values.get(attribute)

    def non_missing_attributes(self) -> list[str]:
        """Return the attribute names whose value is present and non-empty."""
        return [name for name, value in self.values.items() if value]


@dataclass(frozen=True)
class Table:
    """A relational table: a named, ordered schema plus its records."""

    name: str
    attributes: tuple[str, ...]
    records: tuple[Record, ...]

    def __post_init__(self) -> None:
        attribute_set = set(self.attributes)
        for record in self.records:
            unknown = set(record.values) - attribute_set
            if unknown:
                raise ValueError(
                    f"record {record.record_id!r} in table {self.name!r} has "
                    f"attributes outside the schema: {sorted(unknown)}"
                )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def record_by_id(self, record_id: str) -> Record:
        """Return the record with ``record_id``.

        Raises:
            KeyError: if no record with that id exists in this table.
        """
        for record in self.records:
            if record.record_id == record_id:
                return record
        raise KeyError(f"no record {record_id!r} in table {self.name!r}")


@dataclass(frozen=True)
class EntityPair:
    """A candidate pair of records, optionally carrying a gold label.

    ``label`` is ``None`` for unlabeled pairs (e.g. entries of the unlabeled
    demonstration pool before manual annotation).
    """

    pair_id: str
    left: Record
    right: Record
    label: MatchLabel | None = None

    @property
    def is_labeled(self) -> bool:
        """Whether this pair carries a gold matching label."""
        return self.label is not None

    def with_label(self, label: MatchLabel) -> "EntityPair":
        """Return a copy of this pair carrying ``label`` (simulates annotation)."""
        return EntityPair(pair_id=self.pair_id, left=self.left, right=self.right, label=label)

    def without_label(self) -> "EntityPair":
        """Return a copy of this pair with the label stripped."""
        return EntityPair(pair_id=self.pair_id, left=self.left, right=self.right, label=None)


@dataclass(frozen=True)
class CandidateSet:
    """An ordered collection of entity pairs (the output of blocking)."""

    pairs: tuple[EntityPair, ...]

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[EntityPair]:
        return iter(self.pairs)

    def __getitem__(self, index: int) -> EntityPair:
        return self.pairs[index]

    def labeled(self) -> "CandidateSet":
        """Return the subset of pairs that carry a gold label."""
        return CandidateSet(tuple(pair for pair in self.pairs if pair.is_labeled))

    def match_count(self) -> int:
        """Return the number of pairs labeled as matches."""
        return sum(1 for pair in self.pairs if pair.label is MatchLabel.MATCH)

    @classmethod
    def from_pairs(cls, pairs: Iterable[EntityPair]) -> "CandidateSet":
        """Build a candidate set from any iterable of pairs."""
        return cls(tuple(pairs))


@dataclass(frozen=True)
class DatasetSplits:
    """Train / validation / test partition of a labeled candidate set.

    The paper uses a 3:1:1 split (Section VI-A).  The *test* split is what the
    matcher is evaluated on; the *train* split doubles as the unlabeled
    demonstration pool (labels are hidden until a selection strategy pays the
    labeling cost for a chosen demonstration).
    """

    train: CandidateSet
    validation: CandidateSet
    test: CandidateSet

    def total_pairs(self) -> int:
        """Total number of pairs across all three splits."""
        return len(self.train) + len(self.validation) + len(self.test)


@dataclass(frozen=True)
class Dataset:
    """A complete ER benchmark dataset.

    Attributes:
        name: short code used by the paper (e.g. ``"WA"``).
        full_name: descriptive name (e.g. ``"Walmart-Amazon"``).
        domain: domain label from Table II (e.g. ``"Electronics"``).
        table_a / table_b: the two relational tables being resolved.
        candidate_pairs: the blocked, labeled candidate set (all pairs).
        splits: the 3:1:1 train/validation/test partition.
    """

    name: str
    full_name: str
    domain: str
    table_a: Table
    table_b: Table
    candidate_pairs: CandidateSet
    splits: DatasetSplits = field(repr=False)

    @property
    def attributes(self) -> tuple[str, ...]:
        """The shared attribute schema of the two tables."""
        return self.table_a.attributes

    def statistics(self) -> dict[str, object]:
        """Return Table II style statistics for this dataset."""
        return {
            "dataset": self.full_name,
            "code": self.name,
            "domain": self.domain,
            "num_attributes": len(self.attributes),
            "num_pairs": len(self.candidate_pairs),
            "num_matches": self.candidate_pairs.match_count(),
        }
