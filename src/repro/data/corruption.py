"""Dirtiness operators used when synthesising Magellan-style ER benchmarks.

Real ER benchmarks are hard because the two tables describe the same entity
*differently*: typos, abbreviations, re-ordered or dropped tokens, missing
values, different number formats, added noise words ("[Explicit]", "NEW").
This module implements those corruption operators as small pure functions over
strings plus a :class:`CorruptionPipeline` that applies a configurable mixture
of them with a seeded RNG, so that generated datasets are fully reproducible.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field


def introduce_typo(value: str, rng: random.Random) -> str:
    """Introduce a single character-level typo (swap, drop, duplicate or replace)."""
    if len(value) < 2:
        return value
    index = rng.randrange(len(value) - 1)
    operation = rng.choice(("swap", "drop", "duplicate", "replace"))
    if operation == "swap":
        chars = list(value)
        chars[index], chars[index + 1] = chars[index + 1], chars[index]
        return "".join(chars)
    if operation == "drop":
        return value[:index] + value[index + 1:]
    if operation == "duplicate":
        return value[:index] + value[index] + value[index:]
    replacement = rng.choice(string.ascii_lowercase)
    return value[:index] + replacement + value[index + 1:]


def abbreviate_tokens(value: str, rng: random.Random) -> str:
    """Abbreviate one multi-character token to its leading characters plus a dot."""
    tokens = value.split()
    candidates = [i for i, token in enumerate(tokens) if len(token) > 4 and token.isalpha()]
    if not candidates:
        return value
    index = rng.choice(candidates)
    tokens[index] = tokens[index][:3] + "."
    return " ".join(tokens)


def drop_token(value: str, rng: random.Random) -> str:
    """Drop one token (keeps at least one token)."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    index = rng.randrange(len(tokens))
    del tokens[index]
    return " ".join(tokens)


def shuffle_tokens(value: str, rng: random.Random) -> str:
    """Swap two adjacent tokens (mild word-order change)."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    index = rng.randrange(len(tokens) - 1)
    tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
    return " ".join(tokens)


def change_case(value: str, rng: random.Random) -> str:
    """Change casing of the whole value (upper / lower / title)."""
    transform = rng.choice((str.upper, str.lower, str.title))
    return transform(value)


def append_noise_token(value: str, rng: random.Random) -> str:
    """Append a marketplace-style noise token, e.g. ``[Explicit]`` or ``NEW``."""
    noise = rng.choice(("[Explicit]", "(New)", "- Import", "(Deluxe Edition)", "NEW", "OEM"))
    return f"{value} {noise}"


def perturb_number(value: str, rng: random.Random) -> str:
    """Perturb a numeric value slightly (price rounding, cents differences)."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return value
    delta = rng.choice((-1.0, -0.05, 0.0, 0.05, 1.0))
    perturbed = max(0.0, number + delta)
    return f"{perturbed:.2f}"


#: Operators applicable to free-text attribute values.
TEXT_OPERATORS = (
    introduce_typo,
    abbreviate_tokens,
    drop_token,
    shuffle_tokens,
    change_case,
    append_noise_token,
)


@dataclass
class CorruptionPipeline:
    """Applies a randomised mixture of corruption operators to attribute values.

    Args:
        corruption_probability: probability that a given attribute value gets at
            least one corruption applied.
        missing_probability: probability that a value is dropped entirely
            (becomes ``None``), simulating missing data.
        max_operations: maximum number of corruption operators applied to a
            single value.
        seed: RNG seed for reproducibility.
    """

    corruption_probability: float = 0.45
    missing_probability: float = 0.08
    max_operations: int = 2
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.corruption_probability <= 1.0:
            raise ValueError("corruption_probability must be in [0, 1]")
        if not 0.0 <= self.missing_probability <= 1.0:
            raise ValueError("missing_probability must be in [0, 1]")
        if self.max_operations < 1:
            raise ValueError("max_operations must be >= 1")
        self._rng = random.Random(self.seed)

    def corrupt_value(self, value: str | None, numeric: bool = False) -> str | None:
        """Return a corrupted copy of ``value`` (possibly ``None`` for missing)."""
        if value is None:
            return None
        if self._rng.random() < self.missing_probability:
            return None
        if self._rng.random() >= self.corruption_probability:
            return value
        corrupted = value
        operations = self._rng.randint(1, self.max_operations)
        for _ in range(operations):
            if numeric:
                corrupted = perturb_number(corrupted, self._rng)
            else:
                operator = self._rng.choice(TEXT_OPERATORS)
                corrupted = operator(corrupted, self._rng)
        return corrupted

    def corrupt_record_values(
        self,
        values: dict[str, str | None],
        numeric_attributes: frozenset[str] = frozenset(),
    ) -> dict[str, str | None]:
        """Corrupt every value of a record's attribute dictionary."""
        return {
            name: self.corrupt_value(value, numeric=name in numeric_attributes)
            for name, value in values.items()
        }
