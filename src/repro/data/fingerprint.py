"""Canonical content fingerprints for entity pairs.

A fingerprint hashes the attribute values of both records of a pair and
deliberately ignores ``pair_id`` and record ids: two pairs with identical
contents map to the same key.  The scheme is shared by every content-addressed
cache in the system — the service's pair-level result cache and the feature
engine's vector store — so a pair fingerprinted by one layer can be looked up
by any other.
"""

from __future__ import annotations

import hashlib

from repro.data.schema import EntityPair


def pair_fingerprint(pair: EntityPair) -> str:
    """Return the canonical content fingerprint of an entity pair.

    The fingerprint hashes the attribute values of both records (attribute
    order normalised, missing values skipped) and deliberately ignores
    ``pair_id`` and record ids: two pairs with identical contents are the same
    cache entry.  Left/right order is preserved — ER pairs are directed
    (table A vs. table B).

    Every field is length-prefixed, so the encoding is unambiguous for
    arbitrary attribute names and values (no separator byte a hostile client
    string could collide with).
    """
    digest = hashlib.blake2b(digest_size=16)
    for record in (pair.left, pair.right):
        present = [
            (name, value)
            for name, value in sorted(record.values.items())
            if value is not None
        ]
        digest.update(f"{len(present)};".encode("ascii"))
        for name, value in present:
            for text in (name, value):
                encoded = text.encode("utf-8")
                digest.update(f"{len(encoded)}:".encode("ascii"))
                digest.update(encoded)
    return digest.hexdigest()
