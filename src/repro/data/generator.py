"""Synthetic Magellan-style benchmark generator.

The generator turns a :class:`repro.data.specs.DatasetSpec` into a full
:class:`repro.data.schema.Dataset`:

1. sample ``n`` clean *world entities* from the spec's ``entity_factory``;
2. materialise every world entity as a record in table A and (independently
   corrupted) a record in table B, simulating the two data sources describing
   the same object differently;
3. build **matched candidate pairs** from (A-view, B-view) of the same world
   entity;
4. build **non-matched candidate pairs** as a mixture of *hard negatives*
   (the spec's ``variant_factory`` modifies an entity into a different but
   similar one, e.g. a different model number or a different paper by the same
   authors) and *easy negatives* (two unrelated world entities);
5. split the labeled candidate set 3:1:1 into train/validation/test.

Everything is driven by a single seed, so datasets are fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.corruption import CorruptionPipeline
from repro.data.schema import (
    CandidateSet,
    Dataset,
    EntityPair,
    MatchLabel,
    Record,
    Table,
)
from repro.data.specs import DatasetSpec, get_spec
from repro.data.splits import split_candidate_set
from repro.utils import stable_seed

#: Fraction of non-matching candidate pairs that are hard negatives.
HARD_NEGATIVE_FRACTION = 0.6


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic benchmark generator.

    Args:
        seed: base RNG seed; every derived stream (entities, corruption for A,
            corruption for B, pairing) uses an offset of this seed.
        scale: multiplier applied to the spec's pair / match counts.  ``1.0``
            reproduces the paper's Table II sizes; smaller values generate
            proportionally smaller datasets for fast tests and examples.
        hard_negative_fraction: fraction of non-matches generated via the
            spec's ``variant_factory`` (similar-looking different entities);
            ``None`` uses the per-dataset fraction from the spec.
    """

    seed: int = 0
    scale: float = 1.0
    hard_negative_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.hard_negative_fraction is not None and not 0.0 <= self.hard_negative_fraction <= 1.0:
            raise ValueError("hard_negative_fraction must be in [0, 1]")


class MagellanStyleGenerator:
    """Generates one synthetic benchmark dataset from a :class:`DatasetSpec`."""

    def __init__(self, spec: DatasetSpec, config: GeneratorConfig | None = None) -> None:
        self.spec = spec
        self.config = config or GeneratorConfig()

    # -- sizing ------------------------------------------------------------

    def target_num_matches(self) -> int:
        """Number of matching pairs to generate after applying ``scale``."""
        return max(8, round(self.spec.num_matches * self.config.scale))

    def target_num_pairs(self) -> int:
        """Total number of candidate pairs to generate after applying ``scale``."""
        scaled = max(20, round(self.spec.num_pairs * self.config.scale))
        # Keep at least as many pairs as matches plus a handful of negatives.
        return max(scaled, self.target_num_matches() + 12)

    # -- generation --------------------------------------------------------

    def generate(self) -> Dataset:
        """Generate the full dataset (tables, labeled candidate pairs, splits)."""
        spec = self.spec
        config = self.config
        entity_rng = random.Random(stable_seed(config.seed, spec.code, "entities"))
        pair_rng = random.Random(stable_seed(config.seed, spec.code, "pairs"))

        num_matches = self.target_num_matches()
        num_pairs = self.target_num_pairs()
        num_non_matches = num_pairs - num_matches
        hard_fraction = (
            config.hard_negative_fraction
            if config.hard_negative_fraction is not None
            else spec.hard_negative_fraction
        )
        num_hard_negatives = round(num_non_matches * hard_fraction)
        num_easy_negatives = num_non_matches - num_hard_negatives

        # Every matched pair consumes one world entity; easy negatives consume
        # two; hard negatives consume one (plus its generated variant).  Add a
        # small surplus so sampling without replacement never starves.
        num_entities = num_matches + num_hard_negatives + 2 * num_easy_negatives + 16
        world_entities = [
            spec.entity_factory(entity_rng, index) for index in range(num_entities)
        ]

        corrupt_a = CorruptionPipeline(
            corruption_probability=spec.corruption_probability * 0.3,
            missing_probability=spec.missing_probability * 0.5,
            max_operations=1,
            seed=config.seed * 7919 + 11,
        )
        corrupt_b = CorruptionPipeline(
            corruption_probability=spec.corruption_probability,
            missing_probability=spec.missing_probability,
            max_operations=2,
            seed=config.seed * 7919 + 23,
        )

        records_a: list[Record] = []
        records_b: list[Record] = []
        pairs: list[EntityPair] = []

        def add_record(side: str, values: dict[str, str | None]) -> Record:
            storage = records_a if side == "A" else records_b
            pipeline = corrupt_a if side == "A" else corrupt_b
            corrupted = pipeline.corrupt_record_values(values, spec.numeric_attributes)
            record = Record(record_id=f"{side}-{len(storage)}", values=corrupted)
            storage.append(record)
            return record

        def add_pair(left: Record, right: Record, label: MatchLabel) -> None:
            pairs.append(
                EntityPair(
                    pair_id=f"{spec.code}-{len(pairs)}",
                    left=left,
                    right=right,
                    label=label,
                )
            )

        entity_cursor = 0

        # Matching pairs: two corrupted views of the same world entity.
        for _ in range(num_matches):
            entity = world_entities[entity_cursor]
            entity_cursor += 1
            add_pair(add_record("A", entity), add_record("B", entity), MatchLabel.MATCH)

        # Hard negatives: an entity versus a near-duplicate variant of it.
        for _ in range(num_hard_negatives):
            entity = world_entities[entity_cursor]
            entity_cursor += 1
            variant = spec.variant_factory(entity, pair_rng)
            add_pair(add_record("A", entity), add_record("B", variant), MatchLabel.NON_MATCH)

        # Easy negatives: two unrelated world entities.
        for _ in range(num_easy_negatives):
            entity_left = world_entities[entity_cursor]
            entity_right = world_entities[entity_cursor + 1]
            entity_cursor += 2
            add_pair(
                add_record("A", entity_left),
                add_record("B", entity_right),
                MatchLabel.NON_MATCH,
            )

        pair_rng.shuffle(pairs)
        candidate_set = CandidateSet(tuple(pairs))
        splits = split_candidate_set(candidate_set, seed=config.seed)

        return Dataset(
            name=spec.code,
            full_name=spec.full_name,
            domain=spec.domain,
            table_a=Table(name="A", attributes=spec.attributes, records=tuple(records_a)),
            table_b=Table(name="B", attributes=spec.attributes, records=tuple(records_b)),
            candidate_pairs=candidate_set,
            splits=splits,
        )


def generate_dataset(
    name: str, seed: int = 0, scale: float = 1.0
) -> Dataset:
    """Generate the named benchmark dataset.

    Args:
        name: dataset code from Table II (``"wa"``, ``"ab"``, ..., ``"beer"``),
            case-insensitive.
        seed: RNG seed controlling entities, corruption and pairing.
        scale: size multiplier relative to the paper's pair counts.
    """
    spec = get_spec(name)
    generator = MagellanStyleGenerator(spec, GeneratorConfig(seed=seed, scale=scale))
    return generator.generate()
