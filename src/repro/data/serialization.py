"""Entity serialization (Eq. 1 of the paper).

A record is serialized as ``attr1: val1, attr2: val2, ...`` and an entity pair
as ``S(a) [SEP] S(b)``.  The serialized form is used (i) as the textual payload
of prompts sent to the LLM and (ii) as the input to the semantics-based feature
extractor.
"""

from __future__ import annotations

from repro.data.schema import EntityPair, Record

#: Separator token between the two entities of a serialized pair (Eq. 1).
PAIR_SEPARATOR = "[SEP]"

#: Placeholder used for missing attribute values in serialized text.
MISSING_VALUE_TEXT = ""


def serialize_record(record: Record, attributes: tuple[str, ...] | None = None) -> str:
    """Serialize one record as ``attr1: val1, attr2: val2, ...``.

    Args:
        record: the record to serialize.
        attributes: explicit attribute ordering; defaults to the record's own
            value ordering.  Passing the table schema keeps serialization
            consistent across records even when some values are missing.
    """
    names = attributes if attributes is not None else tuple(record.values.keys())
    parts = []
    for name in names:
        value = record.value(name)
        rendered = value if value is not None else MISSING_VALUE_TEXT
        parts.append(f"{name}: {rendered}")
    return ", ".join(parts)


def serialize_pair(pair: EntityPair, attributes: tuple[str, ...] | None = None) -> str:
    """Serialize an entity pair as ``S(a) [SEP] S(b)`` (Eq. 1)."""
    left_text = serialize_record(pair.left, attributes)
    right_text = serialize_record(pair.right, attributes)
    return f"{left_text} {PAIR_SEPARATOR} {right_text}"
