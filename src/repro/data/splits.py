"""Train / validation / test splitting of labeled candidate sets.

The paper splits labeled pairs 3:1:1 (Section VI-A), consistent with the Ditto
and DeepMatcher evaluation protocol.  The split is stratified by label so that
the match rate is (approximately) preserved in every partition — important for
the small datasets (FZ, IA, Beer) where a naive random split can starve the
test set of positives.
"""

from __future__ import annotations

import random

from repro.data.schema import CandidateSet, DatasetSplits, EntityPair, MatchLabel

#: The paper's train : validation : test proportions.
SPLIT_RATIOS = (3, 1, 1)


def split_candidate_set(
    candidates: CandidateSet,
    seed: int = 0,
    ratios: tuple[int, int, int] = SPLIT_RATIOS,
) -> DatasetSplits:
    """Split a labeled candidate set into stratified train/validation/test parts.

    Args:
        candidates: the labeled candidate pairs to split.
        seed: RNG seed for the shuffle within each label stratum.
        ratios: integer proportions for (train, validation, test).

    Raises:
        ValueError: if any pair is unlabeled or the ratios are invalid.
    """
    if any(ratio <= 0 for ratio in ratios):
        raise ValueError(f"all split ratios must be positive, got {ratios}")
    unlabeled = [pair.pair_id for pair in candidates if not pair.is_labeled]
    if unlabeled:
        raise ValueError(
            f"cannot split: {len(unlabeled)} pairs are unlabeled (e.g. {unlabeled[0]!r})"
        )

    rng = random.Random(seed)
    strata: dict[MatchLabel, list[EntityPair]] = {
        MatchLabel.MATCH: [],
        MatchLabel.NON_MATCH: [],
    }
    for pair in candidates:
        strata[pair.label].append(pair)

    train: list[EntityPair] = []
    validation: list[EntityPair] = []
    test: list[EntityPair] = []
    total_ratio = sum(ratios)

    for stratum in strata.values():
        rng.shuffle(stratum)
        n = len(stratum)
        n_train = round(n * ratios[0] / total_ratio)
        n_validation = round(n * ratios[1] / total_ratio)
        train.extend(stratum[:n_train])
        validation.extend(stratum[n_train:n_train + n_validation])
        test.extend(stratum[n_train + n_validation:])

    rng.shuffle(train)
    rng.shuffle(validation)
    rng.shuffle(test)
    return DatasetSplits(
        train=CandidateSet(tuple(train)),
        validation=CandidateSet(tuple(validation)),
        test=CandidateSet(tuple(test)),
    )
