"""Standard (one-question-per-call) prompting pipeline.

Used as the comparison point of Exp-1 (Table III, Figure 6) and as the engine
behind the ManualPrompt baseline (Exp-4).  The pipeline mirrors
:class:`repro.core.batcher.BatchER` but sends one prompt per question, each
carrying the task description and the full demonstration set — which is exactly
why its API cost is several times higher.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.config import BatcherConfig
from repro.core.result import RunResult
from repro.cost.tracker import CostTracker
from repro.data.schema import Dataset, EntityPair, MatchLabel
from repro.evaluation.metrics import evaluate_predictions
from repro.llm.base import LLMClient
from repro.llm.registry import create_llm
from repro.prompting.parser import parse_standard_answer
from repro.prompting.standard import StandardPromptBuilder


class StandardPromptingER:
    """Standard prompting for ER with a fixed demonstration set.

    Args:
        config: reuses :class:`BatcherConfig` for the shared knobs (model,
            number of demonstrations, seed, question cap); batching- and
            selection-specific fields are ignored.
        demonstrations: explicit demonstration pairs (must be labeled).  When
            omitted, ``num_demonstrations`` pairs are sampled at random from the
            train split, as in the paper's Exp-1 protocol.
        method_name: label recorded on results (e.g. ``"manual-prompt"``).
        llm: optional pre-built LLM client.
    """

    def __init__(
        self,
        config: BatcherConfig | None = None,
        demonstrations: Sequence[EntityPair] | None = None,
        method_name: str = "standard-prompting",
        llm: LLMClient | None = None,
    ) -> None:
        self.config = config or BatcherConfig()
        self.demonstrations = list(demonstrations) if demonstrations is not None else None
        self.method_name = method_name
        self._llm = llm

    def _sample_demonstrations(self, dataset: Dataset) -> list[EntityPair]:
        pool = list(dataset.splits.train)
        if not pool:
            raise ValueError(f"dataset {dataset.name!r} has an empty train split")
        rng = random.Random(self.config.seed)
        count = min(self.config.num_demonstrations, len(pool))
        chosen = rng.sample(pool, count)
        # Keep the demonstration set label-balanced when possible, matching the
        # behaviour of the fixed selector.
        if len({pair.label for pair in chosen}) == 1 and len(pool) > count:
            for pair in rng.sample(pool, len(pool)):
                if pair.label != chosen[-1].label:
                    chosen[-1] = pair
                    break
        return chosen

    def _build_llm(self) -> LLMClient:
        if self._llm is not None:
            self._llm.reset_usage()
            return self._llm
        return create_llm(
            self.config.model,
            seed=self.config.seed,
            temperature=self.config.temperature,
            engine=self.config.engine,
        )

    def run(self, dataset: Dataset) -> RunResult:
        """Run standard prompting on the dataset's test split."""
        questions = list(dataset.splits.test)
        if self.config.max_questions is not None:
            questions = questions[: self.config.max_questions]
        if not questions:
            raise ValueError(f"dataset {dataset.name!r} has an empty test split")

        demonstrations = (
            list(self.demonstrations)
            if self.demonstrations is not None
            else self._sample_demonstrations(dataset)
        )
        unlabeled = [pair.pair_id for pair in demonstrations if not pair.is_labeled]
        if unlabeled:
            raise ValueError(f"demonstrations must be labeled; missing labels for {unlabeled}")

        llm = self._build_llm()
        cost = CostTracker(self.config.model)
        cost.attach_usage(llm.usage)
        cost.record_labeled_pairs(len(demonstrations))

        builder = StandardPromptBuilder(attributes=dataset.attributes)
        predictions: list[MatchLabel] = []
        num_unanswered = 0
        for question in questions:
            prompt = builder.build(question, demonstrations)
            response = llm.complete(prompt.text)
            parsed = parse_standard_answer(response.text)
            num_unanswered += parsed.num_unanswered
            predictions.append(parsed.resolved()[0])

        gold = [question.label for question in questions]
        metrics = evaluate_predictions(gold, predictions)
        return RunResult(
            dataset=dataset.name,
            method=self.method_name,
            metrics=metrics,
            cost=cost.breakdown(),
            num_questions=len(questions),
            num_batches=len(questions),
            num_unanswered=num_unanswered,
            predictions=tuple(predictions),
            config=self.config.to_dict(),
        )
