"""Run result value objects returned by the framework and the baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cost.tracker import CostBreakdown
from repro.data.schema import MatchLabel
from repro.evaluation.metrics import MatchingMetrics


@dataclass(frozen=True)
class RunResult:
    """The outcome of evaluating one matcher configuration on one dataset.

    Attributes:
        dataset: dataset code (e.g. ``"WA"``).
        method: human-readable method label (e.g. ``"batcher/diverse+covering"``).
        metrics: precision / recall / F1 on the evaluated questions.
        cost: monetary cost breakdown (API + labeling).
        num_questions: number of evaluated questions.
        num_batches: number of LLM calls made in batch mode (0 for non-LLM
            baselines).
        num_unanswered: questions the LLM failed to answer (resolved with the
            fallback label before evaluation).
        predictions: per-question predicted labels, aligned with the question
            order used by the run.
        config: snapshot of the configuration that produced this result.
    """

    dataset: str
    method: str
    metrics: MatchingMetrics
    cost: CostBreakdown
    num_questions: int
    num_batches: int = 0
    num_unanswered: int = 0
    predictions: tuple[MatchLabel, ...] = field(default=(), repr=False)
    config: Mapping[str, Any] = field(default_factory=dict, repr=False)

    def summary(self) -> dict[str, object]:
        """Return a flat summary row (handy for tables and benchmark output)."""
        return {
            "dataset": self.dataset,
            "method": self.method,
            "f1": round(self.metrics.f1, 2),
            "precision": round(self.metrics.precision, 2),
            "recall": round(self.metrics.recall, 2),
            "api_cost": round(self.cost.api_cost, 4),
            "label_cost": round(self.cost.labeling_cost, 4),
            "total_cost": round(self.cost.total_cost, 4),
            "questions": self.num_questions,
            "llm_calls": self.cost.num_llm_calls,
            "unanswered": self.num_unanswered,
        }
