"""Core framework: configuration, the BatchER orchestrator and run results."""

from repro.core.config import BatcherConfig
from repro.core.batcher import BatchER
from repro.core.standard import StandardPromptingER
from repro.core.result import RunResult

__all__ = [
    "BatchER",
    "BatcherConfig",
    "RunResult",
    "StandardPromptingER",
]
