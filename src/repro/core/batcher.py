"""The BatchER framework orchestrator (paper Figure 2).

``BatchER.run`` wires the whole batch-prompting pipeline together:

1. take the dataset's test split as the *question set* and its train split as
   the *unlabeled demonstration pool*;
2. extract feature vectors for questions and pool pairs;
3. group questions into batches with the configured batching strategy;
4. select (and "manually label") demonstrations per batch with the configured
   selection strategy;
5. render one batch prompt per batch, query the LLM, parse the answers;
6. evaluate F1 against the gold labels and account API + labeling cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.batching.base import validate_batching
from repro.batching.factory import create_batcher
from repro.core.config import BatcherConfig
from repro.core.result import RunResult
from repro.cost.tracker import CostTracker
from repro.data.schema import Dataset, EntityPair, MatchLabel
from repro.evaluation.metrics import evaluate_predictions
from repro.features.factory import create_feature_extractor
from repro.llm.base import LLMClient
from repro.llm.registry import create_llm
from repro.prompting.batch import BatchPromptBuilder
from repro.prompting.parser import parse_batch_answers
from repro.selection.factory import create_selector


class BatchER:
    """Cost-effective batch prompting framework for entity resolution.

    Args:
        config: the design-space point to run.
        llm: optional pre-built LLM client (useful for injecting a different
            seed or a custom client in tests); by default one is created from
            the config.
    """

    def __init__(self, config: BatcherConfig | None = None, llm: LLMClient | None = None) -> None:
        self.config = config or BatcherConfig()
        self._llm = llm

    # -- question / pool preparation ----------------------------------------

    def _questions(self, dataset: Dataset) -> list[EntityPair]:
        questions = list(dataset.splits.test)
        if self.config.max_questions is not None:
            questions = questions[: self.config.max_questions]
        return questions

    def _pool(self, dataset: Dataset) -> list[EntityPair]:
        return list(dataset.splits.train)

    def _build_llm(self) -> LLMClient:
        if self._llm is not None:
            self._llm.reset_usage()
            return self._llm
        return create_llm(
            self.config.model, seed=self.config.seed, temperature=self.config.temperature
        )

    # -- main entry point -----------------------------------------------------

    def run(self, dataset: Dataset) -> RunResult:
        """Run the framework on ``dataset`` and return the evaluated result."""
        config = self.config
        questions = self._questions(dataset)
        if not questions:
            raise ValueError(f"dataset {dataset.name!r} has an empty test split")
        pool = self._pool(dataset)
        if not pool:
            raise ValueError(f"dataset {dataset.name!r} has an empty train split")

        extractor = create_feature_extractor(config.feature_extractor, dataset.attributes)
        question_features = extractor.extract_matrix(questions)
        pool_features = extractor.extract_matrix(pool)

        batcher = create_batcher(config.batching, batch_size=config.batch_size, seed=config.seed)
        batches = batcher.create_batches(questions, question_features)
        validate_batching(batches, len(questions), config.batch_size)

        selector = create_selector(
            config.selection,
            num_demonstrations=config.num_demonstrations,
            metric=config.metric,
            seed=config.seed,
            threshold_percentile=config.threshold_percentile,
        )
        selection = selector.select(batches, question_features, pool, pool_features)

        llm = self._build_llm()
        cost = CostTracker(config.model)
        cost.attach_usage(llm.usage)
        cost.record_labeled_pairs(selection.num_labeled)

        builder = BatchPromptBuilder(attributes=dataset.attributes)
        predictions: list[MatchLabel | None] = [None] * len(questions)
        num_unanswered = 0
        for batch, batch_demos in zip(batches, selection.per_batch):
            prompt = builder.build(batch.pairs, batch_demos.demonstrations)
            response = llm.complete(prompt.text)
            parsed = parse_batch_answers(response.text, num_questions=len(batch))
            num_unanswered += parsed.num_unanswered
            for question_index, label in zip(batch.indices, parsed.resolved()):
                predictions[question_index] = label

        resolved = tuple(
            label if label is not None else MatchLabel.NON_MATCH for label in predictions
        )
        gold = [question.label for question in questions]
        metrics = evaluate_predictions(gold, resolved)

        return RunResult(
            dataset=dataset.name,
            method=f"batcher/{config.batching}+{config.selection}",
            metrics=metrics,
            cost=cost.breakdown(),
            num_questions=len(questions),
            num_batches=len(batches),
            num_unanswered=num_unanswered,
            predictions=resolved,
            config=config.to_dict(),
        )

    def run_many(self, datasets: Sequence[Dataset]) -> list[RunResult]:
        """Run the framework on several datasets and return all results."""
        return [self.run(dataset) for dataset in datasets]
