"""The BatchER framework orchestrator (paper Figure 2).

``BatchER.run`` wires the whole batch-prompting pipeline together:

1. take the dataset's test split as the *question set* and its train split as
   the *unlabeled demonstration pool*;
2. extract feature vectors for questions and pool pairs;
3. group questions into batches with the configured batching strategy;
4. select (and "manually label") demonstrations per batch with the configured
   selection strategy;
5. render one batch prompt per batch, query the LLM, parse the answers;
6. evaluate F1 against the gold labels and account API + labeling cost.

Since the staged-pipeline redesign this class is a thin facade over
:mod:`repro.pipeline`: it builds a :class:`~repro.pipeline.PipelineContext`
from the dataset, runs :meth:`Pipeline.default` over it, and returns the
evaluated :class:`RunResult`.  Use the pipeline API directly to run, inspect
or re-compose individual stages, and :class:`repro.pipeline.Resolver` to serve
ad-hoc pair streams.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.core.config import BatcherConfig
from repro.core.result import RunResult
from repro.data.schema import Dataset
from repro.llm.base import LLMClient
from repro.llm.executors import ExecutionBackend
from repro.observability.tracing import NOOP_TRACER, Tracer
from repro.pipeline.context import PipelineContext
from repro.pipeline.pipeline import Pipeline, StageHook


class BatchER:
    """Cost-effective batch prompting framework for entity resolution.

    Args:
        config: the design-space point to run.
        llm: optional pre-built LLM client (useful for injecting a different
            seed or a custom client in tests); by default one is created from
            the config.
        executor: optional execution backend used to dispatch the independent
            batch prompts (``None`` = serial).  A
            :class:`~repro.llm.executors.ConcurrentExecutor` parallelises the
            LLM calls without changing any result.
        hooks: optional pipeline telemetry hooks (per-stage observers).
        tracer: optional span producer; when given, every run opens a root
            ``batcher:run`` span with per-stage children.  Tracing observes
            the run without altering any result.
    """

    def __init__(
        self,
        config: BatcherConfig | None = None,
        llm: LLMClient | None = None,
        executor: ExecutionBackend | None = None,
        hooks: Iterable[StageHook] = (),
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or BatcherConfig()
        self._llm = llm
        self._executor = executor
        self._hooks = tuple(hooks)
        self._tracer = tracer or NOOP_TRACER

    def build_pipeline(self) -> Pipeline:
        """The staged pipeline this facade runs (exposed for inspection)."""
        return Pipeline.default(executor=self._executor, hooks=self._hooks)

    def build_context(self, dataset: Dataset) -> PipelineContext:
        """Build the pipeline context ``run`` would execute on ``dataset``."""
        context = PipelineContext.from_dataset(dataset, self.config, llm=self._llm)
        context.tracer = self._tracer
        return context

    def build_engine(
        self,
        shards: int = 1,
        checkpoint_dir: str | Path | None = None,
        shard_strategy: str = "fingerprint",
    ):
        """The sharded run engine ``run(shards=..., checkpoint_dir=...)`` uses.

        Exposed so callers can inspect ``engine.last_report`` (shard sizes,
        resumed batches, LLM calls saved) after a run.
        """
        from repro.engine.engine import RunEngine

        return RunEngine(
            config=self.config,
            llm=self._llm,
            executor=self._executor,
            num_shards=shards,
            shard_strategy=shard_strategy,
            checkpoint_dir=checkpoint_dir,
            hooks=self._hooks,
            tracer=self._tracer,
        )

    # -- main entry point -----------------------------------------------------

    def run(
        self,
        dataset: Dataset,
        shards: int | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> RunResult:
        """Run the framework on ``dataset`` and return the evaluated result.

        Args:
            shards: split the run into this many deterministic shards executed
                by the :class:`~repro.engine.engine.RunEngine` (the configured
                ``executor`` then bounds *in-flight shards* instead of
                in-flight prompts).  The result is byte-identical to the
                unsharded path for a fixed seed.  ``None``/``1`` without a
                ``checkpoint_dir`` keeps the historical single-pass path.
            checkpoint_dir: persist per-shard JSONL checkpoints under this
                directory; a killed run re-invoked with the same arguments
                resumes with zero repeated LLM calls.  Implies the engine
                path even when ``shards`` is not given — the shard count then
                defaults to the configured executor's worker bound, so a
                checkpointed run keeps the executor's concurrency.
        """
        with self._tracer.span("batcher:run") as scope:
            if self._tracer.enabled:
                scope.set_attribute("dataset", dataset.name)
            if (shards is None or shards == 1) and checkpoint_dir is None:
                context = self.build_pipeline().run(self.build_context(dataset))
                assert context.result is not None  # produced by the Evaluate stage
                return context.result
            if shards is None:
                # Engine concurrency is per shard: without an explicit count,
                # match the executor's parallelism instead of silently
                # serializing a previously-concurrent run behind checkpointing.
                shards = (
                    getattr(self._executor, "max_workers", 1) if self._executor else 1
                )
            engine = self.build_engine(shards=shards, checkpoint_dir=checkpoint_dir)
            return engine.run(dataset)

    def run_many(self, datasets: Sequence[Dataset]) -> list[RunResult]:
        """Run the framework on several datasets and return all results."""
        return [self.run(dataset) for dataset in datasets]
