"""Configuration of the BatchER framework: one point in the paper's design space.

A :class:`BatcherConfig` fixes the question batching strategy, the
demonstration selection strategy, the feature extractor, the batch /
demonstration budgets, the underlying LLM and the seeds — i.e. everything the
paper varies across its experiments (Table I plus Sections VI-E to VI-G).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.batching.factory import BATCHING_STRATEGIES
from repro.engines.registry import available_engines
from repro.features.factory import EXTRACTOR_VARIANTS
from repro.llm.profiles import available_models
from repro.selection.factory import SELECTION_STRATEGIES


@dataclass(frozen=True)
class BatcherConfig:
    """One design-space point of the BatchER framework.

    Attributes:
        batching: question batching strategy (``"random"``, ``"similar"``,
            ``"diverse"``); the paper's best choice is ``"diverse"``.
        selection: demonstration selection strategy (``"fixed"``,
            ``"topk-batch"``, ``"topk-question"``, ``"covering"``); the paper's
            proposal is ``"covering"``.
        feature_extractor: ``"lr"`` (structure-aware Levenshtein ratio, the
            paper's best), ``"jaccard"`` or ``"semantic"``.
        batch_size: questions per batch (paper: 8).
        num_demonstrations: per-batch demonstration budget K (paper: 8).
        model: underlying LLM profile name (paper default: GPT-3.5-03).
        metric: feature-space distance (paper: Euclidean).
        threshold_percentile: covering radius percentile (paper: 8).
        temperature: LLM sampling temperature (paper: 0.01).
        seed: seed driving batching/selection randomness and the simulated LLM.
        max_questions: optional cap on the number of test questions evaluated
            (useful for fast examples and tests); ``None`` evaluates the whole
            test split.
        engine: LLM engine backend serving the completions
            (``"simulated"`` — hermetic, the default — or a real backend such
            as ``"openai"`` / ``"openai_compatible"`` / ``"anthropic"`` from
            the :mod:`repro.engines` registry).  Orthogonal to ``model``,
            which stays the logical profile/pricing name.
    """

    batching: str = "diverse"
    selection: str = "covering"
    feature_extractor: str = "lr"
    batch_size: int = 8
    num_demonstrations: int = 8
    model: str = "gpt-3.5-03"
    metric: str = "euclidean"
    threshold_percentile: float = 8.0
    temperature: float = 0.01
    seed: int = 0
    max_questions: int | None = None
    engine: str = "simulated"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.num_demonstrations < 1:
            raise ValueError(
                f"num_demonstrations must be >= 1, got {self.num_demonstrations}"
            )
        if self.max_questions is not None and self.max_questions < 1:
            raise ValueError(f"max_questions must be >= 1, got {self.max_questions}")
        if self.batching.lower() not in _normalised(BATCHING_STRATEGIES):
            raise ValueError(
                f"unknown batching strategy {self.batching!r}; "
                f"expected one of {BATCHING_STRATEGIES}"
            )
        if self.selection.lower().replace("_", "-") not in _normalised(SELECTION_STRATEGIES):
            raise ValueError(
                f"unknown selection strategy {self.selection!r}; "
                f"expected one of {SELECTION_STRATEGIES}"
            )
        if self.feature_extractor.lower() not in _normalised(EXTRACTOR_VARIANTS):
            raise ValueError(
                f"unknown feature extractor {self.feature_extractor!r}; "
                f"expected one of {EXTRACTOR_VARIANTS}"
            )
        if self.model.lower() not in available_models():
            raise ValueError(
                f"unknown model {self.model!r}; expected one of {available_models()}"
            )
        if self.engine.lower() not in available_engines():
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {available_engines()}"
            )

    def with_overrides(self, **overrides: Any) -> "BatcherConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict snapshot of the configuration (for reports)."""
        return {
            "batching": self.batching,
            "selection": self.selection,
            "feature_extractor": self.feature_extractor,
            "batch_size": self.batch_size,
            "num_demonstrations": self.num_demonstrations,
            "model": self.model,
            "metric": self.metric,
            "threshold_percentile": self.threshold_percentile,
            "temperature": self.temperature,
            "seed": self.seed,
            "max_questions": self.max_questions,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatcherConfig":
        """Rebuild a config from a :meth:`to_dict` snapshot.

        Round-trips with :meth:`to_dict`, so a :class:`~repro.core.result.RunResult`'s
        ``config`` snapshot can be re-run as-is.

        Raises:
            ValueError: for unknown fields (and, via ``__post_init__``, for
                invalid field values).
        """
        known = {config_field.name for config_field in fields(cls)}
        snapshot = dict(data)
        unknown = set(snapshot) - known
        if unknown:
            raise ValueError(
                f"unknown config fields {sorted(unknown)}; expected a subset of {sorted(known)}"
            )
        return cls(**snapshot)


def _normalised(options: tuple[str, ...]) -> set[str]:
    return {option.lower() for option in options}
