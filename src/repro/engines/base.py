"""The :class:`Engine` interface: an LLM client with an async lane.

An engine *is* an :class:`~repro.llm.base.LLMClient` — every existing caller
(pipeline, resolver, service, run engine) works unchanged — plus the surface
the registry and the async execution lane need:

* capability flags (``supports_json_schema``, ``requires_network``) that let
  callers pick features without isinstance checks against concrete backends;
* :meth:`Engine.acomplete`, the asyncio counterpart of ``complete`` used by
  :class:`~repro.llm.executors.AsyncExecutor` to keep hundreds of prompts in
  flight on one event loop (the default implementation delegates to a worker
  thread, which is already correct for the blocking urllib transport; a
  natively-async backend overrides it);
* :meth:`Engine.structured_complete` for provider JSON-schema output modes
  (terminal ``NotImplementedError`` on engines without the capability);
* :meth:`Engine.describe`, the JSON-serializable operational snapshot the
  service surfaces under ``/stats``.
"""

from __future__ import annotations

import asyncio
from typing import ClassVar, Mapping

from repro.llm.base import LLMClient, LLMResponse

__all__ = ["Engine"]


class Engine(LLMClient):
    """Base class of all registered LLM engines.

    Subclasses set :attr:`engine_name` (the registry key) and the capability
    flags as class attributes, and implement the usual
    :meth:`~repro.llm.base.LLMClient._generate` / ``complete`` contract.
    Usage accounting is inherited from :class:`LLMClient` unchanged, so every
    engine — simulated or HTTP-backed — folds into the same
    :class:`~repro.llm.base.UsageTracker` / :class:`~repro.cost.tracker.
    CostTracker` pricing path.
    """

    #: Registry key of this engine ("simulated", "openai", ...).
    engine_name: ClassVar[str] = "engine"
    #: Whether the backend offers a provider-side JSON-schema output mode.
    supports_json_schema: ClassVar[bool] = False
    #: Whether completions leave the process (False = hermetic, CI-safe).
    requires_network: ClassVar[bool] = False

    async def acomplete(self, prompt_text: str) -> LLMResponse:
        """Async counterpart of :meth:`~repro.llm.base.LLMClient.complete`.

        The default delegates to a worker thread, which is exactly right for
        blocking transports (urllib) and for the CPU-bound simulated engine;
        a backend with a native async client overrides this to await the
        wire directly.  Usage is recorded by the delegated ``complete``, so
        the sync and async lanes account identically.
        """
        return await asyncio.to_thread(self.complete, prompt_text)

    def structured_complete(
        self, prompt_text: str, schema: Mapping[str, object]
    ) -> LLMResponse:
        """Complete with a provider-enforced JSON schema on the output.

        Only available when :attr:`supports_json_schema` is true; the
        response text is then the schema-conforming JSON document.

        Raises:
            NotImplementedError: when the backend has no structured mode.
        """
        raise NotImplementedError(
            f"engine {self.engine_name!r} does not support JSON-schema output"
        )

    def describe(self) -> dict[str, object]:
        """JSON-serializable operational snapshot (for service ``/stats``).

        Subclasses with a transport extend this with retry / rate-limit
        counters; the base snapshot is capabilities plus cumulative usage.
        """
        return {
            "engine": self.engine_name,
            "model": self.model_name,
            "supports_json_schema": self.supports_json_schema,
            "requires_network": self.requires_network,
            "requests": self.usage.num_calls,
            "prompt_tokens": self.usage.prompt_tokens,
            "completion_tokens": self.usage.completion_tokens,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(model={self.model_name!r})"
