"""Deterministic fault harness for the engine transport stack.

The transport layer's interesting behaviour — retries, backoff, rate-limit
waits — is all about time and failure, which makes it miserable to test
against real sleeps and real networks.  This module provides the hermetic
stand-ins, in the spirit of :mod:`repro.engine.faults` (``CrashingLLM`` et
al.) one layer down the stack:

* :class:`FakeClock` — virtual monotonic time; ``sleep`` advances it and
  records the request, so a five-retry exponential backoff "runs" in
  microseconds and every wait is assertable;
* :class:`ScriptedTransport` — replays an explicit outcome script (status
  codes, payloads, exceptions), recording each request it sees;
* :class:`FlakyTransport` — wraps a working transport and fails at the k-th
  send(s) with a configurable status, mirroring ``CrashingLLM``'s 1-based
  ``fail_at`` ordinals;
* :class:`SimulatedBackendTransport` — a fake *provider*: answers OpenAI- or
  Anthropic-shaped chat payloads with completions computed by a
  :class:`~repro.llm.simulated.SimulatedLLM` from the request's own prompt.
  Because each response is a pure function of the prompt, retry/parity tests
  hold under concurrent dispatch no matter which request hits a fault.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

from repro.engines.transport import (
    Clock,
    Transport,
    TransportError,
    TransportRequest,
    TransportResponse,
    error_for_status,
)
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "FakeClock",
    "FlakyTransport",
    "ScriptedTransport",
    "SimulatedBackendTransport",
    "extract_prompt",
]


class FakeClock(Clock):
    """Virtual time: ``sleep`` advances the monotonic reading instantly.

    Attributes:
        sleeps: every positive duration passed to :meth:`sleep`, in order —
            the backoff/throttle schedule a test can assert on.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._lock:
            self._now += seconds
            self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (external passage)."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        with self._lock:
            self._now += seconds


#: One scripted outcome: an ``int`` HTTP status (non-2xx → the classified
#: error is raised, 2xx → an empty OK response), a payload mapping (returned
#: as a 200 response), or an exception instance (raised as-is).
ScriptedOutcome = "int | Mapping[str, object] | Exception"


class ScriptedTransport(Transport):
    """Replays an explicit outcome script, recording every request.

    Args:
        script: outcomes consumed one per :meth:`send` — an ``int`` status
            (non-2xx raises its classified :class:`TransportError`; 2xx
            returns an empty OK response), a payload mapping (returned as a
            200 :class:`TransportResponse`), or an exception instance
            (raised as-is).  A send past the end of the script raises
            ``RuntimeError`` — an exhausted script is a test bug.

    Attributes:
        requests: every :class:`TransportRequest` seen, in arrival order.
    """

    def __init__(self, script: Iterable[object]) -> None:
        self._script: list[object] = list(script)
        self._lock = threading.Lock()
        self.requests: list[TransportRequest] = []

    @property
    def calls(self) -> int:
        """Number of sends served so far."""
        with self._lock:
            return len(self.requests)

    def send(self, request: TransportRequest) -> TransportResponse:
        with self._lock:
            self.requests.append(request)
            index = len(self.requests) - 1
            if index >= len(self._script):
                raise RuntimeError(
                    f"ScriptedTransport script exhausted after {len(self._script)} sends"
                )
            outcome = self._script[index]
        if isinstance(outcome, Exception):
            raise outcome
        if isinstance(outcome, int):
            if 200 <= outcome < 300:
                return TransportResponse(status=outcome, payload={})
            raise error_for_status(outcome, f"scripted HTTP {outcome}")
        if isinstance(outcome, Mapping):
            return TransportResponse(status=200, payload=outcome)
        raise TypeError(
            f"unsupported scripted outcome {outcome!r}; "
            "expected int status, payload mapping, or exception"
        )


class FlakyTransport(Transport):
    """Delegate to ``inner``, failing at the k-th send(s).

    Mirrors :class:`repro.engine.faults.CrashingLLM`: ``fail_at`` holds
    1-based send ordinals (the counter includes the failing sends), so
    ``fail_at={1, 2}`` fails the first two attempts and succeeds from the
    third — exactly the shape retry tests need.

    Args:
        inner: transport used for non-failing sends.
        fail_at: 1-based ordinals of the sends to fail.
        status: HTTP status of the injected failures (classified through
            :func:`~repro.engines.transport.error_for_status`, so 503 is
            retryable and 400 terminal).
    """

    def __init__(
        self, inner: Transport, fail_at: Iterable[int] = (), status: int = 503
    ) -> None:
        self.inner = inner
        self.fail_at = frozenset(int(ordinal) for ordinal in fail_at)
        if any(ordinal < 1 for ordinal in self.fail_at):
            raise ValueError(f"fail_at ordinals are 1-based, got {sorted(self.fail_at)}")
        self.status = status
        self._lock = threading.Lock()
        self._calls = 0
        self._injected = 0

    @property
    def calls(self) -> int:
        """Total sends seen (failing sends included)."""
        with self._lock:
            return self._calls

    @property
    def injected_failures(self) -> int:
        """Number of failures injected so far."""
        with self._lock:
            return self._injected

    def send(self, request: TransportRequest) -> TransportResponse:
        with self._lock:
            self._calls += 1
            ordinal = self._calls
            inject = ordinal in self.fail_at
            if inject:
                self._injected += 1
        if inject:
            raise error_for_status(
                self.status, f"injected HTTP {self.status} at send #{ordinal}"
            )
        return self.inner.send(request)


def extract_prompt(payload: Mapping[str, object]) -> str:
    """Recover the user prompt from an OpenAI- or Anthropic-shaped payload.

    Joins the string contents of non-system chat messages; both provider
    dialects keep the prompt under ``messages[*].content`` (Anthropic may
    nest it as ``[{"type": "text", "text": ...}]`` blocks).
    """
    messages = payload.get("messages")
    if not isinstance(messages, Sequence):
        raise ValueError("payload has no 'messages' list to extract a prompt from")
    parts: list[str] = []
    for message in messages:
        if not isinstance(message, Mapping) or message.get("role") == "system":
            continue
        content = message.get("content")
        if isinstance(content, str):
            parts.append(content)
        elif isinstance(content, Sequence):
            for block in content:
                if isinstance(block, Mapping) and isinstance(block.get("text"), str):
                    parts.append(str(block["text"]))
    if not parts:
        raise ValueError("payload messages contain no user text content")
    return "\n".join(parts)


class SimulatedBackendTransport(Transport):
    """A fake provider endpoint backed by :class:`SimulatedLLM`.

    Serves chat-completion payloads whose text is computed by the simulated
    model *from the request's own prompt* — a pure function, so concurrent
    and retried requests always receive the same answer for the same prompt.
    This is what lets the HTTP engines, the retry stack and the async
    executor be exercised end to end with zero network and golden-stable
    results.

    Args:
        llm: the behavioural model producing completions (its usage tracker
            is bypassed — the *engine* under test does the accounting from
            the response payload, as it would against a real provider).
        shape: ``"openai"`` (choices/message) or ``"anthropic"``
            (content blocks) response dialect.
    """

    def __init__(self, llm: SimulatedLLM, shape: str = "openai") -> None:
        if shape not in ("openai", "anthropic"):
            raise ValueError(f"shape must be 'openai' or 'anthropic', got {shape!r}")
        self.llm = llm
        self.shape = shape
        self._lock = threading.Lock()
        self._calls = 0

    @property
    def calls(self) -> int:
        """Total sends served."""
        with self._lock:
            return self._calls

    def send(self, request: TransportRequest) -> TransportResponse:
        with self._lock:
            self._calls += 1
        try:
            prompt = extract_prompt(request.payload)
        except ValueError as error:
            raise TransportError(str(error), status=400) from error
        text = self.llm._generate(prompt)  # noqa: SLF001 - the backend *is* the model
        prompt_tokens = self.llm.tokenizer.count(prompt)
        completion_tokens = self.llm.tokenizer.count(text)
        model = str(request.payload.get("model", self.llm.model_name))
        if self.shape == "anthropic":
            payload: Mapping[str, object] = {
                "id": f"msg_{self._calls}",
                "type": "message",
                "model": model,
                "content": [{"type": "text", "text": text}],
                "stop_reason": "end_turn",
                "usage": {
                    "input_tokens": prompt_tokens,
                    "output_tokens": completion_tokens,
                },
            }
        else:
            payload = {
                "id": f"chatcmpl-{self._calls}",
                "object": "chat.completion",
                "model": model,
                "choices": [
                    {
                        "index": 0,
                        "message": {"role": "assistant", "content": text},
                        "finish_reason": "stop",
                    }
                ],
                "usage": {
                    "prompt_tokens": prompt_tokens,
                    "completion_tokens": completion_tokens,
                    "total_tokens": prompt_tokens + completion_tokens,
                },
            }
        return TransportResponse(status=200, payload=payload)
