"""``repro.engines`` — pluggable LLM engine registry with a shared transport.

The subsystem that connects the framework to *real* LLM backends without
giving up the hermetic simulated path tier-1 depends on:

* :mod:`repro.engines.base` — the :class:`Engine` interface (an
  :class:`~repro.llm.base.LLMClient` plus async completion, capability flags,
  structured output and an operational snapshot);
* :mod:`repro.engines.registry` — config dataclasses, ``register_engine`` /
  ``create_engine`` and environment resolution (``REPRO_ENGINE`` & friends);
* :mod:`repro.engines.transport` — retry/backoff, token-bucket rate limiting
  and the urllib transport shared by every HTTP backend;
* :mod:`repro.engines.http` — OpenAI, OpenAI-compatible and Anthropic
  dialects with optional provider-enforced JSON-schema output;
* :mod:`repro.engines.simulated` — the behavioural simulation registered as
  just another backend, byte-identical to ``SimulatedLLM``;
* :mod:`repro.engines.faults` — fake clock and scripted/flaky/simulated
  backend transports for instant, deterministic transport tests.

This package deliberately imports nothing from ``repro.core`` or
``repro.pipeline``; it sits beside :mod:`repro.llm` so the pipeline can pick
engines through configuration without an import cycle.
"""

from repro.engines.base import Engine
from repro.engines.faults import (
    FakeClock,
    FlakyTransport,
    ScriptedTransport,
    SimulatedBackendTransport,
)
from repro.engines.http import (
    BATCH_ANSWERS_SCHEMA,
    AnthropicEngine,
    HttpEngine,
    OpenAICompatibleEngine,
    OpenAIEngine,
    render_structured_answers,
)
from repro.engines.registry import (
    DEFAULT_ENGINE,
    AnthropicEngineConfig,
    EngineConfig,
    HttpEngineConfig,
    OpenAICompatibleEngineConfig,
    OpenAIEngineConfig,
    SimulatedEngineConfig,
    available_engines,
    create_engine,
    engine_config_from_env,
    engine_from_env,
    register_engine,
)
from repro.engines.simulated import SimulatedEngine
from repro.engines.transport import (
    Clock,
    RateLimiter,
    RetryableTransportError,
    RetryingTransport,
    RetryPolicy,
    TerminalTransportError,
    TokenBucket,
    Transport,
    TransportError,
    TransportRequest,
    TransportResponse,
    UrllibTransport,
)

__all__ = [
    "AnthropicEngine",
    "AnthropicEngineConfig",
    "BATCH_ANSWERS_SCHEMA",
    "Clock",
    "DEFAULT_ENGINE",
    "Engine",
    "EngineConfig",
    "FakeClock",
    "FlakyTransport",
    "HttpEngine",
    "HttpEngineConfig",
    "OpenAICompatibleEngine",
    "OpenAICompatibleEngineConfig",
    "OpenAIEngine",
    "OpenAIEngineConfig",
    "RateLimiter",
    "RetryPolicy",
    "RetryableTransportError",
    "RetryingTransport",
    "ScriptedTransport",
    "SimulatedBackendTransport",
    "SimulatedEngine",
    "SimulatedEngineConfig",
    "TerminalTransportError",
    "TokenBucket",
    "Transport",
    "TransportError",
    "TransportRequest",
    "TransportResponse",
    "UrllibTransport",
    "available_engines",
    "create_engine",
    "engine_config_from_env",
    "engine_from_env",
    "register_engine",
    "render_structured_answers",
]
