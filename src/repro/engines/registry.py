"""Config-dataclass registry of LLM engines.

Every backend is described by a frozen config dataclass and registered under
a short name; :func:`create_engine` turns either the name (plus field
overrides) or a ready config into a live :class:`~repro.engines.base.Engine`.
The registry ships four backends:

========================  =====================================================
``simulated``             the hermetic behavioural model (tier-1's backend)
``openai``                OpenAI chat completions (``OPENAI_API_KEY``)
``openai_compatible``     any OpenAI-compatible server via ``base_url``
                          (vLLM, llama.cpp, LM Studio, ...)
``anthropic``             Anthropic messages API (``ANTHROPIC_API_KEY``)
========================  =====================================================

:func:`engine_config_from_env` resolves the whole selection from environment
variables (``REPRO_ENGINE`` picks the backend; ``REPRO_ENGINE_BASE_URL``,
``REPRO_ENGINE_MODEL``, ``REPRO_ENGINE_RPS``, ``REPRO_ENGINE_TPM``, ... tune
it), so a deployment swaps providers without touching code — the pattern the
related repos use for their env-switched multi-provider wrappers.

Model naming: the framework keeps reasoning in the paper's *logical* model
names (``gpt-3.5-03``, ``gpt-4``, ...), which drive profiles and the pricing
table.  HTTP configs carry a separate ``provider_model`` — the identifier the
provider's API expects — defaulting through a small translation table, so
cost accounting stays comparable across backends while the wire speaks each
provider's dialect.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Callable, Mapping

from repro.engines.base import Engine
from repro.engines.transport import Clock, RetryPolicy, Transport
from repro.llm.profiles import available_models
from repro.resilience.breaker import CircuitBreaker

__all__ = [
    "AnthropicEngineConfig",
    "DEFAULT_ENGINE",
    "EngineConfig",
    "HttpEngineConfig",
    "OpenAICompatibleEngineConfig",
    "OpenAIEngineConfig",
    "SimulatedEngineConfig",
    "available_engines",
    "create_engine",
    "engine_config_from_env",
    "engine_from_env",
    "register_engine",
]

#: Engine used when nothing is configured — the hermetic simulated backend.
DEFAULT_ENGINE = "simulated"

#: Logical model name -> OpenAI API model identifier.
OPENAI_MODEL_ALIASES: dict[str, str] = {
    "gpt-3.5-03": "gpt-3.5-turbo-0301",
    "gpt-3.5-06": "gpt-3.5-turbo-0613",
    "gpt-4": "gpt-4",
}

#: Logical model name -> Anthropic API model identifier.  The paper's models
#: have no Anthropic equivalents; these are capability-tier stand-ins.
ANTHROPIC_MODEL_ALIASES: dict[str, str] = {
    "gpt-3.5-03": "claude-3-5-haiku-latest",
    "gpt-3.5-06": "claude-3-5-haiku-latest",
    "gpt-4": "claude-sonnet-4-20250514",
}


@dataclass(frozen=True)
class EngineConfig:
    """Fields shared by every engine backend.

    Attributes:
        model: *logical* model name (one of the registered profiles); drives
            pricing and, for the simulated backend, the behavioural profile.
        seed: determinism seed (simulated generation; forwarded to providers
            that accept one).
        temperature: sampling temperature.
    """

    model: str = "gpt-3.5-03"
    seed: int = 0
    temperature: float = 0.01


@dataclass(frozen=True)
class SimulatedEngineConfig(EngineConfig):
    """Configuration of the hermetic simulated backend.

    Attributes:
        latency_seconds: synthetic per-call latency (benchmarking only).
    """

    latency_seconds: float = 0.0


@dataclass(frozen=True)
class HttpEngineConfig(EngineConfig):
    """Fields shared by the HTTP-backed engines.

    Attributes:
        api_key: explicit API key; when ``None`` the key is read from the
            ``api_key_env`` environment variable at request time.
        api_key_env: environment variable holding the API key.
        base_url: API root (override for proxies and local servers).
        provider_model: model identifier sent on the wire; ``None`` resolves
            through the backend's alias table, falling back to ``model``.
        max_output_tokens: completion-length cap sent to the provider.
        timeout_seconds: per-request socket timeout.
        max_attempts / backoff_*: retry schedule
            (see :class:`~repro.engines.transport.RetryPolicy`).
        requests_per_second / tokens_per_minute: token-bucket rate caps
            (``None`` disables the respective bucket).
        json_schema_mode: request provider-enforced structured output for
            batch answers and render it into the canonical ``A<i>: Yes/No``
            text — the regex parser stays the oracle over the rendered form.
    """

    api_key: str | None = None
    api_key_env: str = "OPENAI_API_KEY"
    base_url: str = "https://api.openai.com/v1"
    provider_model: str | None = None
    max_output_tokens: int = 1024
    timeout_seconds: float = 60.0
    max_attempts: int = 5
    backoff_base_seconds: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 30.0
    backoff_jitter: float = 0.25
    requests_per_second: float | None = None
    tokens_per_minute: float | None = None
    json_schema_mode: bool = False

    def retry_policy(self) -> RetryPolicy:
        """The transport retry schedule these fields describe."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.backoff_base_seconds,
            multiplier=self.backoff_multiplier,
            max_delay=self.backoff_max_seconds,
            jitter=self.backoff_jitter,
        )

    def resolve_api_key(self, env: Mapping[str, str] | None = None) -> str | None:
        """The explicit key, or the one in ``api_key_env`` (``None`` if unset)."""
        if self.api_key is not None:
            return self.api_key
        return (env if env is not None else os.environ).get(self.api_key_env)


@dataclass(frozen=True)
class OpenAIEngineConfig(HttpEngineConfig):
    """OpenAI chat-completions backend configuration."""


@dataclass(frozen=True)
class OpenAICompatibleEngineConfig(HttpEngineConfig):
    """Any OpenAI-compatible server (vLLM, llama.cpp, LM Studio, proxies).

    The key is optional — local servers usually accept any bearer token —
    and ``base_url`` points at the local endpoint by default.
    """

    base_url: str = "http://localhost:8000/v1"


@dataclass(frozen=True)
class AnthropicEngineConfig(HttpEngineConfig):
    """Anthropic messages-API backend configuration."""

    api_key_env: str = "ANTHROPIC_API_KEY"
    base_url: str = "https://api.anthropic.com"


#: Factory signature: build a live engine from its config.  ``transport`` and
#: ``clock`` are injection points for tests and hermetic benchmarks.
EngineFactory = Callable[..., Engine]


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry: name, config dataclass and factory."""

    name: str
    config_cls: type[EngineConfig]
    factory: EngineFactory


def _simulated_factory(
    config: EngineConfig,
    *,
    transport: Transport | None = None,
    clock: Clock | None = None,
    breaker: "CircuitBreaker | None" = None,
) -> Engine:
    from repro.engines.simulated import SimulatedEngine

    if transport is not None:
        raise ValueError("the simulated engine has no transport to inject")
    if breaker is not None:
        raise ValueError("the simulated engine has no transport to gate")
    key = config.model.strip().lower()
    if key not in available_models():
        known = ", ".join(available_models())
        raise ValueError(f"unknown model {config.model!r}; expected one of: {known}")
    latency = config.latency_seconds if isinstance(config, SimulatedEngineConfig) else 0.0
    return SimulatedEngine(
        model_name=key,
        seed=config.seed,
        temperature=config.temperature,
        latency_seconds=latency,
    )


def _http_factory(engine_attr: str) -> EngineFactory:
    def factory(
        config: EngineConfig,
        *,
        transport: Transport | None = None,
        clock: Clock | None = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> Engine:
        from repro.engines import http

        engine_cls = getattr(http, engine_attr)
        return engine_cls(config, transport=transport, clock=clock, breaker=breaker)

    return factory


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    config_cls: type[EngineConfig],
    factory: EngineFactory,
    replace_existing: bool = False,
) -> None:
    """Register (or, explicitly, replace) an engine backend.

    Raises:
        ValueError: when ``name`` is taken and ``replace_existing`` is false.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("engine name must be non-empty")
    if key in _REGISTRY and not replace_existing:
        raise ValueError(f"engine {name!r} is already registered")
    _REGISTRY[key] = EngineSpec(name=key, config_cls=config_cls, factory=factory)


register_engine("simulated", SimulatedEngineConfig, _simulated_factory)
register_engine("openai", OpenAIEngineConfig, _http_factory("OpenAIEngine"))
register_engine(
    "openai_compatible",
    OpenAICompatibleEngineConfig,
    _http_factory("OpenAICompatibleEngine"),
)
register_engine("anthropic", AnthropicEngineConfig, _http_factory("AnthropicEngine"))


def available_engines() -> tuple[str, ...]:
    """Names of all registered engine backends, sorted."""
    return tuple(sorted(_REGISTRY))


def get_engine_spec(name: str) -> EngineSpec:
    """Look up a registry entry.

    Raises:
        ValueError: for unknown engine names (same error type as the model
            checks in :func:`repro.llm.registry.create_llm` and
            :class:`~repro.core.config.BatcherConfig`, so misconfiguration
            fails uniformly).
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        known = ", ".join(available_engines())
        raise ValueError(f"unknown engine {name!r}; expected one of: {known}")
    return _REGISTRY[key]


def _spec_for_config(config: EngineConfig) -> EngineSpec:
    for spec in _REGISTRY.values():
        if type(config) is spec.config_cls:
            return spec
    raise ValueError(
        f"no engine registered for config type {type(config).__name__!r}"
    )


def build_config(engine: str, **overrides: object) -> EngineConfig:
    """Build an engine's config dataclass with field overrides.

    Raises:
        ValueError: for unknown engines or override fields.
    """
    spec = get_engine_spec(engine)
    known = {config_field.name for config_field in fields(spec.config_cls)}
    unknown = set(overrides) - known
    if unknown:
        raise ValueError(
            f"unknown {spec.name!r} engine config fields {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    return spec.config_cls(**overrides)  # type: ignore[arg-type]


def create_engine(
    engine: str | EngineConfig = DEFAULT_ENGINE,
    *,
    transport: Transport | None = None,
    clock: Clock | None = None,
    breaker: "CircuitBreaker | None" = None,
    **overrides: object,
) -> Engine:
    """Build a live engine from a registered name or a ready config.

    Args:
        engine: registry name (``"simulated"``, ``"openai"``, ...) or an
            :class:`EngineConfig` instance (its type selects the backend).
        transport: optional transport injection (HTTP backends only) — the
            hook the scripted/flaky test transports use.
        clock: optional time source for the backend's retry/rate-limit stack.
        breaker: optional per-engine circuit breaker gating the backend
            (HTTP backends only; see :mod:`repro.resilience`).
        **overrides: config field overrides applied on top of the defaults
            (or on top of the given config instance).

    Raises:
        ValueError: for unknown engines, unknown override fields, or an
            unknown logical model on the simulated backend.
    """
    if isinstance(engine, EngineConfig):
        spec = _spec_for_config(engine)
        config = replace(engine, **overrides) if overrides else engine
    else:
        spec = get_engine_spec(engine)
        config = build_config(spec.name, **overrides)
    return spec.factory(config, transport=transport, clock=clock, breaker=breaker)


def engine_config_from_env(
    env: Mapping[str, str] | None = None, **overrides: object
) -> EngineConfig:
    """Resolve the engine configuration from environment variables.

    Recognised variables (all optional):

    * ``REPRO_ENGINE`` — backend name (default ``"simulated"``);
    * ``REPRO_ENGINE_MODEL`` — provider model identifier override;
    * ``REPRO_ENGINE_BASE_URL`` — API root override (local servers, proxies);
    * ``REPRO_ENGINE_RPS`` / ``REPRO_ENGINE_TPM`` — rate caps;
    * ``REPRO_ENGINE_MAX_ATTEMPTS`` — retry budget;
    * ``REPRO_ENGINE_TIMEOUT`` — per-request timeout in seconds;
    * ``REPRO_ENGINE_JSON_SCHEMA`` — ``1``/``true`` enables structured mode.

    API keys are *not* copied into the config: engines read ``api_key_env``
    (``OPENAI_API_KEY`` / ``ANTHROPIC_API_KEY``) at request time, so configs
    stay safe to log and serialize.
    """
    environment = env if env is not None else os.environ
    name = environment.get("REPRO_ENGINE", DEFAULT_ENGINE).strip().lower()
    spec = get_engine_spec(name)
    resolved: dict[str, object] = {}
    if issubclass(spec.config_cls, HttpEngineConfig):
        if environment.get("REPRO_ENGINE_MODEL"):
            resolved["provider_model"] = environment["REPRO_ENGINE_MODEL"]
        if environment.get("REPRO_ENGINE_BASE_URL"):
            resolved["base_url"] = environment["REPRO_ENGINE_BASE_URL"]
        if environment.get("REPRO_ENGINE_RPS"):
            resolved["requests_per_second"] = float(environment["REPRO_ENGINE_RPS"])
        if environment.get("REPRO_ENGINE_TPM"):
            resolved["tokens_per_minute"] = float(environment["REPRO_ENGINE_TPM"])
        if environment.get("REPRO_ENGINE_MAX_ATTEMPTS"):
            resolved["max_attempts"] = int(environment["REPRO_ENGINE_MAX_ATTEMPTS"])
        if environment.get("REPRO_ENGINE_TIMEOUT"):
            resolved["timeout_seconds"] = float(environment["REPRO_ENGINE_TIMEOUT"])
        if environment.get("REPRO_ENGINE_JSON_SCHEMA"):
            resolved["json_schema_mode"] = environment[
                "REPRO_ENGINE_JSON_SCHEMA"
            ].strip().lower() in ("1", "true", "yes", "on")
    resolved.update(overrides)
    return build_config(name, **resolved)


def engine_from_env(
    env: Mapping[str, str] | None = None, **overrides: object
) -> Engine:
    """Build the engine the environment selects (see
    :func:`engine_config_from_env`)."""
    return create_engine(engine_config_from_env(env, **overrides))
