"""HTTP-backed engines: OpenAI, OpenAI-compatible servers, Anthropic.

Each engine owns only its provider dialect — endpoint path, payload shape,
auth header, response/usage parsing — and delegates every operational concern
(retry with backoff, rate limiting, counters) to the shared
:class:`~repro.engines.transport.RetryingTransport` stack.  Token usage is
recorded once per successful round trip from the *provider's* usage payload
(falling back to the approximate tokenizer when a server omits it), so
retries structurally cannot double-count in the
:class:`~repro.llm.base.UsageTracker` and the existing pricing table keeps
working off the logical model name.

Structured output: with ``json_schema_mode`` the engine asks the provider to
emit JSON conforming to :data:`BATCH_ANSWERS_SCHEMA` (OpenAI: a
``response_format`` JSON schema; Anthropic: forced tool use) and
:func:`render_structured_answers` converts the document into the canonical
``A<i>: Yes/No`` lines — the existing regex parser remains the oracle over
the rendered text, so structured mode changes reliability, never semantics.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import ClassVar, Mapping

from repro.engines.base import Engine
from repro.engines.registry import (
    ANTHROPIC_MODEL_ALIASES,
    OPENAI_MODEL_ALIASES,
    HttpEngineConfig,
)
from repro.engines.transport import (
    Clock,
    RateLimiter,
    RetryableTransportError,
    RetryingTransport,
    Transport,
    TransportRequest,
    UrllibTransport,
)
from repro.resilience.breaker import CircuitBreaker
from repro.llm.base import LLMResponse, UsageRecord
from repro.llm.profiles import available_models

__all__ = [
    "AnthropicEngine",
    "BATCH_ANSWERS_SCHEMA",
    "HttpEngine",
    "OpenAICompatibleEngine",
    "OpenAIEngine",
    "render_structured_answers",
]

#: JSON schema of a structured batch-answer document: one entry per question,
#: mirroring the ``A<i>: Yes/No`` lines the text protocol asks for.
BATCH_ANSWERS_SCHEMA: Mapping[str, object] = {
    "type": "object",
    "properties": {
        "answers": {
            "type": "array",
            "items": {
                "type": "object",
                "properties": {
                    "index": {
                        "type": "integer",
                        "minimum": 1,
                        "description": "1-based question number",
                    },
                    "match": {
                        "type": "boolean",
                        "description": "whether the two entities match",
                    },
                },
                "required": ["index", "match"],
                "additionalProperties": False,
            },
        }
    },
    "required": ["answers"],
    "additionalProperties": False,
}


def render_structured_answers(document_text: str) -> str:
    """Render a :data:`BATCH_ANSWERS_SCHEMA` JSON document as answer lines.

    ``{"answers": [{"index": 1, "match": true}, ...]}`` becomes the canonical
    ``A1: Yes`` / ``A2: No`` lines, which both the batch and the standard
    answer parsers already understand — keeping the regex parser the single
    oracle for what an answer *means*.

    Raises:
        ValueError: when the document is not valid JSON of the expected shape
            (callers surface this as an unanswered question, same as any
            unparseable completion).
    """
    try:
        document = json.loads(document_text)
    except json.JSONDecodeError as error:
        raise ValueError(f"structured answers are not valid JSON: {error}") from error
    if not isinstance(document, Mapping) or not isinstance(
        document.get("answers"), list
    ):
        raise ValueError(
            f"structured answers missing 'answers' list: {document_text[:200]!r}"
        )
    lines: list[str] = []
    for entry in document["answers"]:
        if (
            not isinstance(entry, Mapping)
            or not isinstance(entry.get("index"), int)
            or not isinstance(entry.get("match"), bool)
        ):
            raise ValueError(f"malformed structured answer entry: {entry!r}")
        lines.append(f"A{entry['index']}: {'Yes' if entry['match'] else 'No'}")
    return "\n".join(lines)


class HttpEngine(Engine):
    """Shared plumbing of the HTTP-backed engines.

    Subclasses define the provider dialect through :meth:`build_request` and
    :meth:`parse_response` plus the class-level alias table and auth
    requirements; everything else — transport stack assembly, usage
    accounting, structured-mode rendering — lives here.

    Args:
        config: the engine's :class:`~repro.engines.registry.HttpEngineConfig`
            (or subclass).
        transport: inner transport override — the injection point for the
            scripted/flaky/simulated-backend test transports.  The retry and
            rate-limit stack wraps whatever is injected.
        clock: time source for backoff and rate-limit waits.
        breaker: optional per-engine circuit breaker threaded into the
            retry stack (see :mod:`repro.resilience`).
    """

    requires_network: ClassVar[bool] = True
    #: Logical model name -> provider model identifier.
    model_aliases: ClassVar[Mapping[str, str]] = {}
    #: Whether a missing API key is a configuration error.
    api_key_required: ClassVar[bool] = True

    def __init__(
        self,
        config: HttpEngineConfig,
        transport: Transport | None = None,
        clock: Clock | None = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> None:
        key = config.model.strip().lower()
        if key not in available_models():
            known = ", ".join(available_models())
            raise ValueError(f"unknown model {config.model!r}; expected one of: {known}")
        super().__init__(model_name=key)
        self.config = config
        self._clock = clock or Clock()
        limiter = (
            RateLimiter(
                requests_per_second=config.requests_per_second,
                tokens_per_minute=config.tokens_per_minute,
                clock=self._clock,
            )
            if config.requests_per_second is not None
            or config.tokens_per_minute is not None
            else None
        )
        self.transport = RetryingTransport(
            inner=transport or UrllibTransport(timeout=config.timeout_seconds),
            policy=config.retry_policy(),
            limiter=limiter,
            clock=self._clock,
            seed=config.seed,
            breaker=breaker,
        )

    @property
    def provider_model(self) -> str:
        """The model identifier sent on the wire.

        An explicit ``provider_model`` wins; otherwise the logical name is
        translated through the backend's alias table, falling back to the
        logical name itself (the right default for self-hosted servers that
        name models freely).
        """
        if self.config.provider_model is not None:
            return self.config.provider_model
        return self.model_aliases.get(self.model_name, self.model_name)

    def _api_key(self) -> str | None:
        key = self.config.resolve_api_key()
        if key is None and self.api_key_required:
            raise RuntimeError(
                f"engine {self.engine_name!r} needs an API key: set "
                f"{self.config.api_key_env} or pass api_key in the engine config"
            )
        return key

    def build_request(
        self, prompt_text: str, schema: Mapping[str, object] | None = None
    ) -> TransportRequest:
        """Assemble the provider-dialect request for one completion."""
        raise NotImplementedError

    def parse_response(
        self, payload: Mapping[str, object]
    ) -> tuple[str, int | None, int | None]:
        """Extract ``(text, prompt_tokens, completion_tokens)`` from a response.

        Token counts are ``None`` when the provider omitted them; the caller
        falls back to the approximate tokenizer.
        """
        raise NotImplementedError

    def _estimated_tokens(self, prompt_text: str) -> int:
        return self.tokenizer.count(prompt_text) + self.config.max_output_tokens

    def _send(
        self, prompt_text: str, schema: Mapping[str, object] | None = None
    ) -> tuple[str, int | None, int | None]:
        request = self.build_request(prompt_text, schema)
        response = self.transport.send(request)
        return self.parse_response(response.payload)

    def _generate(self, prompt_text: str) -> str:
        text, _, _ = self._send(prompt_text)
        return text

    def _record(
        self, prompt_text: str, text: str, prompt_tokens: int | None, completion_tokens: int | None
    ) -> LLMResponse:
        if prompt_tokens is None:
            prompt_tokens = self.tokenizer.count(prompt_text)
        if completion_tokens is None:
            completion_tokens = self.tokenizer.count(text)
        self.usage.add(
            UsageRecord(
                model=self.model_name,
                prompt_tokens=prompt_tokens,
                completion_tokens=completion_tokens,
            )
        )
        return LLMResponse(
            text=text,
            model=self.model_name,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
        )

    def complete(self, prompt_text: str) -> LLMResponse:
        """One completion, with usage recorded from the provider's counts.

        Usage is recorded exactly once per *successful* round trip — retries
        happen below this method, inside the transport — so a flaky network
        can never inflate the cost accounting.  In ``json_schema_mode`` the
        provider's JSON document is rendered into canonical answer lines
        before being returned, making structured mode transparent to every
        downstream parser.
        """
        schema = (
            BATCH_ANSWERS_SCHEMA
            if self.config.json_schema_mode and self.supports_json_schema
            else None
        )
        started = time.perf_counter()
        text, prompt_tokens, completion_tokens = self._send(prompt_text, schema)
        response = self._record(prompt_text, text, prompt_tokens, completion_tokens)
        if schema is not None:
            response = replace(response, text=render_structured_answers(response.text))
        if self._completion_observers:
            self._notify_completion(response, time.perf_counter() - started)
        return response

    def structured_complete(
        self, prompt_text: str, schema: Mapping[str, object]
    ) -> LLMResponse:
        """Complete with provider-enforced JSON output (the raw document)."""
        if not self.supports_json_schema:
            return super().structured_complete(prompt_text, schema)
        text, prompt_tokens, completion_tokens = self._send(prompt_text, schema)
        return self._record(prompt_text, text, prompt_tokens, completion_tokens)

    def describe(self) -> dict[str, object]:
        snapshot = super().describe()
        snapshot["provider_model"] = self.provider_model
        snapshot["base_url"] = self.config.base_url
        snapshot["json_schema_mode"] = self.config.json_schema_mode
        snapshot["transport"] = self.transport.stats()
        return snapshot


class OpenAIEngine(HttpEngine):
    """OpenAI chat-completions backend (``/v1/chat/completions``)."""

    engine_name: ClassVar[str] = "openai"
    supports_json_schema: ClassVar[bool] = True
    model_aliases: ClassVar[Mapping[str, str]] = OPENAI_MODEL_ALIASES

    def build_request(
        self, prompt_text: str, schema: Mapping[str, object] | None = None
    ) -> TransportRequest:
        payload: dict[str, object] = {
            "model": self.provider_model,
            "messages": [{"role": "user", "content": prompt_text}],
            "temperature": self.config.temperature,
            "max_tokens": self.config.max_output_tokens,
            "seed": self.config.seed,
        }
        if schema is not None:
            payload["response_format"] = {
                "type": "json_schema",
                "json_schema": {
                    "name": "batch_answers",
                    "schema": dict(schema),
                    "strict": True,
                },
            }
        headers: dict[str, str] = {}
        api_key = self._api_key()
        if api_key is not None:
            headers["Authorization"] = f"Bearer {api_key}"
        return TransportRequest(
            url=f"{self.config.base_url.rstrip('/')}/chat/completions",
            payload=payload,
            headers=headers,
            estimated_tokens=self._estimated_tokens(prompt_text),
        )

    def parse_response(
        self, payload: Mapping[str, object]
    ) -> tuple[str, int | None, int | None]:
        try:
            choices = payload["choices"]
            message = choices[0]["message"]  # type: ignore[index]
            text = message["content"]  # type: ignore[index]
            if not isinstance(text, str):
                raise TypeError(f"content is {type(text).__name__}, not str")
        except (KeyError, IndexError, TypeError) as error:
            raise RetryableTransportError(
                f"malformed chat completion payload: {error}"
            ) from error
        usage = payload.get("usage")
        prompt_tokens = completion_tokens = None
        if isinstance(usage, Mapping):
            if isinstance(usage.get("prompt_tokens"), int):
                prompt_tokens = usage["prompt_tokens"]
            if isinstance(usage.get("completion_tokens"), int):
                completion_tokens = usage["completion_tokens"]
        return text, prompt_tokens, completion_tokens


class OpenAICompatibleEngine(OpenAIEngine):
    """Any server speaking the OpenAI chat dialect (vLLM, llama.cpp, ...).

    Identical wire protocol; differences are policy: the API key is optional
    (local servers rarely check it), there is no alias table (self-hosted
    model names are free-form, so the logical name passes through unless
    ``provider_model`` overrides it), and structured output is not assumed —
    many compatible servers reject ``response_format`` JSON schemas.
    """

    engine_name: ClassVar[str] = "openai_compatible"
    supports_json_schema: ClassVar[bool] = False
    model_aliases: ClassVar[Mapping[str, str]] = {}
    api_key_required: ClassVar[bool] = False


class AnthropicEngine(HttpEngine):
    """Anthropic messages-API backend (``/v1/messages``).

    Structured output uses forced tool choice: the schema is exposed as the
    input of a single ``record_batch_answers`` tool the model must call, and
    the tool input is returned as the JSON document.
    """

    engine_name: ClassVar[str] = "anthropic"
    supports_json_schema: ClassVar[bool] = True
    model_aliases: ClassVar[Mapping[str, str]] = ANTHROPIC_MODEL_ALIASES

    _API_VERSION: ClassVar[str] = "2023-06-01"
    _TOOL_NAME: ClassVar[str] = "record_batch_answers"

    def build_request(
        self, prompt_text: str, schema: Mapping[str, object] | None = None
    ) -> TransportRequest:
        payload: dict[str, object] = {
            "model": self.provider_model,
            "max_tokens": self.config.max_output_tokens,
            "temperature": self.config.temperature,
            "messages": [{"role": "user", "content": prompt_text}],
        }
        if schema is not None:
            payload["tools"] = [
                {
                    "name": self._TOOL_NAME,
                    "description": "Record the match/non-match answer for every question.",
                    "input_schema": dict(schema),
                }
            ]
            payload["tool_choice"] = {"type": "tool", "name": self._TOOL_NAME}
        headers = {"anthropic-version": self._API_VERSION}
        api_key = self._api_key()
        if api_key is not None:
            headers["x-api-key"] = api_key
        return TransportRequest(
            url=f"{self.config.base_url.rstrip('/')}/v1/messages",
            payload=payload,
            headers=headers,
            estimated_tokens=self._estimated_tokens(prompt_text),
        )

    def parse_response(
        self, payload: Mapping[str, object]
    ) -> tuple[str, int | None, int | None]:
        content = payload.get("content")
        if not isinstance(content, list):
            raise RetryableTransportError(
                f"malformed messages payload: content is {type(content).__name__}"
            )
        text_parts: list[str] = []
        tool_input: object | None = None
        for block in content:
            if not isinstance(block, Mapping):
                continue
            if block.get("type") == "text" and isinstance(block.get("text"), str):
                text_parts.append(str(block["text"]))
            elif block.get("type") == "tool_use" and block.get("name") == self._TOOL_NAME:
                tool_input = block.get("input")
        if tool_input is not None:
            text = json.dumps(tool_input)
        elif text_parts:
            text = "\n".join(text_parts)
        else:
            raise RetryableTransportError("messages payload has no text or tool content")
        usage = payload.get("usage")
        prompt_tokens = completion_tokens = None
        if isinstance(usage, Mapping):
            if isinstance(usage.get("input_tokens"), int):
                prompt_tokens = usage["input_tokens"]
            if isinstance(usage.get("output_tokens"), int):
                completion_tokens = usage["output_tokens"]
        return text, prompt_tokens, completion_tokens
