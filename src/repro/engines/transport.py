"""Shared HTTP transport substrate for the real-LLM engines.

Every HTTP-backed engine sends requests through the same small stack:

``engine → RetryingTransport → (rate limiter, backoff) → inner Transport``

The split keeps the provider-specific parts (URL, payload shape, response
parsing) in the engines and everything operational — retry classification,
exponential backoff with jitter, token-bucket rate limiting, counters — in
one place, where it can be tested hermetically against scripted transports
and a fake clock (:mod:`repro.engines.faults`).

Error classification follows the providers' documented semantics: 429 and
5xx responses (and timeouts / connection drops) are *retryable*; any other
4xx is *terminal* — retrying a malformed request or a bad API key only burns
the rate budget.  Time is always read through an injectable clock, so the
retry and rate-limit logic runs instantly and deterministically under test.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.deadline import DeadlineExceeded, current_deadline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracing import Tracer

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Clock",
    "DeadlineExceeded",
    "RateLimiter",
    "RetryPolicy",
    "RetryingTransport",
    "RetryableTransportError",
    "TerminalTransportError",
    "TokenBucket",
    "Transport",
    "TransportError",
    "TransportRequest",
    "TransportResponse",
    "UrllibTransport",
    "error_for_status",
    "is_retryable_status",
    "retry_reason",
]

#: 4xx statuses that are worth retrying despite being client errors:
#: 408 (request timeout), 409 (conflict, used by some gateways for transient
#: contention) and 429 (rate limited).
_RETRYABLE_4XX = frozenset({408, 409, 429})


class Clock:
    """Injectable time source: ``monotonic`` + ``sleep``.

    The default implementation delegates to :mod:`time`; tests substitute
    :class:`repro.engines.faults.FakeClock` so backoff and rate-limit waits
    advance virtual time instead of blocking.
    """

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op for non-positive values)."""
        if seconds > 0:
            time.sleep(seconds)


class TransportError(RuntimeError):
    """A failed transport send.

    Attributes:
        status: HTTP status code when the failure came from a response
            (``None`` for connection-level failures).
        retryable: whether the retry layer may attempt the request again.
        reason: optional explicit retry-reason label (e.g. ``"timeout"``);
            when ``None``, :func:`retry_reason` derives one from ``status``.
    """

    retryable: bool = False

    def __init__(
        self, message: str, status: int | None = None, reason: str | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


class RetryableTransportError(TransportError):
    """A transient failure (429 / 5xx / timeout): safe to retry with backoff."""

    retryable = True


class TerminalTransportError(TransportError):
    """A permanent failure (other 4xx): retrying cannot succeed."""

    retryable = False


def is_retryable_status(status: int) -> bool:
    """Whether an HTTP status code denotes a transient failure."""
    return status >= 500 or status in _RETRYABLE_4XX


def error_for_status(status: int, message: str) -> TransportError:
    """Build the classified :class:`TransportError` for a failure status."""
    if is_retryable_status(status):
        return RetryableTransportError(message, status=status)
    return TerminalTransportError(message, status=status)


@dataclass(frozen=True)
class TransportRequest:
    """One JSON-over-HTTP request an engine wants delivered.

    Attributes:
        url: absolute endpoint URL.
        payload: JSON body (serialized by the transport).
        headers: HTTP headers, including authentication.
        estimated_tokens: the engine's token estimate for this call, used by
            the tokens-per-minute bucket of the rate limiter (0 = skip the
            token bucket for this request).
    """

    url: str
    payload: Mapping[str, object]
    headers: Mapping[str, str] = field(default_factory=dict)
    estimated_tokens: int = 0


@dataclass(frozen=True)
class TransportResponse:
    """A successful (2xx) transport response with its decoded JSON payload."""

    status: int
    payload: Mapping[str, object]


class Transport(ABC):
    """Delivers one request and returns the decoded response.

    Implementations raise a classified :class:`TransportError` on failure —
    never a bare urllib/socket exception — so the retry layer can decide
    whether to try again without knowing how the bytes moved.
    """

    @abstractmethod
    def send(self, request: TransportRequest) -> TransportResponse:
        """Deliver ``request``; raise :class:`TransportError` on failure."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class UrllibTransport(Transport):
    """Real HTTP delivery over :mod:`urllib` (stdlib only, no extra deps).

    Args:
        timeout: per-request socket timeout in seconds; timeouts surface as
            :class:`RetryableTransportError`.
    """

    def __init__(self, timeout: float = 60.0) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout

    def send(self, request: TransportRequest) -> TransportResponse:
        import urllib.error
        import urllib.request

        body = json.dumps(dict(request.payload)).encode("utf-8")
        headers = {"Content-Type": "application/json", **request.headers}
        http_request = urllib.request.Request(
            request.url, data=body, headers=headers, method="POST"
        )
        try:
            with urllib.request.urlopen(http_request, timeout=self.timeout) as response:
                raw = response.read().decode("utf-8")
                status = response.status
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = error.read().decode("utf-8", errors="replace")[:200]
            except Exception:  # noqa: BLE001 - diagnostics only
                pass
            raise error_for_status(
                error.code, f"HTTP {error.code} from {request.url}: {detail}"
            ) from error
        except (urllib.error.URLError, TimeoutError, OSError) as error:
            # socket.timeout is a TimeoutError alias since 3.10, but urllib
            # often wraps it inside URLError.reason — unwrap so a stalled
            # backend is labeled "timeout" (deadline/stall territory) rather
            # than blending into the generic "connection" family.
            cause = getattr(error, "reason", error)
            if isinstance(cause, (TimeoutError, socket.timeout)):
                raise RetryableTransportError(
                    f"timeout after {self.timeout}s talking to {request.url}: {error}",
                    reason="timeout",
                ) from error
            raise RetryableTransportError(
                f"connection failure to {request.url}: {error}"
            ) from error
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise RetryableTransportError(
                f"non-JSON response from {request.url}: {raw[:200]!r}"
            ) from error
        return TransportResponse(status=status, payload=payload)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with symmetric jitter.

    Attributes:
        max_attempts: total send attempts (first try included); must be >= 1.
        base_delay: delay before the first retry, in seconds.
        multiplier: per-retry delay growth factor.
        max_delay: ceiling on a single delay, in seconds.
        jitter: relative jitter amplitude in ``[0, 1]`` — the delay is scaled
            by a uniform factor in ``[1 - jitter, 1 + jitter]`` so that a
            fleet of workers rate-limited at the same instant does not retry
            in lockstep.
    """

    max_attempts: int = 5
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Delay before the ``retry_index``-th retry (0-based), jittered."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


class TokenBucket:
    """Classic token-bucket limiter with an injectable clock.

    The bucket refills continuously at ``rate`` units per second up to
    ``capacity``.  :meth:`reserve` debits the bucket immediately and returns
    how long the caller must wait before proceeding — debiting first (the
    balance may go negative) means concurrent reservers are serialized
    fairly: each sees the debt left by the previous one.

    Args:
        rate: refill rate in units per second (> 0).
        capacity: maximum stored units (>= the largest single reservation
            that should pass without waiting).
        clock: time source (defaults to the system clock).
    """

    def __init__(self, rate: float, capacity: float, clock: Clock | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock or Clock()
        self._lock = threading.Lock()
        self._level = capacity
        self._updated_at = self._clock.monotonic()

    def reserve(self, amount: float) -> float:
        """Debit ``amount`` units; return seconds to wait before proceeding."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        if amount == 0:
            return 0.0
        with self._lock:
            now = self._clock.monotonic()
            self._level = min(
                self.capacity, self._level + (now - self._updated_at) * self.rate
            )
            self._updated_at = now
            self._level -= amount
            if self._level >= 0:
                return 0.0
            return -self._level / self.rate

    def try_reserve(self, amount: float) -> float:
        """Debit ``amount`` only if the bucket can afford it right now.

        Returns ``0.0`` on success (the units were debited) or the seconds
        until the reservation would be affordable (nothing debited).  Unlike
        :meth:`reserve`, a refusal leaves the bucket untouched, which is the
        admission-control contract: a rejected request must not push the
        bucket into debt and penalize later, well-behaved callers.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        if amount == 0:
            return 0.0
        with self._lock:
            now = self._clock.monotonic()
            self._level = min(
                self.capacity, self._level + (now - self._updated_at) * self.rate
            )
            self._updated_at = now
            if self._level >= amount:
                self._level -= amount
                return 0.0
            return (amount - self._level) / self.rate

    @property
    def level(self) -> float:
        """Current (possibly negative) stored units, without refilling."""
        with self._lock:
            return self._level


class RateLimiter:
    """Combined requests-per-second and tokens-per-minute throttle.

    Args:
        requests_per_second: request-rate cap (``None`` disables the bucket).
        tokens_per_minute: token-rate cap (``None`` disables the bucket);
            compared against :attr:`TransportRequest.estimated_tokens`.
        clock: time source shared by both buckets; waits go through
            ``clock.sleep`` so a fake clock makes throttling instantaneous.
        burst_seconds: bucket capacity expressed in seconds of rate — e.g.
            2.0 lets two seconds' worth of requests go through back to back
            before throttling kicks in.
    """

    def __init__(
        self,
        requests_per_second: float | None = None,
        tokens_per_minute: float | None = None,
        clock: Clock | None = None,
        burst_seconds: float = 1.0,
    ) -> None:
        if burst_seconds <= 0:
            raise ValueError(f"burst_seconds must be > 0, got {burst_seconds}")
        self._clock = clock or Clock()
        self._request_bucket = (
            TokenBucket(
                requests_per_second,
                capacity=max(1.0, requests_per_second * burst_seconds),
                clock=self._clock,
            )
            if requests_per_second is not None
            else None
        )
        tokens_per_second = (
            tokens_per_minute / 60.0 if tokens_per_minute is not None else None
        )
        self._token_bucket = (
            TokenBucket(
                tokens_per_second,
                capacity=max(1.0, tokens_per_minute),
                clock=self._clock,
            )
            if tokens_per_second is not None
            else None
        )
        self._lock = threading.Lock()
        self._throttled = 0
        self._waited_seconds = 0.0

    def throttle(self, estimated_tokens: int = 0) -> float:
        """Admit one request, sleeping as required; returns seconds waited."""
        wait = 0.0
        if self._request_bucket is not None:
            wait = max(wait, self._request_bucket.reserve(1.0))
        if self._token_bucket is not None and estimated_tokens > 0:
            wait = max(wait, self._token_bucket.reserve(float(estimated_tokens)))
        if wait > 0:
            with self._lock:
                self._throttled += 1
                self._waited_seconds += wait
            self._clock.sleep(wait)
        return wait

    @property
    def throttled_requests(self) -> int:
        """Requests that had to wait on a bucket."""
        with self._lock:
            return self._throttled

    @property
    def waited_seconds(self) -> float:
        """Cumulative seconds spent waiting on the buckets."""
        with self._lock:
            return self._waited_seconds


def retry_reason(error: TransportError) -> str:
    """Coarse, low-cardinality label for why a send attempt failed.

    Used both as the retry-metric label and as the span tag, so a 429 storm
    is distinguishable from a flapping backend at a glance.
    """
    if error.reason is not None:
        return error.reason
    if error.status is None:
        return "connection"
    if error.status == 429:
        return "429"
    if error.status >= 500:
        return "5xx"
    return str(error.status)


class RetryingTransport(Transport):
    """Bounded-retry wrapper with backoff, jitter and rate limiting.

    The wrapper owns everything operational about a send: it throttles each
    *attempt* through the rate limiter (a retry consumes rate budget too),
    classifies failures via :attr:`TransportError.retryable`, sleeps the
    policy's jittered backoff between attempts, and re-raises terminal
    errors — or the last retryable error once attempts are exhausted —
    unchanged.

    Resilience: when a :class:`~repro.resilience.CircuitBreaker` is attached,
    every attempt first passes through ``breaker.acquire()`` — an open
    breaker fast-fails the whole send with
    :class:`~repro.resilience.CircuitOpenError` *before* any rate budget or
    transport counter is spent — and each attempt's outcome is reported back
    (retryable failures count against the breaker; terminal ones prove the
    backend is alive).  When the ambient
    :func:`~repro.resilience.current_deadline` is set, the ladder refuses to
    start an attempt past the deadline or to sleep a backoff that would
    overshoot it, raising :class:`~repro.resilience.DeadlineExceeded`
    chained to the last transport error.

    Observability: when a tracer is attached, every :meth:`send` opens a
    ``transport:send`` span with one ``transport:attempt`` child per attempt,
    tagged with the attempt ordinal, the rate-limiter wait it paid and — on
    failure — the retry reason.  When a metrics registry is attached, the
    wrapper keeps live ``repro_transport_*`` counters (requests, attempts,
    retries by reason, failures, throttle waits) next to the in-object
    :meth:`stats` counters.

    Args:
        inner: the transport that actually moves bytes.
        policy: retry/backoff schedule.
        limiter: optional rate limiter applied before every attempt.
        clock: time source for backoff sleeps.
        seed: seed of the jitter RNG (deterministic backoff under test).
        tracer: span producer (default: tracing disabled).
        metrics: metrics registry to record transport counters into
            (``None`` = no metrics).
        breaker: optional circuit breaker gating every attempt
            (``None`` = no availability gating).
    """

    def __init__(
        self,
        inner: Transport,
        policy: RetryPolicy | None = None,
        limiter: RateLimiter | None = None,
        clock: Clock | None = None,
        seed: int = 0,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.limiter = limiter
        self.breaker = breaker
        self._clock = clock or Clock()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._requests = 0
        self._attempts = 0
        self._retries = 0
        self._failures = 0
        from repro.observability.tracing import NOOP_TRACER

        self.tracer = NOOP_TRACER
        self._metric_requests = self._metric_attempts = None
        self._metric_retries = self._metric_failures = None
        self._metric_throttled = self._metric_wait = None
        self.bind_observability(tracer=tracer, metrics=metrics)

    def bind_observability(
        self,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        """Attach (or re-attach) a tracer and/or metrics registry.

        Engines build their transport internally, so owners that assemble
        observability later (e.g. the serving layer) bind it here instead of
        reconstructing the transport.  Either argument may be ``None`` to
        leave that side unchanged.
        """
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self._metric_requests = metrics.counter(
                "repro_transport_requests_total", "Logical sends through the transport."
            )
            self._metric_attempts = metrics.counter(
                "repro_transport_attempts_total", "Send attempts (retries included)."
            )
            self._metric_retries = metrics.counter(
                "repro_transport_retries_total",
                "Retried attempts by failure reason.",
                labels=("reason",),
            )
            self._metric_failures = metrics.counter(
                "repro_transport_failures_total", "Sends that ultimately failed."
            )
            self._metric_throttled = metrics.counter(
                "repro_transport_throttled_total",
                "Attempts that waited on the rate limiter.",
            )
            self._metric_wait = metrics.counter(
                "repro_transport_rate_limit_wait_seconds_total",
                "Cumulative seconds attempts spent waiting on the rate limiter.",
            )
            # 429s are the operationally interesting retry reason; make the
            # family's sample exist (at zero) before the first rate-limit hit.
            self._metric_retries.inc(0, reason="429")

    def send(self, request: TransportRequest) -> TransportResponse:
        with self.tracer.span("transport:send") as send_scope:
            if self.tracer.enabled:
                send_scope.set_attribute("url", request.url)
            return self._send_attempts(request)

    def _send_attempts(self, request: TransportRequest) -> TransportResponse:
        last_error: TransportError | None = None
        deadline = current_deadline()
        for attempt in range(self.policy.max_attempts):
            if deadline is not None:
                deadline.check("transport send")
            if self.breaker is not None:
                # An open breaker fast-fails before any rate budget or
                # transport counter is spent; the breaker's own
                # fast-failure counter records the refusal.
                self.breaker.acquire()
            waited = 0.0
            if self.limiter is not None:
                waited = self.limiter.throttle(request.estimated_tokens)
                if waited > 0 and self._metric_throttled is not None:
                    self._metric_throttled.inc()
                    self._metric_wait.inc(waited)
            with self._lock:
                self._attempts += 1
                if attempt == 0:
                    self._requests += 1
            if self._metric_attempts is not None:
                self._metric_attempts.inc()
                if attempt == 0:
                    self._metric_requests.inc()
            with self.tracer.span("transport:attempt") as scope:
                if self.tracer.enabled:
                    scope.set_attribute("attempt", attempt)
                    scope.set_attribute("rate_limit_wait_seconds", waited)
                    if self.breaker is not None:
                        scope.set_attribute("breaker_state", self.breaker.state)
                try:
                    response = self.inner.send(request)
                except TransportError as error:
                    if self.breaker is not None:
                        if error.retryable:
                            self.breaker.record_failure()
                        else:
                            # A terminal 4xx is a *live* backend answering;
                            # it must not push the breaker toward open.
                            self.breaker.record_success()
                    last_error = error
                    reason = retry_reason(error)
                    if self.tracer.enabled:
                        scope.set_attribute("retry_reason", reason)
                        scope.set_attribute("retryable", error.retryable)
                        # A retryable failure is swallowed here, so the span
                        # would otherwise close "ok"; mark it failed up front.
                        scope.span.status = "error"
                    if not error.retryable or attempt == self.policy.max_attempts - 1:
                        with self._lock:
                            self._failures += 1
                        if self._metric_failures is not None:
                            self._metric_failures.inc()
                        raise
                    with self._lock:
                        self._retries += 1
                        delay = self.policy.delay(attempt, self._rng)
                    if self._metric_retries is not None:
                        self._metric_retries.inc(reason=reason)
                else:
                    if self.breaker is not None:
                        self.breaker.record_success()
                    return response
            if deadline is not None and not deadline.allows(delay):
                # Sleeping the backoff would overshoot the budget: fail now,
                # typed, with the transport error as the cause chain.
                with self._lock:
                    self._failures += 1
                if self._metric_failures is not None:
                    self._metric_failures.inc()
                raise DeadlineExceeded(
                    f"backoff of {delay:.3f}s would overshoot the deadline "
                    f"({deadline.remaining():.3f}s remaining) after "
                    f"{attempt + 1} attempts",
                    budget_seconds=deadline.budget_seconds,
                    elapsed_seconds=deadline.elapsed(),
                ) from last_error
            self._clock.sleep(delay)
        raise last_error if last_error is not None else AssertionError("unreachable")

    def stats(self) -> dict[str, object]:
        """Operational counters (JSON-serializable, folded into ``/stats``)."""
        with self._lock:
            stats: dict[str, object] = {
                "requests": self._requests,
                "attempts": self._attempts,
                "retries": self._retries,
                "failures": self._failures,
            }
        if self.limiter is not None:
            stats["throttled_requests"] = self.limiter.throttled_requests
            stats["rate_limit_wait_seconds"] = round(self.limiter.waited_seconds, 6)
        if self.breaker is not None:
            stats["breaker"] = self.breaker.stats()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryingTransport(inner={self.inner!r}, "
            f"max_attempts={self.policy.max_attempts})"
        )
