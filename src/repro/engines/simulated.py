"""The simulated engine: :class:`SimulatedLLM` registered as just another backend.

Registering the behavioural simulation alongside the HTTP backends is what
keeps tier-1 hermetic after the registry lands: ``create_engine("simulated")``
is byte-identical to constructing :class:`~repro.llm.simulated.SimulatedLLM`
directly (it *is* one, by inheritance — generation, seeding and usage
accounting are all inherited unchanged), so every golden test and checkpoint
stays valid while real backends remain one config swap away.
"""

from __future__ import annotations

import time
from typing import ClassVar

from repro.engines.base import Engine
from repro.llm.profiles import ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.text.tokenizer import ApproxTokenizer

__all__ = ["SimulatedEngine"]


class SimulatedEngine(SimulatedLLM, Engine):
    """The offline simulated LLM behind the :class:`Engine` interface.

    Args:
        model_name / seed / temperature / profile / tokenizer: exactly as
            :class:`SimulatedLLM` — an engine built with the same arguments
            generates byte-identical completions.
        latency_seconds: optional synthetic per-call latency, slept inside
            generation.  The dispatch benchmark uses it to model a remote
            API's round-trip so async/concurrent speedups are measurable;
            the default of ``0.0`` keeps tests instant.
    """

    engine_name: ClassVar[str] = "simulated"
    supports_json_schema: ClassVar[bool] = False
    requires_network: ClassVar[bool] = False

    def __init__(
        self,
        model_name: str = "gpt-3.5-03",
        seed: int = 0,
        temperature: float = 0.01,
        profile: ModelProfile | None = None,
        tokenizer: ApproxTokenizer | None = None,
        latency_seconds: float = 0.0,
    ) -> None:
        if latency_seconds < 0:
            raise ValueError(f"latency_seconds must be >= 0, got {latency_seconds}")
        super().__init__(
            model_name=model_name,
            seed=seed,
            temperature=temperature,
            profile=profile,
            tokenizer=tokenizer,
        )
        self.latency_seconds = latency_seconds

    def _generate(self, prompt_text: str) -> str:
        if self.latency_seconds:
            time.sleep(self.latency_seconds)
        return super()._generate(prompt_text)
