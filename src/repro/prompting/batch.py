"""Batch prompting: several questions per LLM call (paper Figure 1b)."""

from __future__ import annotations

from typing import Sequence

from repro.data.schema import EntityPair
from repro.prompting.prompt import Prompt
from repro.prompting.templates import (
    DEFAULT_TASK_DESCRIPTION,
    batch_instruction,
    render_demonstration,
    render_question,
)


class BatchPromptBuilder:
    """Builds one prompt per question batch.

    The prompt contains the task description once, the batch's demonstrations
    once, and all questions of the batch — which is where the token (and hence
    API cost) savings of batch prompting come from.

    Args:
        attributes: shared attribute schema used to serialize entities.
        task_description: the task description text (paper's ``Desc``).
    """

    def __init__(
        self,
        attributes: tuple[str, ...] | None = None,
        task_description: str = DEFAULT_TASK_DESCRIPTION,
    ) -> None:
        self.attributes = attributes
        self.task_description = task_description

    def build(
        self, questions: Sequence[EntityPair], demonstrations: Sequence[EntityPair]
    ) -> Prompt:
        """Build the batch prompt for the given questions and demonstrations.

        Raises:
            ValueError: if no questions are provided.
        """
        if not questions:
            raise ValueError("a batch prompt requires at least one question")
        sections = [self.task_description]
        if demonstrations:
            rendered_demos = "\n".join(
                render_demonstration(index + 1, demo, self.attributes)
                for index, demo in enumerate(demonstrations)
            )
            sections.append("Demonstrations:\n" + rendered_demos)
        rendered_questions = "\n".join(
            render_question(index + 1, question, self.attributes)
            for index, question in enumerate(questions)
        )
        sections.append("Questions:\n" + rendered_questions)
        sections.append(batch_instruction(len(questions)))
        return Prompt(
            text="\n\n".join(sections),
            questions=tuple(questions),
            num_demonstrations=len(demonstrations),
            style="batch",
        )
