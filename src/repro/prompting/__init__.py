"""Prompt construction and answer parsing for ICL-based entity resolution.

Two prompt styles are supported, mirroring the paper's Figure 1:

* **standard prompting** (:class:`StandardPromptBuilder`): one task
  description, the demonstrations, and a single question per LLM call;
* **batch prompting** (:class:`BatchPromptBuilder`): one task description, the
  demonstrations, and a *batch* of questions answered in one LLM call.

The answer parser (:mod:`repro.prompting.parser`) converts the LLM's free-text
response back into per-question match / non-match predictions and reports
questions the model failed to answer.
"""

from repro.prompting.templates import (
    DEFAULT_TASK_DESCRIPTION,
    render_demonstration,
    render_question,
)
from repro.prompting.standard import StandardPromptBuilder
from repro.prompting.batch import BatchPromptBuilder
from repro.prompting.parser import ParsedAnswers, parse_batch_answers, parse_standard_answer
from repro.prompting.prompt import Prompt

__all__ = [
    "BatchPromptBuilder",
    "DEFAULT_TASK_DESCRIPTION",
    "ParsedAnswers",
    "Prompt",
    "StandardPromptBuilder",
    "parse_batch_answers",
    "parse_standard_answer",
    "render_demonstration",
    "render_question",
]
