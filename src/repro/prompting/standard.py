"""Standard prompting: one question per LLM call (paper Figure 1a)."""

from __future__ import annotations

from typing import Sequence

from repro.data.schema import EntityPair
from repro.prompting.prompt import Prompt
from repro.prompting.templates import (
    DEFAULT_TASK_DESCRIPTION,
    render_demonstration,
    render_question,
    standard_instruction,
)


class StandardPromptBuilder:
    """Builds one prompt per question: task description + demonstrations + question.

    Args:
        attributes: shared attribute schema used to serialize entities.
        task_description: the task description text (paper's ``Desc``).
    """

    def __init__(
        self,
        attributes: tuple[str, ...] | None = None,
        task_description: str = DEFAULT_TASK_DESCRIPTION,
    ) -> None:
        self.attributes = attributes
        self.task_description = task_description

    def build(self, question: EntityPair, demonstrations: Sequence[EntityPair]) -> Prompt:
        """Build the standard prompt for a single question."""
        sections = [self.task_description]
        if demonstrations:
            rendered_demos = "\n".join(
                render_demonstration(index + 1, demo, self.attributes)
                for index, demo in enumerate(demonstrations)
            )
            sections.append("Demonstrations:\n" + rendered_demos)
        sections.append("Question:\n" + render_question(1, question, self.attributes))
        sections.append(standard_instruction())
        return Prompt(
            text="\n\n".join(sections),
            questions=(question,),
            num_demonstrations=len(demonstrations),
            style="standard",
        )

    def build_all(
        self, questions: Sequence[EntityPair], demonstrations: Sequence[EntityPair]
    ) -> list[Prompt]:
        """Build one standard prompt per question (all sharing the demonstrations)."""
        return [self.build(question, demonstrations) for question in questions]
