"""Prompt value object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.schema import EntityPair


@dataclass(frozen=True)
class Prompt:
    """A fully rendered prompt ready to be sent to an LLM.

    Attributes:
        text: the complete prompt text (this is all the LLM receives).
        questions: the question pairs the prompt asks about, in question order
            (kept for aligning parsed answers back to pairs; never shown to the
            LLM beyond their serialized form inside ``text``).
        num_demonstrations: number of in-context demonstrations included.
        style: ``"standard"`` or ``"batch"``.
    """

    text: str
    questions: tuple[EntityPair, ...]
    num_demonstrations: int
    style: str

    @property
    def num_questions(self) -> int:
        """Number of questions the prompt asks the LLM to answer."""
        return len(self.questions)
