"""Answer parsing: LLM response text → per-question match predictions.

Batch prompting asks for one ``A<i>: Yes/No`` line per question; standard
prompting asks for a single ``Answer: Yes/No`` line.  Real LLMs deviate from
the requested format, so the parser is deliberately tolerant: it also accepts
``Q<i>: Yes``, ``<i>. yes``, dash- and equals-separated forms such as
``A1 - Yes`` and ``Q2 = no``, bare ``yes``/``no`` lines in question order, and
treats anything it cannot interpret as an unanswered question (``None``),
which the pipeline later resolves with a fallback label and reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.data.schema import MatchLabel

_INDEXED_ANSWER = re.compile(
    r"^\s*(?:A|Q|Answer)?\s*(\d+)\s*[:.\)=-]\s*(yes|no|match|non-match|not a match)\b",
    re.IGNORECASE,
)
_STANDARD_ANSWER = re.compile(
    r"\b(?:answer\s*[:\-]?\s*)?(yes|no|match|non-match|not a match)\b", re.IGNORECASE
)
_BARE_ANSWER = re.compile(r"^\s*(yes|no)\b", re.IGNORECASE)
# Strict line-anchored "Answer: Yes/No" form, for the single-question batch
# fallback only: unlike the loose _STANDARD_ANSWER search, it cannot mistake
# explanatory prose ("the names do not match exactly") for an answer — which
# matters once parses are cached by the serving layer.
_ANSWER_LINE = re.compile(
    r"^\s*answer\s*[:\-]?\s*(yes|no|match|non-match|not a match)\b",
    re.IGNORECASE | re.MULTILINE,
)

_POSITIVE_WORDS = {"yes", "match"}


def _word_to_label(word: str) -> MatchLabel:
    return MatchLabel.MATCH if word.lower() in _POSITIVE_WORDS else MatchLabel.NON_MATCH


@dataclass(frozen=True)
class ParsedAnswers:
    """Parsed per-question predictions.

    Attributes:
        labels: one entry per question; ``None`` when the LLM failed to answer
            that question.
    """

    labels: tuple[MatchLabel | None, ...]

    @property
    def num_answered(self) -> int:
        """Number of questions the LLM actually answered."""
        return sum(1 for label in self.labels if label is not None)

    @property
    def num_unanswered(self) -> int:
        """Number of questions left unanswered by the LLM."""
        return len(self.labels) - self.num_answered

    def resolved(self, fallback: MatchLabel = MatchLabel.NON_MATCH) -> tuple[MatchLabel, ...]:
        """Replace unanswered questions with ``fallback`` (default: non-match)."""
        return tuple(label if label is not None else fallback for label in self.labels)


def parse_standard_answer(response_text: str) -> ParsedAnswers:
    """Parse the response of a standard (single-question) prompt."""
    if not response_text or not response_text.strip():
        return ParsedAnswers(labels=(None,))
    match = _STANDARD_ANSWER.search(response_text)
    if match is None:
        return ParsedAnswers(labels=(None,))
    return ParsedAnswers(labels=(_word_to_label(match.group(1)),))


def parse_batch_answers(response_text: str, num_questions: int) -> ParsedAnswers:
    """Parse the response of a batch prompt into ``num_questions`` predictions.

    Answers are matched to questions by their explicit index (``A3: yes`` →
    question 3), in any order.  Lines without an index are assigned to the
    earliest question still lacking an answer, which handles models that reply
    with a bare list of ``yes``/``no`` lines in order.

    The contract is *parse or report unanswered, never misassign*: a question
    whose indexed answer lines contradict each other (``A2: Yes`` and later
    ``A2: No``) is reported unanswered rather than silently resolved to
    whichever duplicate came last — and such a conflicted question is also
    excluded from the unindexed fill, so a stray bare ``yes`` can never slide
    into the slot the conflict vacated.  Repeated lines that *agree* simply
    confirm the answer.
    """
    labels: list[MatchLabel | None] = [None] * num_questions
    if not response_text or not response_text.strip():
        return ParsedAnswers(labels=tuple(labels))

    conflicted: set[int] = set()
    unindexed: list[MatchLabel] = []
    for line in response_text.splitlines():
        if not line.strip():
            continue
        indexed = _INDEXED_ANSWER.match(line)
        if indexed is not None:
            question_number = int(indexed.group(1))
            if 1 <= question_number <= num_questions:
                label = _word_to_label(indexed.group(2))
                previous = labels[question_number - 1]
                if previous is not None and previous is not label:
                    conflicted.add(question_number - 1)
                labels[question_number - 1] = label
            continue
        bare = _BARE_ANSWER.match(line)
        if bare is not None:
            unindexed.append(_word_to_label(bare.group(1)))
    for index in conflicted:
        labels[index] = None

    # Assign unindexed answers to the earliest unanswered questions, in order.
    # Conflicted questions stay unanswered: their slot is not up for grabs.
    cursor = iter(unindexed)
    for index in range(num_questions):
        if labels[index] is None and index not in conflicted:
            next_label = next(cursor, None)
            if next_label is None:
                break
            labels[index] = next_label

    # A single-question batch is often answered in standard-prompting style
    # ("Answer: Yes, ..."), with no index and no bare leading yes/no.  This
    # happens whenever a flush/batch degenerates to one question (e.g. a
    # micro-batch deadline firing with a lone request queued).  Only the
    # line-anchored form is accepted here, so prose never parses as an answer.
    if num_questions == 1 and labels[0] is None and not conflicted:
        anchored = _ANSWER_LINE.search(response_text)
        if anchored is not None:
            labels[0] = _word_to_label(anchored.group(1))

    return ParsedAnswers(labels=tuple(labels))
