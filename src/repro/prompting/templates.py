"""Prompt text templates: task description, demonstration and question rendering.

The rendering uses explicit ``Entity A:`` / ``Entity B:`` lines and numbered
``[D{i}]`` / ``[Q{i}]`` section markers.  The markers serve two purposes: they
make the prompt unambiguous for the (simulated) LLM, and they give the answer
parser stable anchors, exactly like the structured prompts published with the
original BatchER code.
"""

from __future__ import annotations

from repro.data.schema import EntityPair, MatchLabel, Record
from repro.data.serialization import serialize_record

DEFAULT_TASK_DESCRIPTION = (
    "This is an entity resolution task. Given a pair of entity records, Entity A "
    "and Entity B, decide whether they refer to the same real-world entity. "
    "Compare the attribute values carefully; small differences in identifiers, "
    "model numbers or editions usually indicate different entities, while "
    "formatting differences, abbreviations and typos do not."
)

#: Answer words used in demonstrations and expected from the LLM.
MATCH_ANSWER_WORD = "Yes"
NON_MATCH_ANSWER_WORD = "No"


def render_entity(record: Record, attributes: tuple[str, ...] | None, side: str) -> str:
    """Render one entity as an ``Entity A: ...`` / ``Entity B: ...`` line."""
    return f"Entity {side}: {serialize_record(record, attributes)}"


def render_pair_block(pair: EntityPair, attributes: tuple[str, ...] | None = None) -> str:
    """Render the two entities of a pair on consecutive lines."""
    return "\n".join(
        (
            render_entity(pair.left, attributes, "A"),
            render_entity(pair.right, attributes, "B"),
        )
    )


def answer_word(label: MatchLabel) -> str:
    """Map a match label to the answer word used in prompts."""
    return MATCH_ANSWER_WORD if label is MatchLabel.MATCH else NON_MATCH_ANSWER_WORD


def render_demonstration(
    index: int, pair: EntityPair, attributes: tuple[str, ...] | None = None
) -> str:
    """Render one labeled demonstration block (``[D{index}]``).

    Raises:
        ValueError: if the pair carries no label (demonstrations must be labeled).
    """
    if pair.label is None:
        raise ValueError(f"demonstration pair {pair.pair_id!r} has no label")
    if pair.label is MatchLabel.MATCH:
        reason = "the two records describe the same entity despite formatting differences"
    else:
        reason = "the two records describe different entities"
    return (
        f"[D{index}]\n"
        f"{render_pair_block(pair, attributes)}\n"
        f"Answer: {answer_word(pair.label)}, {reason}."
    )


def render_question(
    index: int, pair: EntityPair, attributes: tuple[str, ...] | None = None
) -> str:
    """Render one question block (``[Q{index}]``)."""
    return f"[Q{index}]\n{render_pair_block(pair, attributes)}"


def batch_instruction(num_questions: int) -> str:
    """Final instruction of a batch prompt telling the LLM the answer format."""
    return (
        f"Answer all {num_questions} questions. For each question [Qi], respond on "
        "its own line in the form 'A<i>: Yes' if Entity A and Entity B refer to the "
        "same real-world entity, or 'A<i>: No' otherwise, followed by a short reason."
    )


def standard_instruction() -> str:
    """Final instruction of a standard (single-question) prompt."""
    return (
        "Respond with 'Answer: Yes' if Entity A and Entity B refer to the same "
        "real-world entity, or 'Answer: No' otherwise, followed by a short reason."
    )
