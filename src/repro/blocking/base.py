"""Blocker interface and blocking-quality evaluation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.data.schema import CandidateSet, EntityPair, MatchLabel, Record, Table


@dataclass(frozen=True)
class BlockingResult:
    """Output of a blocker: the surviving candidate pairs and bookkeeping."""

    candidates: CandidateSet
    total_possible_pairs: int

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the cross product pruned away (1 = everything pruned)."""
        if self.total_possible_pairs == 0:
            return 0.0
        return 1.0 - len(self.candidates) / self.total_possible_pairs


class Blocker(ABC):
    """Base class for blockers producing candidate pairs from two tables."""

    @abstractmethod
    def block(self, table_a: Table, table_b: Table) -> BlockingResult:
        """Produce candidate pairs for the two tables."""

    def _make_pair(self, left: Record, right: Record, index: int) -> EntityPair:
        return EntityPair(pair_id=f"block-{index}", left=left, right=right, label=None)


def evaluate_blocking(
    result: BlockingResult, gold_matches: CandidateSet
) -> dict[str, float]:
    """Evaluate a blocking result against gold matching pairs.

    Pair recall counts how many gold matching record-id pairs survive blocking;
    the reduction ratio measures how aggressively the cross product was pruned.

    Args:
        result: the blocker output.
        gold_matches: a candidate set whose MATCH-labeled pairs define the gold
            matches (record ids are compared, not record contents).
    """
    gold_ids = {
        (pair.left.record_id, pair.right.record_id)
        for pair in gold_matches
        if pair.label is MatchLabel.MATCH
    }
    if not gold_ids:
        recall = 1.0
    else:
        surviving = {
            (pair.left.record_id, pair.right.record_id) for pair in result.candidates
        }
        recall = len(gold_ids & surviving) / len(gold_ids)
    return {
        "pair_recall": recall,
        "reduction_ratio": result.reduction_ratio,
        "num_candidates": float(len(result.candidates)),
    }
