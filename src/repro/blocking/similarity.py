"""Similarity-threshold blocking.

Keeps a pair when the maximum per-attribute string similarity exceeds a
threshold.  More expensive than token-overlap blocking (it scores candidate
pairs produced by a cheap pre-filter), but yields higher-precision candidate
sets.  Used in examples and blocking ablations; the main experiments use the
generator's candidate sets directly, as the paper treats blocking as given.
"""

from __future__ import annotations

from repro.blocking.base import Blocker, BlockingResult
from repro.blocking.overlap import TokenOverlapBlocker
from repro.data.schema import CandidateSet, Table
from repro.text.similarity import get_similarity_function


class SimilarityThresholdBlocker(Blocker):
    """Two-stage blocker: token-overlap pre-filter, then a similarity threshold.

    Args:
        attributes: attributes considered; ``None`` means all.
        similarity: registered string-similarity function name.
        threshold: minimum similarity (on the best-matching attribute) to keep
            a pair.
        prefilter_overlap: ``min_overlap`` for the token-overlap pre-filter.
    """

    def __init__(
        self,
        attributes: tuple[str, ...] | None = None,
        similarity: str = "jaccard",
        threshold: float = 0.35,
        prefilter_overlap: int = 1,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.attributes = attributes
        self.similarity_name = similarity
        self.threshold = threshold
        self._similarity = get_similarity_function(similarity)
        self._prefilter = TokenOverlapBlocker(attributes=attributes, min_overlap=prefilter_overlap)

    def block(self, table_a: Table, table_b: Table) -> BlockingResult:
        prefiltered = self._prefilter.block(table_a, table_b)
        attributes = self.attributes or table_a.attributes
        survivors = []
        for pair in prefiltered.candidates:
            best = 0.0
            for attribute in attributes:
                left = pair.left.value(attribute)
                right = pair.right.value(attribute)
                if not left or not right:
                    continue
                best = max(best, float(self._similarity(left, right)))
                if best >= self.threshold:
                    break
            if best >= self.threshold:
                survivors.append(pair)
        return BlockingResult(
            candidates=CandidateSet(tuple(survivors)),
            total_possible_pairs=prefiltered.total_possible_pairs,
        )
