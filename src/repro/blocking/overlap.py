"""Token-overlap blocking (inverted-index based).

A candidate pair survives if the two records share at least ``min_overlap``
tokens across the blocking attributes.  This is the classic cheap blocker used
by Magellan-style pipelines; it is quadratic-safe because it only compares
records that co-occur in at least one inverted-index posting list.
"""

from __future__ import annotations

from collections import defaultdict

from repro.blocking.base import Blocker, BlockingResult
from repro.data.schema import CandidateSet, Record, Table
from repro.text.similarity import tokenize_value

#: Tokens shorter than this are ignored (stop-word-ish noise).
MIN_TOKEN_LENGTH = 2


class TokenOverlapBlocker(Blocker):
    """Inverted-index token overlap blocker.

    Args:
        attributes: attributes whose tokens are indexed; ``None`` means all
            attributes of table A's schema.
        min_overlap: minimum number of shared tokens for a pair to survive.
        max_posting_length: posting lists longer than this are skipped (they
            correspond to uninformative, very frequent tokens).
    """

    def __init__(
        self,
        attributes: tuple[str, ...] | None = None,
        min_overlap: int = 2,
        max_posting_length: int = 200,
    ) -> None:
        if min_overlap < 1:
            raise ValueError(f"min_overlap must be >= 1, got {min_overlap}")
        self.attributes = attributes
        self.min_overlap = min_overlap
        self.max_posting_length = max_posting_length

    def _record_tokens(self, record: Record, attributes: tuple[str, ...]) -> set[str]:
        tokens: set[str] = set()
        for attribute in attributes:
            for token in tokenize_value(record.value(attribute)):
                if len(token) >= MIN_TOKEN_LENGTH:
                    tokens.add(token)
        return tokens

    def block(self, table_a: Table, table_b: Table) -> BlockingResult:
        attributes = self.attributes or table_a.attributes
        # Token sets are keyed by *position*, matching the positional posting
        # lists: keying by record_id would silently merge records that share
        # an id (dirty tables do contain duplicate ids) and drop their tokens.
        tokens_b = [self._record_tokens(record, attributes) for record in table_b]
        index_b: dict[str, list[int]] = defaultdict(list)
        for position, record_tokens in enumerate(tokens_b):
            for token in record_tokens:
                index_b[token].append(position)

        pairs = []
        pair_index = 0
        for record_a in table_a:
            tokens_a = self._record_tokens(record_a, attributes)
            overlap_counts: dict[int, int] = defaultdict(int)
            for token in tokens_a:
                posting = index_b.get(token, ())
                if len(posting) > self.max_posting_length:
                    continue
                for position in posting:
                    overlap_counts[position] += 1
            for position, count in overlap_counts.items():
                if count >= self.min_overlap:
                    pairs.append(self._make_pair(record_a, table_b.records[position], pair_index))
                    pair_index += 1

        return BlockingResult(
            candidates=CandidateSet(tuple(pairs)),
            total_possible_pairs=len(table_a) * len(table_b),
        )
