"""MinHash-LSH blocking: near-linear candidate generation for large tables.

The inverted-index blockers in this package compare every pair of records that
co-occur in a posting list — fine at benchmark scale, but posting lists grow
with the table and the candidate set degrades toward quadratic on dirty data.
This module provides the classic sub-quadratic alternative:

* each record is reduced to a set of token shingles,
* the set is summarised by a MinHash signature under ``num_perm`` seeded
  permutations (multiply-shift hashing over 64-bit token hashes; two records'
  signatures agree on a permutation with probability equal to their Jaccard
  similarity),
* signatures are split into ``bands`` bands of ``num_perm / bands`` rows, and
  records colliding in at least one banded bucket become candidate pairs.

Everything is deterministic for a fixed ``seed``: token hashes are keyed
blake2b digests (not Python's salted ``hash``), permutations are drawn from a
seeded generator, and candidate emission order is stable — so blocking results
are byte-stable across processes.

The same :class:`MinHashSigner` primitives back the approximate epsilon-graph
in :mod:`repro.clustering.neighbors`, which feeds quantized-grid cell tokens
(instead of text shingles) through identical banded-LSH machinery.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.blocking.base import Blocker, BlockingResult
from repro.data.schema import CandidateSet, Record, Table
from repro.text.similarity import tokenize_value

#: Tokens shorter than this are ignored (stop-word-ish noise).
MIN_TOKEN_LENGTH = 2

#: Signature value of a record with no tokens (never collides: see block()).
EMPTY_SIGNATURE = np.uint64(np.iinfo(np.uint64).max)

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: a cheap, well-mixed 64-bit hash."""
    z = values.astype(np.uint64, copy=True)
    z += _GOLDEN
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def hash_tokens(tokens: Iterable[str]) -> np.ndarray:
    """Deterministic 64-bit hashes of string tokens (blake2b, not ``hash()``).

    Python's builtin ``hash`` is salted per process; blocking must be
    byte-stable across processes, so tokens are digested explicitly.
    """
    return np.fromiter(
        (
            int.from_bytes(
                hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest(),
                "little",
            )
            for token in tokens
        ),
        dtype=np.uint64,
    )


class MinHashSigner:
    """Seeded MinHash permutations shared by text blocking and vector LSH.

    Each "permutation" is a multiply-shift universal hash over uint64 token
    hashes (odd multiplier, additive offset, natural 2^64 wraparound); the
    signature entry for a permutation is the minimum hashed token value.

    Args:
        num_perm: number of permutations (signature length).
        seed: RNG seed the permutation parameters are drawn from.
    """

    def __init__(self, num_perm: int = 64, seed: int = 0) -> None:
        if num_perm < 1:
            raise ValueError(f"num_perm must be >= 1, got {num_perm}")
        self.num_perm = num_perm
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._multipliers = (
            rng.integers(1, 2**63, size=num_perm, dtype=np.uint64) | np.uint64(1)
        )
        self._offsets = rng.integers(0, 2**63, size=num_perm, dtype=np.uint64)

    def signature_matrix(self, token_hashes: np.ndarray) -> np.ndarray:
        """Signatures of rows of a dense ``(n, t)`` token-hash matrix.

        Every row must carry the same number of tokens ``t`` (the vector-LSH
        case: one grid-cell token per dimension per offset grid).  Returns a
        ``(n, num_perm)`` uint64 matrix.
        """
        hashes = np.ascontiguousarray(token_hashes, dtype=np.uint64)
        if hashes.ndim != 2 or hashes.shape[1] == 0:
            raise ValueError(
                f"expected a non-empty 2-D token-hash matrix, got {hashes.shape}"
            )
        out = np.empty((hashes.shape[0], self.num_perm), dtype=np.uint64)
        for perm in range(self.num_perm):
            permuted = hashes * self._multipliers[perm] + self._offsets[perm]
            np.min(permuted, axis=1, out=out[:, perm])
        return out

    def signatures_of_sets(
        self, token_sets: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Signatures of ragged token-hash sets (the text-blocking case).

        Rows whose token set is empty are filled with :data:`EMPTY_SIGNATURE`;
        callers must exclude those rows from bucketing (two token-less records
        are not evidence of a match).
        """
        out = np.full((len(token_sets), self.num_perm), EMPTY_SIGNATURE)
        lengths = np.array([len(tokens) for tokens in token_sets], dtype=np.int64)
        nonempty = lengths > 0
        if not bool(np.any(nonempty)):
            return out
        flat = np.concatenate(
            [np.asarray(tokens, dtype=np.uint64) for tokens in token_sets if len(tokens)]
        )
        starts = np.zeros(int(np.count_nonzero(nonempty)), dtype=np.int64)
        np.cumsum(lengths[nonempty][:-1], out=starts[1:])
        for perm in range(self.num_perm):
            permuted = flat * self._multipliers[perm] + self._offsets[perm]
            out[nonempty, perm] = np.minimum.reduceat(permuted, starts)
        return out


def band_keys(signatures: np.ndarray, bands: int) -> np.ndarray:
    """Mix each signature into one uint64 bucket key per LSH band.

    The ``(n, num_perm)`` signature matrix is split into ``bands`` contiguous
    bands of ``num_perm / bands`` rows each; rows within a band are folded
    with a splitmix64 chain, so two records share a band key exactly when
    their signatures agree on every permutation of that band (up to 64-bit
    hash collisions).  Returns a ``(n, bands)`` uint64 key matrix.
    """
    if signatures.ndim != 2:
        raise ValueError(f"expected a 2-D signature matrix, got {signatures.shape}")
    num_perm = signatures.shape[1]
    if bands < 1 or num_perm % bands != 0:
        raise ValueError(
            f"bands must divide num_perm: bands={bands}, num_perm={num_perm}"
        )
    rows = num_perm // bands
    view = signatures.reshape(signatures.shape[0], bands, rows)
    keys = splitmix64(view[:, :, 0])
    for row in range(1, rows):
        keys = splitmix64(keys ^ (view[:, :, row] + _GOLDEN))
    return keys


class MinHashLSHBlocker(Blocker):
    """Banded MinHash-LSH blocker over token shingles.

    Unlike :class:`~repro.blocking.overlap.TokenOverlapBlocker`, candidate
    generation never walks full posting lists: records only pair up when
    their banded signatures collide, which keeps the expected candidate count
    near-linear in the table size.  Recall is probabilistic — a pair sharing
    Jaccard similarity ``J`` collides in at least one band with probability
    ``1 - (1 - J^rows)^bands`` — and tunable via ``num_perm`` / ``bands``.

    Args:
        attributes: attributes whose tokens are shingled; ``None`` means all
            attributes of table A's schema.
        shingle_size: width of word shingles per attribute (1 = single
            tokens); records with fewer tokens contribute their whole token
            sequence as one shingle so short values still get signed.
        num_perm: MinHash permutations (must be divisible by ``bands``).
        bands: LSH bands; more bands = higher recall, more candidates.
        candidate_cap: per-left-record cap on emitted candidates; the
            strongest collisions (most shared bands) win, ties broken by
            right-record position for determinism.
        seed: seed of the signature permutations.
    """

    def __init__(
        self,
        attributes: tuple[str, ...] | None = None,
        shingle_size: int = 1,
        num_perm: int = 64,
        bands: int = 16,
        candidate_cap: int = 64,
        seed: int = 0,
    ) -> None:
        if shingle_size < 1:
            raise ValueError(f"shingle_size must be >= 1, got {shingle_size}")
        if bands < 1 or num_perm % bands != 0:
            raise ValueError(
                f"bands must divide num_perm: bands={bands}, num_perm={num_perm}"
            )
        if candidate_cap < 1:
            raise ValueError(f"candidate_cap must be >= 1, got {candidate_cap}")
        self.attributes = attributes
        self.shingle_size = shingle_size
        self.num_perm = num_perm
        self.bands = bands
        self.candidate_cap = candidate_cap
        self.seed = seed
        self._signer = MinHashSigner(num_perm=num_perm, seed=seed)

    def _record_shingles(
        self, record: Record, attributes: tuple[str, ...]
    ) -> set[str]:
        shingles: set[str] = set()
        for attribute in attributes:
            tokens = [
                token
                for token in tokenize_value(record.value(attribute))
                if len(token) >= MIN_TOKEN_LENGTH
            ]
            if not tokens:
                continue
            if len(tokens) < self.shingle_size:
                shingles.add(" ".join(tokens))
                continue
            for start in range(len(tokens) - self.shingle_size + 1):
                shingles.add(" ".join(tokens[start : start + self.shingle_size]))
        return shingles

    def _table_signatures(
        self, table: Table, attributes: tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Banded bucket keys and an empty-record mask for one table."""
        # Token sets are keyed by *position* (see TokenOverlapBlocker): dirty
        # tables contain duplicate record ids with different contents.
        token_sets = [
            hash_tokens(sorted(self._record_shingles(record, attributes)))
            for record in table
        ]
        empty = np.array([len(tokens) == 0 for tokens in token_sets], dtype=bool)
        keys = band_keys(self._signer.signatures_of_sets(token_sets), self.bands)
        return keys, empty

    def block(self, table_a: Table, table_b: Table) -> BlockingResult:
        attributes = self.attributes or table_a.attributes
        keys_a, empty_a = self._table_signatures(table_a, attributes)
        keys_b, empty_b = self._table_signatures(table_b, attributes)

        # Count, per A record, in how many bands each B record collides.
        collision_counts: list[dict[int, int]] = [
            defaultdict(int) for _ in range(len(table_a))
        ]
        for band in range(self.bands):
            buckets: dict[int, list[int]] = defaultdict(list)
            for position_b in range(len(table_b)):
                if not empty_b[position_b]:
                    buckets[int(keys_b[position_b, band])].append(position_b)
            for position_a in range(len(table_a)):
                if empty_a[position_a]:
                    continue
                for position_b in buckets.get(int(keys_a[position_a, band]), ()):
                    collision_counts[position_a][position_b] += 1

        pairs = []
        pair_index = 0
        for position_a, counts in enumerate(collision_counts):
            selected = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
            for position_b, _ in selected[: self.candidate_cap]:
                pairs.append(
                    self._make_pair(
                        table_a.records[position_a],
                        table_b.records[position_b],
                        pair_index,
                    )
                )
                pair_index += 1

        return BlockingResult(
            candidates=CandidateSet(tuple(pairs)),
            total_possible_pairs=len(table_a) * len(table_b),
        )
