"""Blocking substrate: candidate-pair generation from two tables.

The paper treats the blocker as a given component (Section II-A): an end-to-end
ER system first applies blocking to prune the ``|TA| x |TB|`` cross product to
a manageable candidate set, then the matcher (BatchER) labels candidates.  Our
benchmark generator produces candidate sets directly, but a real deployment
needs a blocker, so this package provides standard token-overlap and
similarity-threshold blockers, a sub-quadratic MinHash-LSH blocker for
million-record tables, plus blocking-quality metrics (pair recall and
reduction ratio).
"""

from repro.blocking.base import Blocker, BlockingResult, evaluate_blocking
from repro.blocking.minhash import MinHashLSHBlocker, MinHashSigner, band_keys, hash_tokens
from repro.blocking.overlap import TokenOverlapBlocker
from repro.blocking.similarity import SimilarityThresholdBlocker

__all__ = [
    "Blocker",
    "BlockingResult",
    "MinHashLSHBlocker",
    "MinHashSigner",
    "SimilarityThresholdBlocker",
    "TokenOverlapBlocker",
    "band_keys",
    "evaluate_blocking",
    "hash_tokens",
]
