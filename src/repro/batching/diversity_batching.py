"""Diversity-based question batching (paper Section III-A).

Each batch draws at most one question from each of ``batch_size`` *different*
clusters, so the questions inside a batch are mutually dissimilar.  When fewer
clusters than the batch size remain, questions are taken from the remaining
clusters in a round-robin manner (paper Example 4 part 2).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch, QuestionBatcher
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair


class DiversityQuestionBatcher(QuestionBatcher):
    """Compose each batch from questions of different clusters."""

    name = "diverse"
    distance_metric = "euclidean"

    def create_batches(
        self,
        questions: Sequence[EntityPair],
        features: np.ndarray,
        distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> list[QuestionBatch]:
        if not questions:
            return []
        clusters = self._cluster_questions(features, distances=distances, planner=planner)
        # Clusters are FIFO queues, largest first, so early batches are maximally diverse.
        queues: deque[deque[int]] = deque(
            deque(cluster) for cluster in sorted(clusters, key=len, reverse=True)
        )

        groups: list[list[int]] = []
        while queues:
            batch: list[int] = []
            touched: deque[deque[int]] = deque()

            # Phase 1: one question from up to batch_size distinct clusters.
            while queues and len(batch) < self.batch_size:
                queue = queues.popleft()
                batch.append(queue.popleft())
                if queue:
                    touched.append(queue)

            # Phase 2: fewer clusters than the batch size remain — top the batch
            # up round-robin from the clusters touched this round.
            while touched and len(batch) < self.batch_size:
                queue = touched.popleft()
                batch.append(queue.popleft())
                if queue:
                    touched.append(queue)

            # Surviving clusters go back for the next round.
            queues.extend(queue for queue in touched if queue)
            groups.append(batch)

        return self._make_batches(groups, questions)
