"""Question batching base types and invariant checks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.dbscan import DBSCAN
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair


@dataclass(frozen=True)
class QuestionBatch:
    """One batch of questions destined for a single LLM call.

    Attributes:
        batch_id: position of the batch in the batching order.
        indices: indices of the batch's questions in the original question set.
        pairs: the question entity pairs themselves (same order as ``indices``).
    """

    batch_id: int
    indices: tuple[int, ...]
    pairs: tuple[EntityPair, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.pairs):
            raise ValueError("indices and pairs must have the same length")
        if not self.indices:
            raise ValueError("a batch must contain at least one question")

    def __len__(self) -> int:
        return len(self.pairs)


class QuestionBatcher(ABC):
    """Base class for question batching strategies.

    Args:
        batch_size: maximum number of questions per batch (the paper uses 8).
        seed: RNG seed for any randomised decisions.
    """

    #: Strategy name used in configuration and reports.
    name: str = "batcher"

    #: Metric of the pairwise question-distance matrix this strategy can
    #: consume (clustering-based batchers), or ``None`` when it ignores
    #: distances entirely (random batching) — the pipeline uses this to skip
    #: computing a matrix nobody reads.
    distance_metric: str | None = None

    def __init__(self, batch_size: int = 8, seed: int = 0) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.seed = seed

    @abstractmethod
    def create_batches(
        self,
        questions: Sequence[EntityPair],
        features: np.ndarray,
        distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> list[QuestionBatch]:
        """Group ``questions`` into batches.

        Implementations must place every question in exactly one batch and must
        not exceed ``batch_size`` questions per batch.

        Args:
            questions: the question pairs, in evaluation order.
            features: ``(len(questions), d)`` feature matrix.
            distances: optional precomputed pairwise distance matrix over
                ``features`` in this strategy's :attr:`distance_metric` (the
                feature engine caches one for small question sets); computed
                on demand when omitted.
            planner: optional dense/sparse routing policy
                (:class:`~repro.clustering.neighbors.NeighborPlanner`) for the
                clustering step; above the planner's dense threshold DBSCAN
                runs over a sparse epsilon-neighbor graph instead of a dense
                matrix.  Ignored by strategies that never look at distances.
        """

    def _cluster_questions(
        self,
        features: np.ndarray,
        distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> list[list[int]]:
        """Cluster question feature vectors with DBSCAN (noise → singleton clusters)."""
        clusterer = DBSCAN(min_samples=2)
        result = clusterer.fit(
            np.asarray(features, dtype=float), distances=distances, planner=planner
        )
        return result.clusters(include_noise_as_singletons=True)

    def _make_batches(
        self, question_groups: list[list[int]], questions: Sequence[EntityPair]
    ) -> list[QuestionBatch]:
        """Materialise index groups into :class:`QuestionBatch` objects."""
        batches = []
        for batch_id, group in enumerate(question_groups):
            batches.append(
                QuestionBatch(
                    batch_id=batch_id,
                    indices=tuple(group),
                    pairs=tuple(questions[index] for index in group),
                )
            )
        return batches


def validate_batching(
    batches: Sequence[QuestionBatch], num_questions: int, batch_size: int
) -> None:
    """Check the batching invariants required by the paper's framework.

    Every question index in ``range(num_questions)`` must appear in exactly one
    batch, and no batch may exceed ``batch_size``.

    Raises:
        ValueError: if any invariant is violated.
    """
    seen: list[int] = []
    for batch in batches:
        if len(batch) > batch_size:
            raise ValueError(
                f"batch {batch.batch_id} has {len(batch)} questions, exceeding "
                f"the batch size {batch_size}"
            )
        seen.extend(batch.indices)
    if len(seen) != len(set(seen)):
        raise ValueError("some questions appear in more than one batch")
    missing = set(range(num_questions)) - set(seen)
    if missing:
        raise ValueError(f"questions missing from all batches: {sorted(missing)[:10]}")
    extra = set(seen) - set(range(num_questions))
    if extra:
        raise ValueError(f"batches contain unknown question indices: {sorted(extra)[:10]}")
