"""Similarity-based question batching (paper Section III-A).

Questions from the same DBSCAN cluster are grouped into the same batch so that
each batch contains mutually similar questions.  The remainder handling follows
the paper: when the remaining clusters are each smaller than the batch size,
repeatedly take the largest remaining cluster ``Cmax``, look for another
cluster whose size is exactly ``b - |Cmax|`` to complete the batch, and
otherwise top the batch up with randomly chosen questions from the next-largest
cluster.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch, QuestionBatcher
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair


class SimilarityQuestionBatcher(QuestionBatcher):
    """Fill each batch from within a single cluster of similar questions."""

    name = "similar"
    distance_metric = "euclidean"

    def create_batches(
        self,
        questions: Sequence[EntityPair],
        features: np.ndarray,
        distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> list[QuestionBatch]:
        if not questions:
            return []
        rng = random.Random(self.seed)
        clusters = self._cluster_questions(features, distances=distances, planner=planner)
        groups: list[list[int]] = []

        # Stage 1: carve full batches out of every cluster.
        remainders: list[list[int]] = []
        for cluster in clusters:
            members = list(cluster)
            while len(members) >= self.batch_size:
                groups.append(members[:self.batch_size])
                members = members[self.batch_size:]
            if members:
                remainders.append(members)

        # Stage 2: the paper's remainder-merging rule.
        while remainders:
            remainders.sort(key=len, reverse=True)
            current = remainders.pop(0)
            needed = self.batch_size - len(current)
            if needed == 0 or not remainders:
                groups.append(current)
                continue
            # Prefer a cluster whose size exactly matches the shortfall.
            exact_index = next(
                (i for i, cluster in enumerate(remainders) if len(cluster) == needed), None
            )
            if exact_index is not None:
                partner = remainders.pop(exact_index)
                groups.append(current + partner)
                continue
            # Otherwise borrow a random subset from the next largest cluster.
            partner = remainders.pop(0)
            take = min(needed, len(partner))
            chosen = rng.sample(range(len(partner)), take)
            chosen_set = set(chosen)
            borrowed = [partner[i] for i in chosen]
            leftover = [value for i, value in enumerate(partner) if i not in chosen_set]
            groups.append(current + borrowed)
            if leftover:
                remainders.append(leftover)

        return self._make_batches(groups, questions)
