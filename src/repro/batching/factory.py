"""Factory for question batching strategies keyed by the paper's names."""

from __future__ import annotations

from repro.batching.base import QuestionBatcher
from repro.batching.diversity_batching import DiversityQuestionBatcher
from repro.batching.random_batching import RandomQuestionBatcher
from repro.batching.similarity_batching import SimilarityQuestionBatcher

#: Canonical batching strategy names accepted by :func:`create_batcher`.
BATCHING_STRATEGIES = ("random", "similar", "diverse")


def create_batcher(strategy: str, batch_size: int = 8, seed: int = 0) -> QuestionBatcher:
    """Create a question batcher for one of the paper's strategies.

    Args:
        strategy: ``"random"``, ``"similar"`` (similarity-based) or
            ``"diverse"`` (diversity-based); a few aliases are accepted.
        batch_size: maximum questions per batch (paper default 8).
        seed: RNG seed for randomised decisions.

    Raises:
        KeyError: for unknown strategies.
    """
    key = strategy.strip().lower()
    if key in ("random", "rand"):
        return RandomQuestionBatcher(batch_size=batch_size, seed=seed)
    if key in ("similar", "similarity", "similarity-based", "sim"):
        return SimilarityQuestionBatcher(batch_size=batch_size, seed=seed)
    if key in ("diverse", "diversity", "diversity-based", "div"):
        return DiversityQuestionBatcher(batch_size=batch_size, seed=seed)
    known = ", ".join(BATCHING_STRATEGIES)
    raise KeyError(f"unknown batching strategy {strategy!r}; expected one of: {known}")
