"""Question batching strategies (paper Section III, Table I).

Given a question set (the entity pairs to be resolved) and their feature
vectors, a batcher groups the questions into batches of at most ``batch_size``
questions such that every question appears in exactly one batch.  Three
strategies are provided, matching the paper's categorisation:

* :class:`RandomQuestionBatcher` — shuffle and chunk;
* :class:`SimilarityQuestionBatcher` — fill each batch from within one DBSCAN
  cluster (with the paper's remainder-merging rule);
* :class:`DiversityQuestionBatcher` — round-robin one question per cluster so
  batches mix dissimilar questions.
"""

from repro.batching.base import QuestionBatch, QuestionBatcher, validate_batching
from repro.batching.random_batching import RandomQuestionBatcher
from repro.batching.similarity_batching import SimilarityQuestionBatcher
from repro.batching.diversity_batching import DiversityQuestionBatcher
from repro.batching.factory import create_batcher

__all__ = [
    "DiversityQuestionBatcher",
    "QuestionBatch",
    "QuestionBatcher",
    "RandomQuestionBatcher",
    "SimilarityQuestionBatcher",
    "create_batcher",
    "validate_batching",
]
