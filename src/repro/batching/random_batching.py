"""Random question batching (paper Section III-A).

Each batch is formed by randomly drawing questions from the remaining question
set.  Because of the randomness a batch mixes similar and dissimilar questions,
so random batching sits between similarity-based and diversity-based batching.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch, QuestionBatcher
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair


class RandomQuestionBatcher(QuestionBatcher):
    """Shuffle the question set and chunk it into batches of ``batch_size``."""

    name = "random"

    def create_batches(
        self,
        questions: Sequence[EntityPair],
        features: np.ndarray,
        distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> list[QuestionBatch]:
        indices = list(range(len(questions)))
        rng = random.Random(self.seed)
        rng.shuffle(indices)
        groups = [
            indices[start:start + self.batch_size]
            for start in range(0, len(indices), self.batch_size)
        ]
        return self._make_batches(groups, questions)
