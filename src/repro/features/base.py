"""Abstract feature extractor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.data.schema import EntityPair


class FeatureExtractor(ABC):
    """Maps entity-pair questions to fixed-dimensional feature vectors.

    Implementations must be deterministic: the same pair always maps to the
    same vector, so that clustering, batching and covering decisions are
    reproducible.
    """

    #: Human-readable name used in reports (e.g. ``"structure-lr"``).
    name: str = "feature-extractor"

    @abstractmethod
    def extract(self, pair: EntityPair) -> np.ndarray:
        """Return the feature vector of one entity pair."""

    def extract_matrix(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Return an ``(n, d)`` matrix of feature vectors for ``pairs``.

        The default implementation loops over :meth:`extract`; subclasses may
        override for a vectorised path.
        """
        if not pairs:
            return np.zeros((0, self.dimension), dtype=float)
        return np.vstack([self.extract(pair) for pair in pairs])

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality of the produced feature vectors."""
