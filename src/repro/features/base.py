"""Abstract feature extractor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.data.schema import EntityPair


class FeatureExtractor(ABC):
    """Maps entity-pair questions to fixed-dimensional feature vectors.

    Implementations must be deterministic: the same pair always maps to the
    same vector, so that clustering, batching and covering decisions are
    reproducible.
    """

    #: Human-readable name used in reports (e.g. ``"structure-lr"``).
    name: str = "feature-extractor"

    @abstractmethod
    def extract(self, pair: EntityPair) -> np.ndarray:
        """Return the feature vector of one entity pair.

        The scalar path is the *equivalence oracle* for the vectorised
        :meth:`extract_matrix`: implementations must keep both bit-identical
        (``extract_matrix(pairs)[i] == extract(pairs[i])``), which the feature
        engine's equivalence tests enforce.
        """

    def extract_matrix(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Return an ``(n, d)`` matrix of feature vectors for ``pairs``.

        This is the primary featurization API — all pipeline consumers call
        it (usually through a :class:`~repro.features.engine.FeatureStore`),
        and subclasses override it with a columnar/vectorised implementation.
        The default implementation loops over the scalar :meth:`extract`.
        """
        if not pairs:
            return np.zeros((0, self.dimension), dtype=float)
        return np.vstack([self.extract(pair) for pair in pairs])

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality of the produced feature vectors."""
