"""Factory for feature extractors keyed by the paper's variant names.

``"lr"`` → BatchER-LR (structure-aware, Levenshtein ratio),
``"jaccard"`` → BatchER-JAC (structure-aware, Jaccard),
``"semantic"`` → BatchER-SEM (sentence embedding).
"""

from __future__ import annotations

from repro.features.base import FeatureExtractor
from repro.features.semantic import SemanticExtractor
from repro.features.structure_aware import StructureAwareExtractor

#: Canonical extractor variant names accepted by :func:`create_feature_extractor`.
EXTRACTOR_VARIANTS = ("lr", "jaccard", "semantic")


def create_feature_extractor(
    variant: str, attributes: tuple[str, ...]
) -> FeatureExtractor:
    """Create the feature extractor for one of the paper's BatchER variants.

    Args:
        variant: ``"lr"``, ``"jaccard"`` or ``"semantic"`` (case-insensitive;
            ``"jac"`` and ``"sem"`` are accepted as aliases).
        attributes: the dataset's shared attribute schema.

    Raises:
        KeyError: for unknown variants.
    """
    key = variant.strip().lower()
    if key in ("lr", "levenshtein", "levenshtein_ratio"):
        return StructureAwareExtractor(attributes, similarity="levenshtein_ratio")
    if key in ("jac", "jaccard"):
        return StructureAwareExtractor(attributes, similarity="jaccard")
    if key in ("sem", "semantic", "sbert"):
        return SemanticExtractor(attributes)
    known = ", ".join(EXTRACTOR_VARIANTS)
    raise KeyError(f"unknown feature extractor variant {variant!r}; expected one of: {known}")
