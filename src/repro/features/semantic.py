"""Semantics-based feature extractor (paper Section III-B, Eq. 3).

The serialized pair (Eq. 1) is encoded with a sentence encoder.  The paper uses
SBERT; offline we use the deterministic
:class:`repro.text.embeddings.HashingSentenceEncoder` (see DESIGN.md for the
substitution rationale).  Any object exposing ``encode(text) -> np.ndarray``
and a ``dimension`` attribute can be injected, so a real SBERT model could be
dropped in without code changes.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import EntityPair
from repro.data.serialization import serialize_pair
from repro.features.base import FeatureExtractor
from repro.text.embeddings import HashingSentenceEncoder


class SemanticExtractor(FeatureExtractor):
    """Sentence-embedding feature extractor over serialized entity pairs.

    Args:
        attributes: shared attribute schema (for consistent serialization).
        encoder: sentence encoder; defaults to a 256-d hashing encoder.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        encoder: HashingSentenceEncoder | None = None,
    ) -> None:
        if not attributes:
            raise ValueError("attributes must be a non-empty tuple")
        self.attributes = tuple(attributes)
        self.encoder = encoder or HashingSentenceEncoder(dimension=256)
        self.name = "semantic"

    @property
    def dimension(self) -> int:
        return self.encoder.dimension

    def extract(self, pair: EntityPair) -> np.ndarray:
        text = serialize_pair(pair, self.attributes)
        return np.asarray(self.encoder.encode(text), dtype=float)

    def extract_matrix(self, pairs) -> np.ndarray:
        """Columnar featurization: serialize all pairs, encode them in one batch.

        Delegates to the encoder's vectorized ``encode_batch`` (text-level
        dedup, feature-hash memoization, single sparse accumulation pass);
        bit-identical to the scalar :meth:`extract` loop.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros((0, self.dimension), dtype=float)
        texts = [serialize_pair(pair, self.attributes) for pair in pairs]
        encode_batch = getattr(self.encoder, "encode_batch", None)
        if encode_batch is None:  # injected encoder without a batch path
            return np.vstack([np.asarray(self.encoder.encode(text), dtype=float) for text in texts])
        return np.asarray(encode_batch(texts), dtype=float)
