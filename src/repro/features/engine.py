"""The columnar feature engine: a content-addressed store of feature vectors.

Featurization is the CPU hot path of the whole framework — batching quality
and demonstration-selection quality both rest on the feature vectors (paper
Section III-B), and the same pairs are featurized again and again by the
pipeline's featurize stage, a ``Resolver``'s persistent pool and every service
flush.  :class:`FeatureStore` turns those three scalar paths into one shared
subsystem:

* **content addressing** — vectors are keyed by the canonical
  :func:`~repro.data.fingerprint.pair_fingerprint` (the same scheme as the
  service's pair-level result cache), so any two pairs with identical record
  contents share one cached vector regardless of ids or submitters;
* **columnar misses** — pairs absent from the store are featurized in one
  :meth:`~repro.features.base.FeatureExtractor.extract_matrix` call, hitting
  the extractors' vectorized paths (per-attribute similarity columns, batched
  sentence encoding) instead of per-pair Python loops;
* **one distance matrix per run** — the pairwise distance matrix over a
  feature matrix is cached by content digest, so clustering-based batchers and
  the covering selector share a single computation instead of each calling
  :func:`~repro.clustering.distance.pairwise_distances`;
* **one planning policy per store** — the store owns a
  :class:`~repro.clustering.neighbors.NeighborPlanner` wired to its distance
  cache: question sets up to the planner's dense threshold keep the cached
  dense matrix (the historical, byte-identical path), larger ones plan over
  sparse epsilon-neighbor graphs built in fixed-size blocks, and sets above
  the planner's ``approx_threshold`` route to the MinHash-LSH approximate
  graph — the dense ``(n, n)`` matrix is never materialised past the dense
  regime;
* **chunked featurization** — :meth:`FeatureStore.extract_matrix` walks its
  input in fixed-size blocks (each block is one columnar extractor call), so
  peak *working* memory is bounded by the block size; with a
  ``matrix_byte_budget`` the output matrix itself spills to an anonymous
  ``np.memmap`` once it would exceed the budget, which is what lets a
  million-record featurization run without holding the result in RAM.

The store is thread-safe: a service flushes micro-batches from its consumer
thread while HTTP handler threads read statistics.  Miss computation is
serialized under a dedicated lock (the wrapped extractors keep unsynchronized
memo caches), while lookups, stats and gets stay concurrent.
"""

from __future__ import annotations

import hashlib
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.clustering.distance import pairwise_distances
from repro.clustering.neighbors import NeighborPlanner
from repro.data.fingerprint import pair_fingerprint
from repro.data.schema import EntityPair
from repro.features.base import FeatureExtractor

#: Default bound on the number of cached feature vectors.
DEFAULT_CAPACITY = 65536

#: Default bound on the number of cached pairwise-distance matrices.
DEFAULT_DISTANCE_CACHE_SIZE = 4

#: Pairs featurized per columnar extractor call in chunked extraction.
DEFAULT_EXTRACT_BLOCK_SIZE = 8192


@dataclass(frozen=True)
class FeatureStoreStats:
    """A point-in-time snapshot of a store's counters.

    Attributes:
        size: number of cached feature vectors.
        capacity: maximum number of cached vectors (LRU eviction beyond).
        hits / misses: vector lookup outcomes across all ``extract_matrix``
            calls (one lookup per input pair).
        evictions: vectors dropped by the LRU bound so far.
        distance_hits / distance_misses: pairwise-distance matrix cache
            outcomes.
        chunked_extracts: ``extract_matrix`` calls that spanned more than one
            extraction block.
        memmap_matrices: output matrices spilled to ``np.memmap`` because
            they exceeded the store's byte budget.
        planning: routing counters of the store's
            :class:`~repro.clustering.neighbors.NeighborPlanner` (dense /
            sparse / LSH graphs built, radii sampled, edges kept, LSH
            candidate counts and oracle recall).
    """

    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    distance_hits: int
    distance_misses: int
    chunked_extracts: int = 0
    memmap_matrices: int = 0
    planning: dict[str, object] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of vector lookups served from the store (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, object]:
        """Return a plain-dict snapshot (JSON-serializable, for ``/stats``)."""
        return {
            "size": self.size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "distance_hits": self.distance_hits,
            "distance_misses": self.distance_misses,
            "chunked_extracts": self.chunked_extracts,
            "memmap_matrices": self.memmap_matrices,
            "planning": dict(self.planning),
        }


class FeatureStore:
    """Content-addressed, memoizing front end over one feature extractor.

    Args:
        extractor: the extractor computing vectors for cache misses; its
            vectorized ``extract_matrix`` is the only computation path used.
        capacity: maximum number of cached vectors; the least-recently-used
            vector is evicted on overflow.
        distance_cache_size: number of pairwise-distance matrices kept (a run
            needs one; a handful covers interleaved sessions).
        planner: dense/sparse batch-planning policy; by default a
            :class:`~repro.clustering.neighbors.NeighborPlanner` wired to this
            store's distance cache, so dense-regime planning reuses the
            per-run cached matrix.
        dense_planning_threshold: convenience override of the default
            planner's dense threshold (``0`` forces sparse planning
            everywhere — used by the equivalence tests); ignored when an
            explicit ``planner`` is supplied.
        approx_planning_threshold: convenience override of the default
            planner's ``approx_threshold`` (``0`` plus a zero dense
            threshold forces LSH planning everywhere — used by the
            forced-LSH golden tests); ignored when an explicit ``planner``
            is supplied.
        extract_block_size: pairs featurized per columnar extractor call;
            larger inputs are walked block by block (output rows are
            bit-identical to one-shot extraction — extractor rows are
            independent).
        matrix_byte_budget: when set, output matrices whose float64 bytes
            exceed this budget are allocated as anonymous ``np.memmap``
            arrays instead of RAM; ``None`` keeps everything in memory.
    """

    def __init__(
        self,
        extractor: FeatureExtractor,
        capacity: int = DEFAULT_CAPACITY,
        distance_cache_size: int = DEFAULT_DISTANCE_CACHE_SIZE,
        planner: NeighborPlanner | None = None,
        dense_planning_threshold: int | None = None,
        approx_planning_threshold: int | None = None,
        extract_block_size: int = DEFAULT_EXTRACT_BLOCK_SIZE,
        matrix_byte_budget: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if distance_cache_size < 1:
            raise ValueError(
                f"distance_cache_size must be >= 1, got {distance_cache_size}"
            )
        if extract_block_size < 1:
            raise ValueError(
                f"extract_block_size must be >= 1, got {extract_block_size}"
            )
        self.extractor = extractor
        self.capacity = capacity
        self.distance_cache_size = distance_cache_size
        self.extract_block_size = extract_block_size
        self.matrix_byte_budget = matrix_byte_budget
        if planner is None:
            planner_kwargs = {"dense_distances": self.pairwise_distances}
            if dense_planning_threshold is not None:
                planner_kwargs["dense_threshold"] = dense_planning_threshold
            if approx_planning_threshold is not None:
                planner_kwargs["approx_threshold"] = approx_planning_threshold
            planner = NeighborPlanner(**planner_kwargs)
        self.planner = planner
        self._vectors: OrderedDict[str, np.ndarray] = OrderedDict()
        self._distances: OrderedDict[tuple[str, str], np.ndarray] = OrderedDict()
        self._lock = threading.RLock()
        # Serializes extractor computation: the extractors' internal memo
        # caches (value-pair similarities, text vectors, feature hashes) are
        # not synchronized, so only one thread may compute misses at a time.
        self._compute_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._distance_hits = 0
        self._distance_misses = 0
        self._chunked_extracts = 0
        self._memmap_matrices = 0

    @property
    def dimension(self) -> int:
        """Dimensionality of the stored feature vectors."""
        return self.extractor.dimension

    @property
    def name(self) -> str:
        """Name of the wrapped extractor."""
        return self.extractor.name

    @property
    def spill_tag(self) -> str:
        """Provenance tag recorded next to vectors in service spill files.

        Combines the extractor name and its attribute schema, so a
        warm-start can reject vectors computed by a different extractor
        variant (same dimension, different metric) or over a different
        schema.  The schema is encoded as the tuple ``repr`` — an
        unambiguous quoting, so attribute names containing delimiter
        characters cannot make two different schemas collide.
        """
        attributes = tuple(getattr(self.extractor, "attributes", ()))
        return f"{self.extractor.name}/{attributes!r}"

    def __len__(self) -> int:
        with self._lock:
            return len(self._vectors)

    # -- vector store --------------------------------------------------------

    def fingerprint(self, pair: EntityPair) -> str:
        """Canonical content fingerprint of ``pair`` (the store's key)."""
        return pair_fingerprint(pair)

    def get(self, fingerprint: str) -> np.ndarray | None:
        """Return a copy of the cached vector for ``fingerprint``, if any."""
        with self._lock:
            vector = self._vectors.get(fingerprint)
            if vector is None:
                return None
            self._vectors.move_to_end(fingerprint)
            return vector.copy()

    def put(self, fingerprint: str, vector: np.ndarray) -> None:
        """Insert (or refresh) a vector, evicting the LRU entry on overflow.

        Raises:
            ValueError: if the vector's shape does not match the extractor's
                dimension (guards warm-starts against a changed schema).
        """
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected a vector of shape ({self.dimension},), "
                f"got {vector.shape}"
            )
        with self._lock:
            self._store(fingerprint, vector.copy())

    def _store(self, fingerprint: str, vector: np.ndarray) -> None:
        """Insert under the lock; the caller owns ``vector``."""
        self._vectors[fingerprint] = vector
        self._vectors.move_to_end(fingerprint)
        while len(self._vectors) > self.capacity:
            self._vectors.popitem(last=False)
            self._evictions += 1

    def _allocate_matrix(self, rows: int) -> np.ndarray:
        """The output matrix: RAM, or an anonymous memmap past the budget.

        The memmap is backed by an unlinked temporary file, so the spill
        needs no cleanup — the mapping (and its disk space) is released when
        the array is garbage collected.
        """
        if (
            self.matrix_byte_budget is not None
            and rows * self.dimension * 8 > self.matrix_byte_budget
        ):
            handle = tempfile.TemporaryFile()
            matrix = np.memmap(
                handle, dtype=np.float64, mode="w+", shape=(rows, self.dimension)
            )
            with self._lock:
                self._memmap_matrices += 1
            return matrix
        return np.empty((rows, self.dimension), dtype=float)

    def _extract_block(self, pairs: Sequence[EntityPair], out: np.ndarray) -> None:
        """Fill ``out`` with the vectors of one block of ``pairs``."""
        fingerprints = [pair_fingerprint(pair) for pair in pairs]
        missing: dict[str, EntityPair] = {}
        missing_rows: list[int] = []
        with self._lock:
            for row, (pair, fingerprint) in enumerate(zip(pairs, fingerprints)):
                vector = self._vectors.get(fingerprint)
                if vector is not None:
                    self._vectors.move_to_end(fingerprint)
                    self._hits += 1
                    out[row] = vector
                else:
                    self._misses += 1
                    missing.setdefault(fingerprint, pair)
                    missing_rows.append(row)

        if missing:
            with self._compute_lock:
                computed = self.extractor.extract_matrix(list(missing.values()))
            by_fingerprint = dict(zip(missing, computed))
            with self._lock:
                for fingerprint, vector in by_fingerprint.items():
                    self._store(fingerprint, np.array(vector, dtype=float))
                for row in missing_rows:
                    out[row] = by_fingerprint[fingerprints[row]]

    def extract_matrix(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Return the ``(n, d)`` feature matrix of ``pairs``, memoized.

        Pairs already in the store (by content fingerprint) reuse their cached
        vector; the remaining distinct pairs are featurized in columnar
        ``extract_matrix`` calls on the wrapped extractor, at most
        ``extract_block_size`` pairs per call, so working memory stays
        bounded however long the input is.  Output rows are bit-identical to
        scalar per-pair extraction (extractor rows are independent, so block
        composition cannot change them), and the matrix itself spills to an
        anonymous ``np.memmap`` when it exceeds ``matrix_byte_budget``.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros((0, self.dimension), dtype=float)
        matrix = self._allocate_matrix(len(pairs))
        block = self.extract_block_size
        if len(pairs) > block:
            with self._lock:
                self._chunked_extracts += 1
        for start in range(0, len(pairs), block):
            stop = min(start + block, len(pairs))
            self._extract_block(pairs[start:stop], matrix[start:stop])
        return matrix

    # -- pairwise distances --------------------------------------------------

    def pairwise_distances(
        self, features: np.ndarray, metric: str = "euclidean"
    ) -> np.ndarray:
        """Pairwise distance matrix of ``features``, cached by content digest.

        The cache key is a digest of the matrix bytes plus the metric, so the
        clustering-based batchers and the covering selector — which all look
        at the same question feature matrix within one run — share a single
        computation.  Returns a read-only view; callers needing to mutate it
        should copy.
        """
        features = np.ascontiguousarray(np.asarray(features, dtype=float))
        digest = hashlib.blake2b(features.tobytes(), digest_size=16)
        digest.update(str(features.shape).encode("ascii"))
        key = (digest.hexdigest(), metric)
        with self._lock:
            cached = self._distances.get(key)
            if cached is not None:
                self._distances.move_to_end(key)
                self._distance_hits += 1
                return cached
            self._distance_misses += 1
        distances = pairwise_distances(features, metric=metric)
        distances.setflags(write=False)
        with self._lock:
            self._distances[key] = distances
            self._distances.move_to_end(key)
            while len(self._distances) > self.distance_cache_size:
                self._distances.popitem(last=False)
        return distances

    # -- accounting ----------------------------------------------------------

    def stats(self) -> FeatureStoreStats:
        """Return a point-in-time snapshot of the store's counters."""
        with self._lock:
            return FeatureStoreStats(
                size=len(self._vectors),
                capacity=self.capacity,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                distance_hits=self._distance_hits,
                distance_misses=self._distance_misses,
                chunked_extracts=self._chunked_extracts,
                memmap_matrices=self._memmap_matrices,
                planning=self.planner.stats().to_dict(),
            )

    def clear(self) -> None:
        """Drop every cached vector and distance matrix (counters kept)."""
        with self._lock:
            self._vectors.clear()
            self._distances.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"FeatureStore(extractor={self.name!r}, size={stats.size}, "
            f"capacity={stats.capacity}, hit_rate={stats.hit_rate:.2f})"
        )


def create_feature_store(
    variant: str,
    attributes: tuple[str, ...],
    capacity: int = DEFAULT_CAPACITY,
    dense_planning_threshold: int | None = None,
    approx_planning_threshold: int | None = None,
    matrix_byte_budget: int | None = None,
) -> FeatureStore:
    """Build a :class:`FeatureStore` over one of the paper's extractor variants."""
    from repro.features.factory import create_feature_extractor

    return FeatureStore(
        create_feature_extractor(variant, attributes),
        capacity=capacity,
        dense_planning_threshold=dense_planning_threshold,
        approx_planning_threshold=approx_planning_threshold,
        matrix_byte_budget=matrix_byte_budget,
    )
