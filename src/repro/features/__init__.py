"""Feature extractors mapping entity-pair questions into vector spaces.

The paper's question batching and demonstration selection both operate on
feature vectors of questions (Section III-B).  Two extractor families are
implemented:

* **structure-aware** (:class:`StructureAwareExtractor`): a vector of
  per-attribute string similarities between the two entities of a pair
  (Levenshtein ratio or Jaccard), which captures attribute-matching signals;
* **semantics-based** (:class:`SemanticExtractor`): the embedding of the
  serialized pair produced by a sentence encoder.

Both expose the same interface, so the rest of the pipeline is agnostic to the
extractor choice (which is exactly what Exp-6 / Table VII varies).
"""

from repro.features.base import FeatureExtractor
from repro.features.structure_aware import StructureAwareExtractor
from repro.features.semantic import SemanticExtractor
from repro.features.factory import create_feature_extractor

__all__ = [
    "FeatureExtractor",
    "SemanticExtractor",
    "StructureAwareExtractor",
    "create_feature_extractor",
]
