"""Feature extractors mapping entity-pair questions into vector spaces.

The paper's question batching and demonstration selection both operate on
feature vectors of questions (Section III-B).  Two extractor families are
implemented:

* **structure-aware** (:class:`StructureAwareExtractor`): a vector of
  per-attribute string similarities between the two entities of a pair
  (Levenshtein ratio or Jaccard), which captures attribute-matching signals;
* **semantics-based** (:class:`SemanticExtractor`): the embedding of the
  serialized pair produced by a sentence encoder.

Both expose the same interface, so the rest of the pipeline is agnostic to the
extractor choice (which is exactly what Exp-6 / Table VII varies).

Consumers featurize through the columnar feature engine
(:class:`FeatureStore`): a content-addressed, memoizing store that computes
misses in vectorised batches and caches one pairwise-distance matrix per run.
The scalar ``extract`` path is kept as the equivalence oracle.
"""

from repro.features.base import FeatureExtractor
from repro.features.engine import FeatureStore, FeatureStoreStats, create_feature_store
from repro.features.structure_aware import StructureAwareExtractor
from repro.features.semantic import SemanticExtractor
from repro.features.factory import create_feature_extractor

__all__ = [
    "FeatureExtractor",
    "FeatureStore",
    "FeatureStoreStats",
    "SemanticExtractor",
    "StructureAwareExtractor",
    "create_feature_extractor",
    "create_feature_store",
]
