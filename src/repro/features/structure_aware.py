"""Structure-aware feature extractor (paper Section III-B, Eqs. 4-5).

For an entity pair ``(a, b)`` over ``m`` attributes, the feature vector is the
``m``-dimensional vector of per-attribute string similarities
``v = [s_1, ..., s_m]`` where ``s_i`` is the Levenshtein ratio (BatchER-LR) or
the token Jaccard similarity (BatchER-JAC) between ``a.attr_i`` and
``b.attr_i``.  Missing values are handled explicitly: a missing-vs-present
attribute contributes 0 similarity, and missing-vs-missing contributes a
neutral 0.5 (the pair gives no evidence either way on that attribute).

:meth:`StructureAwareExtractor.extract_matrix` is the columnar primary path:
each attribute column is processed at once — the column's distinct value
pairs are computed a single time and the column is filled in one vectorized
assignment — with results memoized across calls (ER attribute columns are
highly repetitive: brewery names, genres, manufacturers — so the expensive
Levenshtein dynamic program runs only on distinct value pairs; the string
similarity itself is inherently scalar).  The scalar
:meth:`~StructureAwareExtractor.extract` remains the equivalence oracle: both
paths produce bit-identical vectors.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import EntityPair
from repro.features.base import FeatureExtractor
from repro.text.similarity import get_similarity_function

#: Similarity assigned when both attribute values are missing.
BOTH_MISSING_SIMILARITY = 0.5

#: Bound on the memoized (left value, right value) -> similarity cache.
DEFAULT_VALUE_CACHE_SIZE = 262144


class StructureAwareExtractor(FeatureExtractor):
    """Per-attribute string-similarity feature extractor.

    Args:
        attributes: the shared attribute schema of the dataset; determines the
            feature order and the vector dimensionality.
        similarity: name of the string similarity function
            (``"levenshtein_ratio"`` for BatchER-LR, ``"jaccard"`` for
            BatchER-JAC, or any other registered function).
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "levenshtein_ratio",
    ) -> None:
        if not attributes:
            raise ValueError("attributes must be a non-empty tuple")
        self.attributes = tuple(attributes)
        self.similarity_name = similarity
        self._similarity = get_similarity_function(similarity)
        self.name = f"structure-{'lr' if similarity == 'levenshtein_ratio' else similarity}"
        # (left value, right value) -> similarity, shared by every attribute
        # column (the similarity function only sees the values) and kept
        # across calls.  Cleared wholesale on overflow: cheap, rare, and
        # deterministic.
        self._value_cache: dict[tuple[str | None, str | None], float] = {}

    @property
    def dimension(self) -> int:
        return len(self.attributes)

    def attribute_similarity(self, left: str | None, right: str | None) -> float:
        """Similarity of one attribute value pair, with explicit missing handling."""
        left_missing = left is None or str(left).strip() == ""
        right_missing = right is None or str(right).strip() == ""
        if left_missing and right_missing:
            return BOTH_MISSING_SIMILARITY
        if left_missing or right_missing:
            return 0.0
        return float(self._similarity(left, right))

    def _cached_similarity(self, left: str | None, right: str | None) -> float:
        """Memoized :meth:`attribute_similarity` over raw value pairs."""
        key = (left, right)
        cached = self._value_cache.get(key)
        if cached is None:
            cached = self.attribute_similarity(left, right)
            if len(self._value_cache) >= DEFAULT_VALUE_CACHE_SIZE:
                self._value_cache.clear()
            self._value_cache[key] = cached
        return cached

    def extract(self, pair: EntityPair) -> np.ndarray:
        vector = np.empty(self.dimension, dtype=float)
        for index, attribute in enumerate(self.attributes):
            vector[index] = self.attribute_similarity(
                pair.left.value(attribute), pair.right.value(attribute)
            )
        return vector

    def extract_matrix(self, pairs) -> np.ndarray:
        """Columnar featurization: one similarity column per attribute.

        Each attribute column is processed as a whole: the column's *distinct*
        value pairs are computed once (memoized across calls and columns, so
        the underlying string similarity — inherently a scalar computation —
        runs once per distinct value pair instead of once per entity pair),
        then the column is filled in a single vectorized assignment.
        Bit-identical to the scalar :meth:`extract` loop.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros((0, self.dimension), dtype=float)
        matrix = np.empty((len(pairs), self.dimension), dtype=float)
        for column, attribute in enumerate(self.attributes):
            keys = [
                (pair.left.value(attribute), pair.right.value(attribute))
                for pair in pairs
            ]
            similarities = {
                key: self._cached_similarity(*key) for key in dict.fromkeys(keys)
            }
            matrix[:, column] = [similarities[key] for key in keys]
        return matrix
