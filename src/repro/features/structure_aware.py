"""Structure-aware feature extractor (paper Section III-B, Eqs. 4-5).

For an entity pair ``(a, b)`` over ``m`` attributes, the feature vector is the
``m``-dimensional vector of per-attribute string similarities
``v = [s_1, ..., s_m]`` where ``s_i`` is the Levenshtein ratio (BatchER-LR) or
the token Jaccard similarity (BatchER-JAC) between ``a.attr_i`` and
``b.attr_i``.  Missing values are handled explicitly: a missing-vs-present
attribute contributes 0 similarity, and missing-vs-missing contributes a
neutral 0.5 (the pair gives no evidence either way on that attribute).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import EntityPair
from repro.features.base import FeatureExtractor
from repro.text.similarity import get_similarity_function

#: Similarity assigned when both attribute values are missing.
BOTH_MISSING_SIMILARITY = 0.5


class StructureAwareExtractor(FeatureExtractor):
    """Per-attribute string-similarity feature extractor.

    Args:
        attributes: the shared attribute schema of the dataset; determines the
            feature order and the vector dimensionality.
        similarity: name of the string similarity function
            (``"levenshtein_ratio"`` for BatchER-LR, ``"jaccard"`` for
            BatchER-JAC, or any other registered function).
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "levenshtein_ratio",
    ) -> None:
        if not attributes:
            raise ValueError("attributes must be a non-empty tuple")
        self.attributes = tuple(attributes)
        self.similarity_name = similarity
        self._similarity = get_similarity_function(similarity)
        self.name = f"structure-{'lr' if similarity == 'levenshtein_ratio' else similarity}"

    @property
    def dimension(self) -> int:
        return len(self.attributes)

    def attribute_similarity(self, left: str | None, right: str | None) -> float:
        """Similarity of one attribute value pair, with explicit missing handling."""
        left_missing = left is None or str(left).strip() == ""
        right_missing = right is None or str(right).strip() == ""
        if left_missing and right_missing:
            return BOTH_MISSING_SIMILARITY
        if left_missing or right_missing:
            return 0.0
        return float(self._similarity(left, right))

    def extract(self, pair: EntityPair) -> np.ndarray:
        vector = np.empty(self.dimension, dtype=float)
        for index, attribute in enumerate(self.attributes):
            vector[index] = self.attribute_similarity(
                pair.left.value(attribute), pair.right.value(attribute)
            )
        return vector
