"""Circuit breaker: availability gating around a flaky backend.

The breaker is a small state machine shared by every caller of one backend
(per-engine instances — a dead OpenAI endpoint must not gate an Anthropic
one):

- **closed** — requests flow; failures are recorded.  The breaker trips to
  *open* on either ``failure_threshold`` consecutive retryable failures or
  an error rate over a sliding window (``error_rate_threshold`` across the
  last ``window_seconds``, once at least ``min_window_requests`` outcomes
  are in the window).
- **open** — :meth:`CircuitBreaker.acquire` fast-fails with
  :class:`CircuitOpenError` instead of letting callers pay a full retry
  ladder against a dead backend.  After ``cooldown_seconds`` the breaker
  moves to *half-open*.
- **half-open** — up to ``half_open_probes`` concurrent probe requests are
  admitted; ``success_threshold`` consecutive probe successes close the
  breaker, any probe failure re-opens it (and restarts the cooldown).

Time is read through a duck-typed clock (anything with a ``monotonic()``
method, defaulting to :func:`time.monotonic`), so the whole state machine
is deterministic under :class:`repro.engines.faults.FakeClock`.  This module
deliberately imports nothing from :mod:`repro.engines` — the transport layer
imports *us*, and :class:`CircuitOpenError` therefore derives from
:class:`RuntimeError` with a ``retryable = False`` attribute rather than
from ``TransportError``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Mapping

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]

#: Canonical state names, also used as the ``state`` label / span attribute.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Stable numeric encoding for the ``repro_breaker_state`` gauge
#: (closed=0, open=1, half_open=2 — "anything non-zero needs attention").
_STATE_CODES = {STATE_CLOSED: 0, STATE_OPEN: 1, STATE_HALF_OPEN: 2}


class CircuitOpenError(RuntimeError):
    """Fast-fail raised when the breaker refuses a request.

    Deliberately *not* a ``TransportError`` subclass (this package sits
    below the transport layer), but it carries the same ``retryable``
    discriminator so retry ladders treat it as terminal: retrying against
    a gated backend is exactly what the breaker exists to prevent.

    Attributes:
        retry_after: seconds until the breaker will admit a probe —
            surfaced as the HTTP ``Retry-After`` hint by the serving layer.
    """

    retryable: bool = False

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one :class:`CircuitBreaker`.

    Attributes:
        failure_threshold: consecutive retryable failures that trip the
            breaker from closed to open.
        window_seconds: length of the sliding outcome window used by the
            error-rate trip condition.
        error_rate_threshold: failure fraction over the window that trips
            the breaker (only once ``min_window_requests`` outcomes are in
            the window, so a single early failure cannot trip it).
        min_window_requests: minimum windowed outcomes before the error-rate
            condition is considered.
        cooldown_seconds: how long the breaker stays open before admitting
            half-open probes.
        half_open_probes: concurrent probe requests admitted in half-open.
        success_threshold: consecutive probe successes required to close.
    """

    failure_threshold: int = 5
    window_seconds: float = 30.0
    error_rate_threshold: float = 0.5
    min_window_requests: int = 20
    cooldown_seconds: float = 5.0
    half_open_probes: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {self.window_seconds}")
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ValueError(
                f"error_rate_threshold must be in (0, 1], got {self.error_rate_threshold}"
            )
        if self.min_window_requests < 1:
            raise ValueError(
                f"min_window_requests must be >= 1, got {self.min_window_requests}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )
        if self.success_threshold < 1:
            raise ValueError(
                f"success_threshold must be >= 1, got {self.success_threshold}"
            )

    def with_overrides(self, **overrides: Any) -> "BreakerConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict snapshot of every field."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BreakerConfig":
        """Rebuild a config from a :meth:`to_dict` snapshot."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown breaker config fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


class CircuitBreaker:
    """Thread-safe closed → open → half-open availability gate.

    Callers bracket each logical request with :meth:`acquire` (which
    fast-fails with :class:`CircuitOpenError` while open) and exactly one of
    :meth:`record_success` / :meth:`record_failure`.

    Args:
        config: trip/cooldown/probe tunables.
        clock: any object with a ``monotonic() -> float`` method; defaults
            to the system monotonic clock.
        name: label used in error messages and stats (e.g. the engine name).
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Any | None = None,
        name: str = "backend",
    ) -> None:
        self.config = config or BreakerConfig()
        self.name = name
        monotonic: Callable[[], float]
        if clock is None:
            import time

            monotonic = time.monotonic
        else:
            monotonic = clock.monotonic
        self._monotonic = monotonic
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        # Sliding outcome window: (monotonic timestamp, failed?) pairs.
        self._window: deque[tuple[float, bool]] = deque()
        # Monotone counters for stats() / metrics.
        self._trips = 0
        self._fast_failures = 0
        self._probes = 0
        self._open_seconds_total = 0.0

    # -- state transitions (call with self._lock held) -----------------------

    def _trip(self, now: float) -> None:
        self._state = STATE_OPEN
        self._opened_at = now
        self._trips += 1
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0

    def _close(self, now: float) -> None:
        if self._opened_at is not None:
            self._open_seconds_total += now - self._opened_at
        self._state = STATE_CLOSED
        self._opened_at = None
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._window.clear()

    def _prune_window(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def _maybe_half_open(self, now: float) -> None:
        if (
            self._state == STATE_OPEN
            and self._opened_at is not None
            and now - self._opened_at >= self.config.cooldown_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    # -- public API -----------------------------------------------------------

    def acquire(self) -> None:
        """Admit one request, or fast-fail with :class:`CircuitOpenError`."""
        now = self._monotonic()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == STATE_CLOSED:
                return
            if self._state == STATE_HALF_OPEN:
                if self._probes_in_flight < self.config.half_open_probes:
                    self._probes_in_flight += 1
                    self._probes += 1
                    return
                self._fast_failures += 1
                raise CircuitOpenError(
                    f"circuit '{self.name}' is half-open with all probe slots taken",
                    retry_after=self._retry_after_locked(now),
                )
            self._fast_failures += 1
            raise CircuitOpenError(
                f"circuit '{self.name}' is open "
                f"(backend gated for {self._retry_after_locked(now):.3f}s more)",
                retry_after=self._retry_after_locked(now),
            )

    def record_success(self) -> None:
        """Report that an admitted request succeeded."""
        now = self._monotonic()
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.success_threshold:
                    self._close(now)
                return
            if self._state == STATE_CLOSED:
                self._consecutive_failures = 0
                self._prune_window(now)
                self._window.append((now, False))

    def record_failure(self) -> None:
        """Report that an admitted request failed (retryably)."""
        now = self._monotonic()
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                # A failed probe re-opens immediately and restarts cooldown.
                self._trip(now)
                return
            if self._state != STATE_CLOSED:
                return
            self._consecutive_failures += 1
            self._prune_window(now)
            self._window.append((now, True))
            if self._consecutive_failures >= self.config.failure_threshold:
                self._trip(now)
                return
            if len(self._window) >= self.config.min_window_requests:
                failures = sum(1 for _, failed in self._window if failed)
                if failures / len(self._window) >= self.config.error_rate_threshold:
                    self._trip(now)

    # -- introspection --------------------------------------------------------

    def _retry_after_locked(self, now: float) -> float:
        if self._state == STATE_HALF_OPEN:
            # Probes are in flight; callers should retry about a cooldown out.
            return self.config.cooldown_seconds
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.config.cooldown_seconds - (now - self._opened_at))

    @property
    def state(self) -> str:
        """Current state name (cooldown expiry applied lazily)."""
        now = self._monotonic()
        with self._lock:
            self._maybe_half_open(now)
            return self._state

    def state_code(self) -> int:
        """Numeric state for the gauge: closed=0, open=1, half_open=2."""
        return _STATE_CODES[self.state]

    @property
    def retry_after(self) -> float:
        """Seconds until the breaker will next admit a request (0 if closed)."""
        now = self._monotonic()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == STATE_CLOSED:
                return 0.0
            if self._state == STATE_HALF_OPEN:
                return 0.0 if self._probes_in_flight < self.config.half_open_probes else self.config.cooldown_seconds
            return self._retry_after_locked(now)

    @property
    def trips(self) -> int:
        """Times the breaker transitioned to open (probe re-opens included)."""
        with self._lock:
            return self._trips

    @property
    def fast_failures(self) -> int:
        """Requests refused without touching the backend."""
        with self._lock:
            return self._fast_failures

    def open_seconds_total(self) -> float:
        """Cumulative seconds spent open/half-open (live span included)."""
        now = self._monotonic()
        with self._lock:
            total = self._open_seconds_total
            if self._opened_at is not None:
                total += now - self._opened_at
            return total

    def stats(self) -> dict[str, object]:
        """JSON-serializable snapshot (folded into ``/stats``)."""
        now = self._monotonic()
        with self._lock:
            self._maybe_half_open(now)
            open_seconds = self._open_seconds_total
            if self._opened_at is not None:
                open_seconds += now - self._opened_at
            return {
                "name": self.name,
                "state": self._state,
                "trips": self._trips,
                "fast_failures": self._fast_failures,
                "probes": self._probes,
                "consecutive_failures": self._consecutive_failures,
                "open_seconds_total": round(open_seconds, 6),
                "retry_after": round(self._retry_after_locked(now), 6)
                if self._state != STATE_CLOSED
                else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(name={self.name!r}, state={self.state!r})"
