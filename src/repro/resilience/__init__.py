"""Resilience primitives: circuit breaking and deadline budgets.

This package is the availability layer under the engines and the serving
front end: a :class:`CircuitBreaker` gates a flaky backend (fast-fail while
open, half-open probes to recover) and a :class:`DeadlineBudget` bounds the
total wall-clock a logical request may spend, retry backoff included.

It is deliberately dependency-free (stdlib only, duck-typed clocks) so the
transport layer can import it without cycles; see the README "Resilience"
section for how the pieces compose across transport, serving and the run
engine.
"""

from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.deadline import (
    DeadlineBudget,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineBudget",
    "DeadlineExceeded",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "current_deadline",
    "deadline_scope",
]
