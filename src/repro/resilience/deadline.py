"""Deadline budgets: a total wall-clock allowance per logical request.

A :class:`DeadlineBudget` is created once at the edge (e.g. when the service
starts resolving a flush) and threaded implicitly through the call stack via
a :mod:`contextvars` context variable, so the retry ladder deep inside the
transport can ask "how much time is left?" without every intermediate layer
growing a ``deadline`` parameter.  The transport uses it to refuse a backoff
sleep that would overshoot the budget, raising a typed
:class:`DeadlineExceeded` instead of silently blowing the latency SLO.

Like the rest of :mod:`repro.resilience`, this module is stdlib-only and
clock-agnostic: pass anything with a ``monotonic() -> float`` method to run
the budget on virtual time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

__all__ = [
    "DeadlineBudget",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
]


class DeadlineExceeded(RuntimeError):
    """A logical request ran out of its wall-clock budget.

    Carries ``retryable = False`` so retry ladders treat it as terminal:
    the budget is for the *logical* request, and it is already spent.

    Attributes:
        budget_seconds: the total allowance that was exceeded.
        elapsed_seconds: wall-clock consumed when the budget tripped.
    """

    retryable: bool = False

    def __init__(
        self, message: str, budget_seconds: float = 0.0, elapsed_seconds: float = 0.0
    ) -> None:
        super().__init__(message)
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class DeadlineBudget:
    """Wall-clock budget for one logical request.

    Args:
        budget_seconds: total allowance in seconds (> 0).
        clock: any object with a ``monotonic() -> float`` method; defaults
            to the system monotonic clock.
    """

    def __init__(self, budget_seconds: float, clock: Any | None = None) -> None:
        if budget_seconds <= 0:
            raise ValueError(f"budget_seconds must be > 0, got {budget_seconds}")
        monotonic: Callable[[], float]
        monotonic = time.monotonic if clock is None else clock.monotonic
        self.budget_seconds = float(budget_seconds)
        self._monotonic = monotonic
        self._started_at = monotonic()

    def elapsed(self) -> float:
        """Seconds consumed since the budget was created."""
        return self._monotonic() - self._started_at

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget_seconds - self.elapsed())

    @property
    def expired(self) -> bool:
        """Whether the budget has been fully consumed."""
        return self.elapsed() >= self.budget_seconds

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed()
        if elapsed >= self.budget_seconds:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_seconds:.3f}s deadline budget "
                f"({elapsed:.3f}s elapsed)",
                budget_seconds=self.budget_seconds,
                elapsed_seconds=elapsed,
            )

    def allows(self, seconds: float) -> bool:
        """Whether spending ``seconds`` more would stay within the budget."""
        return seconds < self.remaining()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeadlineBudget(budget_seconds={self.budget_seconds}, "
            f"remaining={self.remaining():.3f})"
        )


#: The ambient deadline of the current logical request (``None`` = no budget).
_CURRENT_DEADLINE: ContextVar[DeadlineBudget | None] = ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> DeadlineBudget | None:
    """The deadline budget governing the current context, if any."""
    return _CURRENT_DEADLINE.get()


@contextmanager
def deadline_scope(budget: DeadlineBudget | None) -> Iterator[DeadlineBudget | None]:
    """Install ``budget`` as the ambient deadline for the dynamic extent.

    ``None`` explicitly clears any inherited deadline, which matters when a
    worker thread pool reuses contexts across unrelated requests.
    """
    token = _CURRENT_DEADLINE.set(budget)
    try:
        yield budget
    finally:
        _CURRENT_DEADLINE.reset(token)
