"""Monetary cost model (paper Section VI-A).

Two cost components are tracked:

* **API cost** — dollars paid per token to the LLM provider, computed from the
  usage tracker of the LLM client and the model's pricing entry;
* **labeling cost** — dollars paid to crowd workers to label the selected
  demonstrations ($0.008 per pair, derived from the paper's AMT estimate of
  $0.08 per ten-pair labeling task).
"""

from repro.cost.labeling_cost import LABEL_COST_PER_PAIR, labeling_cost
from repro.cost.api_cost import api_cost
from repro.cost.tracker import CostBreakdown, CostTracker

__all__ = [
    "CostBreakdown",
    "CostTracker",
    "LABEL_COST_PER_PAIR",
    "api_cost",
    "labeling_cost",
]
