"""Demonstration labeling cost (crowdsourced annotation).

The paper prices labeling at the AMT rate of $0.08 per labeling task and groups
ten entity pairs per task (following CrowdER), i.e. $0.008 per labeled pair.
"""

from __future__ import annotations

#: Dollar cost of labeling one entity pair.
LABEL_COST_PER_PAIR = 0.008

#: Number of pairs grouped into one crowdsourcing task (CrowdER-style batching).
PAIRS_PER_LABELING_TASK = 10

#: Dollar cost of one crowdsourcing labeling task.
COST_PER_LABELING_TASK = 0.08


def labeling_cost(num_labeled_pairs: int) -> float:
    """Dollar cost of labeling ``num_labeled_pairs`` entity pairs.

    Raises:
        ValueError: if the count is negative.
    """
    if num_labeled_pairs < 0:
        raise ValueError(f"num_labeled_pairs must be >= 0, got {num_labeled_pairs}")
    return num_labeled_pairs * LABEL_COST_PER_PAIR
