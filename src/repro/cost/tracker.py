"""Cost tracking across a run: API cost + labeling cost."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.labeling_cost import labeling_cost
from repro.llm.base import UsageTracker
from repro.llm.pricing import get_pricing


@dataclass(frozen=True)
class CostBreakdown:
    """Monetary cost of one run, split by component (all in dollars)."""

    api_cost: float
    labeling_cost: float
    prompt_tokens: int = 0
    completion_tokens: int = 0
    num_llm_calls: int = 0
    num_labeled_pairs: int = 0

    @property
    def total_cost(self) -> float:
        """API cost plus labeling cost."""
        return self.api_cost + self.labeling_cost

    def to_dict(self) -> dict[str, float | int]:
        """Return a plain-dict snapshot (JSON-serializable, for reports/HTTP)."""
        return {
            "api_cost": self.api_cost,
            "labeling_cost": self.labeling_cost,
            "total_cost": self.total_cost,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "num_llm_calls": self.num_llm_calls,
            "num_labeled_pairs": self.num_labeled_pairs,
        }

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        """Component-wise sum of two breakdowns (aggregate costs across runs)."""
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            api_cost=self.api_cost + other.api_cost,
            labeling_cost=self.labeling_cost + other.labeling_cost,
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
            num_llm_calls=self.num_llm_calls + other.num_llm_calls,
            num_labeled_pairs=self.num_labeled_pairs + other.num_labeled_pairs,
        )

    def __radd__(self, other: object) -> "CostBreakdown":
        """Support ``sum(breakdowns)`` (whose implicit start value is ``0``)."""
        if other == 0:
            return self
        return NotImplemented

    @classmethod
    def zero(cls) -> "CostBreakdown":
        """The additive identity (an all-zero breakdown)."""
        return cls(api_cost=0.0, labeling_cost=0.0)


class CostTracker:
    """Accumulates the monetary cost of one framework run.

    Args:
        model: LLM model name, used to price token usage.
    """

    def __init__(self, model: str) -> None:
        self.model = model
        self._pricing = get_pricing(model)
        self._num_labeled_pairs = 0
        self._usage: UsageTracker | None = None

    def record_labeled_pairs(self, count: int) -> None:
        """Record that ``count`` additional demonstrations were manually labeled."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._num_labeled_pairs += count

    def attach_usage(self, usage: UsageTracker) -> None:
        """Attach the LLM client's usage tracker (read at report time)."""
        self._usage = usage

    def breakdown(self) -> CostBreakdown:
        """Return the current cost breakdown."""
        prompt_tokens = self._usage.prompt_tokens if self._usage else 0
        completion_tokens = self._usage.completion_tokens if self._usage else 0
        num_calls = self._usage.num_calls if self._usage else 0
        return CostBreakdown(
            api_cost=self._pricing.cost(prompt_tokens, completion_tokens),
            labeling_cost=labeling_cost(self._num_labeled_pairs),
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            num_llm_calls=num_calls,
            num_labeled_pairs=self._num_labeled_pairs,
        )
