"""API cost: dollars paid to the LLM provider for token usage."""

from __future__ import annotations

from repro.llm.base import UsageTracker
from repro.llm.pricing import get_pricing


def api_cost(model: str, usage: UsageTracker) -> float:
    """Dollar cost of all calls accumulated in ``usage`` under ``model``'s pricing."""
    pricing = get_pricing(model)
    return pricing.cost(usage.prompt_tokens, usage.completion_tokens)
