"""Developer tuning harness: quick shape check across datasets and strategies.

Not part of the library API; used while calibrating the simulated LLM and the
synthetic datasets so that the reproduced experiments have the paper's shape.
Installed as the ``repro-tune-check`` console script; also runnable as
``python -m repro.experiments.tune_check`` or via ``scripts/tune_check.py``.
"""

from __future__ import annotations

import argparse
import time

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.core.standard import StandardPromptingER
from repro.data.registry import load_dataset
from repro.llm.executors import create_executor

#: Per-dataset scale factors keeping the check fast but representative.
SCALES = {
    "wa": 0.06, "ab": 0.06, "ag": 0.06, "ds": 0.025, "da": 0.05,
    "fz": 1.0, "ia": 1.0, "beer": 1.0,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", nargs="*", default=list(SCALES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs", type=int, default=1, help="concurrent LLM calls per run"
    )
    args = parser.parse_args(argv)
    executor = create_executor(args.jobs)

    start = time.perf_counter()
    for name in args.datasets:
        dataset = load_dataset(name, seed=args.seed, scale=SCALES[name])
        config = BatcherConfig(seed=args.seed)

        def run(**overrides):
            return BatchER(config.with_overrides(**overrides), executor=executor).run(dataset)

        standard = StandardPromptingER(config).run(dataset)
        fixed_random = run(batching="random", selection="fixed")
        diverse_cover = run(batching="diverse", selection="covering")
        similar_fixed = run(batching="similar", selection="fixed")
        topkq = run(batching="diverse", selection="topk-question")
        print(
            f"{name:5s} n={standard.num_questions:4d} | "
            f"std F1={standard.metrics.f1:5.1f} P={standard.metrics.precision:4.1f} api={standard.cost.api_cost:6.3f} | "
            f"rand+fix F1={fixed_random.metrics.f1:5.1f} api={fixed_random.cost.api_cost:6.3f} | "
            f"sim+fix F1={similar_fixed.metrics.f1:5.1f} | "
            f"div+tkq F1={topkq.metrics.f1:5.1f} lab={topkq.cost.labeling_cost:6.3f} | "
            f"div+cov F1={diverse_cover.metrics.f1:5.1f} P={diverse_cover.metrics.precision:4.1f} "
            f"lab={diverse_cover.cost.labeling_cost:6.3f}"
        )
    print(f"elapsed {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
