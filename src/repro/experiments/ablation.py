"""Ablations over BatchER's own design parameters (not in the paper's tables).

Two ablations that DESIGN.md calls out:

* the covering distance threshold percentile (the paper fixes it at the 8th
  percentile and argues smaller thresholds raise labeling cost while larger
  ones degrade accuracy) — :func:`run_threshold_ablation`;
* the batch size (the paper fixes 8 to stay under the context limit; larger
  batches amortise the prompt further but risk long-context degradation) —
  :func:`run_batch_size_ablation`.
"""

from __future__ import annotations

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.experiments.settings import ExperimentSettings

#: Covering threshold percentiles swept by the threshold ablation.
DEFAULT_THRESHOLD_PERCENTILES = (2.0, 5.0, 8.0, 15.0, 30.0)

#: Batch sizes swept by the batch-size ablation.
DEFAULT_BATCH_SIZES = (2, 4, 8, 16)


def run_threshold_ablation(
    settings: ExperimentSettings | None = None,
    percentiles: tuple[float, ...] = DEFAULT_THRESHOLD_PERCENTILES,
    dataset_name: str = "wa",
) -> list[dict[str, object]]:
    """Sweep the covering threshold percentile on one dataset.

    Smaller percentiles mean a tighter covering radius, hence more labeled
    demonstrations (higher labeling cost) and usually slightly higher accuracy.
    """
    settings = settings or ExperimentSettings()
    dataset = settings.load(dataset_name)
    rows = []
    for percentile in percentiles:
        config = BatcherConfig(
            batching="diverse",
            selection="covering",
            threshold_percentile=percentile,
            model=settings.model,
            batch_size=settings.batch_size,
            num_demonstrations=settings.num_demonstrations,
            seed=settings.seeds[0],
            max_questions=settings.max_questions,
            engine=settings.engine,
        )
        result = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
        rows.append(
            {
                "Dataset": dataset.name,
                "Threshold percentile": percentile,
                "F1": round(result.metrics.f1, 2),
                "Labeled demos": result.cost.num_labeled_pairs,
                "Label ($)": round(result.cost.labeling_cost, 3),
                "API ($)": round(result.cost.api_cost, 3),
            }
        )
    return rows


def run_batch_size_ablation(
    settings: ExperimentSettings | None = None,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    dataset_name: str = "wa",
) -> list[dict[str, object]]:
    """Sweep the batch size on one dataset: API cost falls as the batch grows."""
    settings = settings or ExperimentSettings()
    dataset = settings.load(dataset_name)
    rows = []
    for batch_size in batch_sizes:
        config = BatcherConfig(
            batching="diverse",
            selection="covering",
            model=settings.model,
            batch_size=batch_size,
            num_demonstrations=settings.num_demonstrations,
            seed=settings.seeds[0],
            max_questions=settings.max_questions,
            engine=settings.engine,
        )
        result = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
        rows.append(
            {
                "Dataset": dataset.name,
                "Batch size": batch_size,
                "F1": round(result.metrics.f1, 2),
                "LLM calls": result.cost.num_llm_calls,
                "API ($)": round(result.cost.api_cost, 3),
                "Label ($)": round(result.cost.labeling_cost, 3),
            }
        )
    return rows
