"""Exp-3: BatchER vs PLM-based approaches (Figure 7).

For each dataset, the PLM-style baselines (Ditto, JointBERT, RobEM) are trained
on an increasing number of labeled pairs and evaluated on the test split; the
BatchER result (diversity batching + covering selection, the paper's best
design choice) is shown as the reference line that the baselines need hundreds
to thousands of labels to reach.
"""

from __future__ import annotations

from repro.baselines.plm import DittoMatcher, JointBertMatcher, RobEMMatcher
from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.experiments.settings import ExperimentSettings

#: Default training-set sizes swept in Figure 7 (relative to the train split size).
DEFAULT_TRAIN_FRACTIONS = (0.02, 0.05, 0.125, 0.25, 0.5, 1.0)

#: The PLM baselines compared in the paper's Figure 7.
PLM_BASELINES = {
    "Ditto": DittoMatcher,
    "JointBert": JointBertMatcher,
    "RobEM": RobEMMatcher,
}


def run_exp3_plm_comparison(
    settings: ExperimentSettings | None = None,
    train_fractions: tuple[float, ...] = DEFAULT_TRAIN_FRACTIONS,
) -> list[dict[str, object]]:
    """Reproduce Figure 7: F1 vs number of training samples per baseline and dataset.

    Returns one row per (dataset, method, train size).  BatchER rows carry the
    total number of labels it consumed (the covering demonstrations) in the
    ``train samples`` column, so the cost comparison is direct.
    """
    settings = settings or ExperimentSettings()
    seed = settings.seeds[0]
    rows = []
    for name in settings.datasets:
        dataset = settings.load(name)
        train_size = len(dataset.splits.train)

        config = BatcherConfig(
            batching="diverse",
            selection="covering",
            model=settings.model,
            batch_size=settings.batch_size,
            num_demonstrations=settings.num_demonstrations,
            seed=seed,
            max_questions=settings.max_questions,
            engine=settings.engine,
        )
        batcher_result = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
        rows.append(
            {
                "Dataset": dataset.name,
                "Method": "BatchER",
                "Train samples": batcher_result.cost.num_labeled_pairs,
                "F1": round(batcher_result.metrics.f1, 2),
                "Total cost ($)": round(batcher_result.cost.total_cost, 3),
            }
        )

        for method_name, matcher_class in PLM_BASELINES.items():
            for fraction in train_fractions:
                num_samples = max(10, round(train_size * fraction))
                matcher = matcher_class(seed=seed)
                result = matcher.evaluate(dataset, num_samples)
                rows.append(
                    {
                        "Dataset": dataset.name,
                        "Method": method_name,
                        "Train samples": result.cost.num_labeled_pairs,
                        "F1": round(result.metrics.f1, 2),
                        "Total cost ($)": round(result.cost.total_cost, 3),
                    }
                )
    return rows


def crossover_summary(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """For each dataset and baseline, the training size needed to reach BatchER's F1.

    Reports ``None`` when the baseline never reaches BatchER's F1 within the
    swept training sizes (which happens on the small datasets, as in the paper).
    """
    summary = []
    datasets = sorted({row["Dataset"] for row in rows})
    for dataset in datasets:
        dataset_rows = [row for row in rows if row["Dataset"] == dataset]
        batcher_f1 = next(row["F1"] for row in dataset_rows if row["Method"] == "BatchER")
        for method in PLM_BASELINES:
            curve = sorted(
                (row for row in dataset_rows if row["Method"] == method),
                key=lambda row: row["Train samples"],
            )
            needed = next(
                (row["Train samples"] for row in curve if row["F1"] >= batcher_f1), None
            )
            summary.append(
                {
                    "Dataset": dataset,
                    "Baseline": method,
                    "BatchER F1": batcher_f1,
                    "Samples to reach BatchER": needed if needed is not None else "never",
                }
            )
    return summary
