"""Experiment runners reproducing every table and figure of the paper.

Each ``run_*`` function returns plain list-of-dict rows shaped like the paper's
corresponding table (or figure series), so they can be printed with
:func:`repro.evaluation.report.format_table`, asserted on in tests, and timed
in the benchmark harness.

| Paper artifact | Runner |
|----------------|--------|
| Table II (dataset statistics)            | :func:`run_dataset_statistics` |
| Table III + Figure 6 (batch vs standard) | :func:`run_exp1_standard_vs_batch` |
| Table IV (design space)                  | :func:`run_exp2_design_space` |
| Figure 7 (vs PLM baselines)              | :func:`run_exp3_plm_comparison` |
| Table V (vs ManualPrompt)                | :func:`run_exp4_manual_prompt` |
| Table VI (underlying LLMs)               | :func:`run_exp5_llms` |
| Table VII (feature extractors)           | :func:`run_exp6_feature_extractors` |
| Ablations (ours)                         | :mod:`repro.experiments.ablation` |
"""

from repro.experiments.settings import ExperimentSettings
from repro.experiments.datasets_table import run_dataset_statistics
from repro.experiments.exp1_standard_vs_batch import run_exp1_standard_vs_batch, run_figure6_precision_recall
from repro.experiments.exp2_design_space import run_exp2_design_space
from repro.experiments.exp3_plm_comparison import run_exp3_plm_comparison
from repro.experiments.exp4_manual_prompt import run_exp4_manual_prompt
from repro.experiments.exp5_llms import run_exp5_llms
from repro.experiments.exp6_feature_extractors import run_exp6_feature_extractors
from repro.experiments.ablation import run_threshold_ablation, run_batch_size_ablation

__all__ = [
    "ExperimentSettings",
    "run_batch_size_ablation",
    "run_dataset_statistics",
    "run_exp1_standard_vs_batch",
    "run_exp2_design_space",
    "run_exp3_plm_comparison",
    "run_exp4_manual_prompt",
    "run_exp5_llms",
    "run_exp6_feature_extractors",
    "run_figure6_precision_recall",
    "run_threshold_ablation",
]
