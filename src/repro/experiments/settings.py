"""Shared experiment settings.

The paper runs every experiment on the full Table II datasets against real LLM
APIs.  Offline, the same experiments run against the simulated LLM; the only
practical difference is runtime, so the settings expose a ``scale`` knob
(dataset size multiplier) and a ``max_questions`` cap.  Defaults are sized so
the whole benchmark suite finishes in minutes on a laptop; setting
``scale=1.0`` and ``max_questions=None`` reproduces the paper-scale runs.

Environment overrides (picked up by :meth:`ExperimentSettings.from_env`):

* ``REPRO_EXP_SCALE`` — dataset scale multiplier (default 0.05).
* ``REPRO_EXP_MAX_QUESTIONS`` — per-dataset cap on evaluated test questions.
* ``REPRO_EXP_DATASETS`` — comma-separated dataset codes.
* ``REPRO_EXP_JOBS`` — concurrent LLM calls per run (default 1 = serial).
* ``REPRO_EXP_SHARDS`` — shards per framework run (default 1; with ``jobs``
  > 1, shards execute concurrently).  Results are identical regardless.
* ``REPRO_EXP_CHECKPOINT_DIR`` — per-shard checkpoint root; re-running after
  a kill resumes with zero repeated LLM calls.
* ``REPRO_EXP_ENGINE`` — LLM engine backend (default ``simulated``; real
  backends like ``openai`` require the provider's API key in the
  environment — see the README's "Real LLM backends" section).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.data.registry import available_datasets, load_dataset
from repro.data.schema import Dataset
from repro.llm.executors import ExecutionBackend, create_executor

#: Default dataset scale used by tests and benchmarks (5% of Table II sizes).
DEFAULT_SCALE = 0.05
#: Default cap on the number of evaluated questions per dataset.
DEFAULT_MAX_QUESTIONS = 160
#: Minimum number of candidate pairs per dataset after scaling (small datasets
#: such as Beer / IA / FZ are kept at or near full size; only the large ones
#: are scaled down).
DEFAULT_MIN_PAIRS = 400


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment runners.

    Attributes:
        datasets: dataset codes to evaluate (default: all eight).
        scale: dataset size multiplier relative to Table II.
        max_questions: cap on evaluated test questions per dataset (``None`` =
            whole test split).
        min_pairs: per-dataset floor on the number of candidate pairs after
            scaling — keeps the small benchmarks (Beer, IA, FZ) at realistic
            sizes while the large ones are scaled down.
        seeds: seeds used where the paper reports mean +/- std over runs.
        data_seed: seed of the synthetic dataset generator.
        model: default underlying LLM.
        batch_size: questions per batch.
        num_demonstrations: per-batch demonstration budget.
        jobs: concurrent LLM calls per run (1 = serial dispatch).  Results are
            identical regardless of this knob — it only changes wall-clock.
        shards: shards per framework run (1 = the historical single-pass
            path).  Sharded runs produce byte-identical results; with
            ``jobs`` > 1 the shards execute concurrently.
        checkpoint_dir: per-shard checkpoint root for framework runs
            (``None`` disables persistence).  Experiment runs are namespaced
            by dataset + configuration, so one directory serves the whole
            report — re-running after a kill resumes with zero repeated LLM
            calls.
        engine: LLM engine backend (``"simulated"`` by default; one of
            :func:`repro.engines.available_engines`).
    """

    datasets: tuple[str, ...] = field(default_factory=available_datasets)
    scale: float = DEFAULT_SCALE
    max_questions: int | None = DEFAULT_MAX_QUESTIONS
    min_pairs: int = DEFAULT_MIN_PAIRS
    seeds: tuple[int, ...] = (1, 2, 3)
    data_seed: int = 7
    model: str = "gpt-3.5-03"
    batch_size: int = 8
    num_demonstrations: int = 8
    jobs: int = 1
    shards: int = 1
    checkpoint_dir: str | None = None
    engine: str = "simulated"

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Build settings from environment variables (fall back to defaults)."""
        scale = float(os.environ.get("REPRO_EXP_SCALE", DEFAULT_SCALE))
        max_questions_raw = os.environ.get("REPRO_EXP_MAX_QUESTIONS", str(DEFAULT_MAX_QUESTIONS))
        max_questions = None if max_questions_raw.lower() in ("none", "0") else int(max_questions_raw)
        datasets_raw = os.environ.get("REPRO_EXP_DATASETS", "")
        datasets = (
            tuple(code.strip().lower() for code in datasets_raw.split(",") if code.strip())
            or available_datasets()
        )
        jobs = int(os.environ.get("REPRO_EXP_JOBS", "1"))
        shards = int(os.environ.get("REPRO_EXP_SHARDS", "1"))
        checkpoint_dir = os.environ.get("REPRO_EXP_CHECKPOINT_DIR") or None
        engine = os.environ.get("REPRO_EXP_ENGINE", "simulated").strip().lower()
        return cls(
            datasets=datasets,
            scale=scale,
            max_questions=max_questions,
            jobs=jobs,
            shards=shards,
            checkpoint_dir=checkpoint_dir,
            engine=engine,
        )

    def executor(self) -> ExecutionBackend:
        """Execution backend for LLM dispatch (serial unless ``jobs`` > 1)."""
        return create_executor(self.jobs)

    def run_kwargs(self) -> dict[str, object]:
        """Keyword arguments for ``BatchER.run`` reflecting the scale-out knobs.

        Empty when neither sharding nor checkpointing is requested, so callers
        stay on the historical single-pass path by default.
        """
        kwargs: dict[str, object] = {}
        if self.shards > 1:
            kwargs["shards"] = self.shards
        if self.checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = self.checkpoint_dir
        return kwargs

    def effective_scale(self, name: str) -> float:
        """Scale actually used for ``name``: the configured scale, floored so the
        dataset keeps at least ``min_pairs`` candidate pairs (capped at 1.0)."""
        from repro.data.specs import get_spec

        spec = get_spec(name)
        floor = min(1.0, self.min_pairs / spec.num_pairs)
        return max(self.scale, floor)

    def load(self, name: str) -> Dataset:
        """Load one of the configured datasets at the configured scale."""
        return load_dataset(name, seed=self.data_seed, scale=self.effective_scale(name))

    def load_all(self) -> list[Dataset]:
        """Load every configured dataset."""
        return [self.load(name) for name in self.datasets]
