"""Exp-2: exploring the design space (Table IV).

All 12 combinations of {random, similarity, diversity} question batching and
{fixed, top-k-batch, top-k-question, covering} demonstration selection are
evaluated on matching F1, API cost and labeling cost.
"""

from __future__ import annotations

from repro.batching.factory import BATCHING_STRATEGIES
from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.experiments.settings import ExperimentSettings
from repro.selection.factory import SELECTION_STRATEGIES

#: Human-readable labels for table columns, keyed by strategy code.
BATCHING_LABELS = {"random": "Random", "similar": "Similarity", "diverse": "Diversity"}
SELECTION_LABELS = {
    "fixed": "Fix",
    "topk-batch": "Topk-batch",
    "topk-question": "Topk-question",
    "covering": "Cover",
}


def run_exp2_design_space(
    settings: ExperimentSettings | None = None,
    batching_strategies: tuple[str, ...] = BATCHING_STRATEGIES,
    selection_strategies: tuple[str, ...] = SELECTION_STRATEGIES,
) -> list[dict[str, object]]:
    """Reproduce Table IV: one row per (dataset, batching, selection) combination."""
    settings = settings or ExperimentSettings()
    seed = settings.seeds[0]
    rows = []
    for name in settings.datasets:
        dataset = settings.load(name)
        for batching in batching_strategies:
            for selection in selection_strategies:
                config = BatcherConfig(
                    batching=batching,
                    selection=selection,
                    model=settings.model,
                    batch_size=settings.batch_size,
                    num_demonstrations=settings.num_demonstrations,
                    seed=seed,
                    max_questions=settings.max_questions,
                    engine=settings.engine,
                )
                result = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
                rows.append(
                    {
                        "Dataset": dataset.name,
                        "Batching": BATCHING_LABELS.get(batching, batching),
                        "Selection": SELECTION_LABELS.get(selection, selection),
                        "F1": round(result.metrics.f1, 2),
                        "API ($)": round(result.cost.api_cost, 3),
                        "Label ($)": round(result.cost.labeling_cost, 3),
                    }
                )
    return rows


def best_design_choice(rows: list[dict[str, object]]) -> dict[str, object]:
    """Summarise Table IV: which (batching, selection) pair wins most datasets on F1."""
    wins: dict[tuple[str, str], int] = {}
    datasets = sorted({row["Dataset"] for row in rows})
    for dataset in datasets:
        dataset_rows = [row for row in rows if row["Dataset"] == dataset]
        best = max(dataset_rows, key=lambda row: row["F1"])
        key = (best["Batching"], best["Selection"])
        wins[key] = wins.get(key, 0) + 1
    (batching, selection), count = max(wins.items(), key=lambda item: item[1])
    return {"Batching": batching, "Selection": selection, "Datasets won": count}
