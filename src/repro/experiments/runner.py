"""Run every experiment and render a markdown report.

``python -m repro.experiments.runner`` regenerates all tables/figures and
prints them as markdown (this is how EXPERIMENTS.md is produced).  Use the
``REPRO_EXP_SCALE`` / ``REPRO_EXP_MAX_QUESTIONS`` environment variables to
control the dataset scale; ``REPRO_EXP_SCALE=1.0 REPRO_EXP_MAX_QUESTIONS=none``
reproduces the paper-scale runs (slow).  ``REPRO_EXP_JOBS`` (or ``--jobs``)
dispatches each run's independent batch prompts concurrently — results are
identical, only wall-clock changes.  ``--shards N`` executes each framework
run through the sharded run engine (byte-identical results), and ``--resume
DIR`` checkpoints every run under ``DIR`` so a killed report re-invoked with
the same flag resumes with zero repeated LLM calls.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.evaluation.report import format_markdown_table
from repro.experiments.ablation import run_batch_size_ablation, run_threshold_ablation
from repro.experiments.datasets_table import run_dataset_statistics
from repro.experiments.exp1_standard_vs_batch import (
    run_exp1_standard_vs_batch,
    run_figure6_precision_recall,
)
from repro.experiments.exp2_design_space import best_design_choice, run_exp2_design_space
from repro.experiments.exp3_plm_comparison import crossover_summary, run_exp3_plm_comparison
from repro.experiments.exp4_manual_prompt import run_exp4_manual_prompt
from repro.experiments.exp5_llms import run_exp5_llms
from repro.experiments.exp6_feature_extractors import run_exp6_feature_extractors
from repro.experiments.settings import ExperimentSettings

#: (section title, runner callable) in report order.
REPORT_SECTIONS = (
    ("Table II — Dataset statistics", run_dataset_statistics),
    ("Table III — Batch vs Standard Prompting (Exp-1)", run_exp1_standard_vs_batch),
    ("Figure 6 — Precision / Recall detail on WA and AB (Exp-1)", run_figure6_precision_recall),
    ("Table IV — Design space exploration (Exp-2)", run_exp2_design_space),
    ("Figure 7 — BatchER vs PLM baselines (Exp-3)", run_exp3_plm_comparison),
    ("Table V — BatchER vs ManualPrompt (Exp-4)", run_exp4_manual_prompt),
    ("Table VI — Underlying LLMs (Exp-5)", run_exp5_llms),
    ("Table VII — Feature extractors (Exp-6)", run_exp6_feature_extractors),
    ("Ablation — Covering threshold percentile", run_threshold_ablation),
    ("Ablation — Batch size", run_batch_size_ablation),
)


def generate_report(settings: ExperimentSettings | None = None, stream=None) -> str:
    """Run every experiment and return (and optionally stream) a markdown report."""
    settings = settings or ExperimentSettings.from_env()
    output = stream or sys.stdout
    sections = []
    for title, runner in REPORT_SECTIONS:
        started = time.perf_counter()
        rows = runner(settings)
        table = format_markdown_table(rows)
        elapsed = time.perf_counter() - started
        section = f"## {title}\n\n{table}\n"
        sections.append(section)
        print(f"{section}\n_(generated in {elapsed:.1f}s)_\n", file=output)
        if runner is run_exp2_design_space:
            summary = format_markdown_table([best_design_choice(rows)])
            sections.append(f"### Best design choice\n\n{summary}\n")
            print(f"### Best design choice\n\n{summary}\n", file=output)
        if runner is run_exp3_plm_comparison:
            summary = format_markdown_table(crossover_summary(rows))
            sections.append(f"### Labels needed to reach BatchER\n\n{summary}\n")
            print(f"### Labels needed to reach BatchER\n\n{summary}\n", file=output)
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None, help="dataset scale multiplier")
    parser.add_argument(
        "--max-questions", type=int, default=None, help="cap on evaluated questions per dataset"
    )
    parser.add_argument("--datasets", nargs="*", default=None, help="dataset codes to run")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="concurrent LLM calls per run (results are identical; only faster)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shards per framework run (results are identical; with --jobs > 1 "
        "the shards execute concurrently)",
    )
    parser.add_argument(
        "--resume", metavar="DIR", default=None,
        help="checkpoint root for framework runs; a report killed mid-run and "
        "re-invoked with the same --resume DIR continues with zero repeated "
        "LLM calls",
    )
    parser.add_argument(
        "--engine", default=None,
        help="LLM engine backend (default: simulated; real backends such as "
        "openai/anthropic need the provider API key in the environment)",
    )
    args = parser.parse_args(argv)

    settings = ExperimentSettings.from_env()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.max_questions is not None:
        overrides["max_questions"] = args.max_questions
    if args.datasets:
        overrides["datasets"] = tuple(name.lower() for name in args.datasets)
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.resume is not None:
        overrides["checkpoint_dir"] = args.resume
    if args.engine is not None:
        overrides["engine"] = args.engine.strip().lower()
    if overrides:
        settings = ExperimentSettings(
            **{**settings.__dict__, **overrides}
        )
    generate_report(settings)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
