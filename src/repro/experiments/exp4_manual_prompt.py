"""Exp-4: BatchER vs ManualPrompt (Table V).

The ManualPrompt baseline (standard prompting with expert-designed
demonstrations) is compared with BatchER's best design choice on F1 and API
cost.  Following the paper, the AB dataset is excluded because the original
ManualPrompt work did not evaluate on it.
"""

from __future__ import annotations

from repro.baselines.manual_prompt import ManualPromptBaseline
from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.experiments.settings import ExperimentSettings

#: Datasets the original ManualPrompt paper evaluated on (AB is excluded).
MANUAL_PROMPT_DATASETS = ("wa", "ag", "ds", "da", "fz", "ia", "beer")


def run_exp4_manual_prompt(
    settings: ExperimentSettings | None = None,
    datasets: tuple[str, ...] | None = None,
) -> list[dict[str, object]]:
    """Reproduce Table V: ManualPrompt vs BatchER on F1 and API cost."""
    settings = settings or ExperimentSettings()
    seed = settings.seeds[0]
    names = datasets if datasets is not None else tuple(
        name for name in settings.datasets if name in MANUAL_PROMPT_DATASETS
    )
    rows = []
    for name in names:
        dataset = settings.load(name)
        config = BatcherConfig(
            batching="diverse",
            selection="covering",
            model=settings.model,
            batch_size=settings.batch_size,
            num_demonstrations=settings.num_demonstrations,
            seed=seed,
            max_questions=settings.max_questions,
            engine=settings.engine,
        )
        manual = ManualPromptBaseline(config).run(dataset)
        batch = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
        rows.append(
            {
                "Dataset": dataset.name,
                "Manual F1": round(manual.metrics.f1, 2),
                "Manual API ($)": round(manual.cost.api_cost, 3),
                "Batch F1": round(batch.metrics.f1, 2),
                "Batch API ($)": round(batch.cost.api_cost, 3),
                "API saving (x)": (
                    round(manual.cost.api_cost / batch.cost.api_cost, 1)
                    if batch.cost.api_cost
                    else float("inf")
                ),
            }
        )
    return rows
