"""Exp-6: different feature extractors (Table VII).

BatchER-LR (structure-aware, Levenshtein ratio), BatchER-JAC (structure-aware,
Jaccard) and BatchER-SEM (semantics-based sentence embeddings) are compared on
F1 per dataset; their monetary cost is nearly identical, so only F1 is
reported, as in the paper.
"""

from __future__ import annotations

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.experiments.settings import ExperimentSettings

#: The three BatchER variants of Table VII, keyed by column label.
EXTRACTOR_VARIANTS = {
    "BatchER-LR": "lr",
    "BatchER-JAC": "jaccard",
    "BatchER-SEM": "semantic",
}


def run_exp6_feature_extractors(
    settings: ExperimentSettings | None = None,
) -> list[dict[str, object]]:
    """Reproduce Table VII: F1 of BatchER with each feature extractor."""
    settings = settings or ExperimentSettings()
    seed = settings.seeds[0]
    rows = []
    for name in settings.datasets:
        dataset = settings.load(name)
        row: dict[str, object] = {"Dataset": dataset.name}
        for label, variant in EXTRACTOR_VARIANTS.items():
            config = BatcherConfig(
                batching="diverse",
                selection="covering",
                feature_extractor=variant,
                model=settings.model,
                batch_size=settings.batch_size,
                num_demonstrations=settings.num_demonstrations,
                seed=seed,
                max_questions=settings.max_questions,
                engine=settings.engine,
            )
            result = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
            row[label] = round(result.metrics.f1, 2)
        rows.append(row)
    return rows
