"""Table II — dataset statistics."""

from __future__ import annotations

from repro.data.registry import load_dataset
from repro.experiments.settings import ExperimentSettings


def run_dataset_statistics(settings: ExperimentSettings | None = None) -> list[dict[str, object]]:
    """Regenerate the paper's Table II (dataset statistics) rows.

    At ``scale=1.0`` the pair and match counts equal the paper's; at smaller
    scales they shrink proportionally.
    """
    settings = settings or ExperimentSettings()
    rows = []
    for name in settings.datasets:
        dataset = load_dataset(name, seed=settings.data_seed, scale=settings.scale)
        stats = dataset.statistics()
        rows.append(
            {
                "Dataset": f"{stats['dataset']} ({stats['code']})",
                "Domain": stats["domain"],
                "# Attr.": stats["num_attributes"],
                "# Pairs": stats["num_pairs"],
                "# Matches": stats["num_matches"],
            }
        )
    return rows
