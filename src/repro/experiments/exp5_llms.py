"""Exp-5: different underlying LLMs (Table VI).

BatchER (diversity + covering) is run with each simulated LLM profile; the
table reports F1 and API cost per dataset and model.  Llama2-70B is included as
an extra column showing its batch-prompting failure rate (the paper omits it
from the table because it fails to answer batch prompts most of the time).
"""

from __future__ import annotations

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.experiments.settings import ExperimentSettings

#: Models compared in the paper's Table VI.
TABLE6_MODELS = ("gpt-3.5-03", "gpt-3.5-06", "gpt-4")


def run_exp5_llms(
    settings: ExperimentSettings | None = None,
    models: tuple[str, ...] = TABLE6_MODELS,
    include_llama: bool = False,
) -> list[dict[str, object]]:
    """Reproduce Table VI: F1 and API cost of BatchER under different LLMs."""
    settings = settings or ExperimentSettings()
    seed = settings.seeds[0]
    model_list = list(models) + (["llama2-70b"] if include_llama else [])
    rows = []
    for name in settings.datasets:
        dataset = settings.load(name)
        row: dict[str, object] = {"Dataset": dataset.name}
        for model in model_list:
            config = BatcherConfig(
                batching="diverse",
                selection="covering",
                model=model,
                batch_size=settings.batch_size,
                num_demonstrations=settings.num_demonstrations,
                seed=seed,
                max_questions=settings.max_questions,
                engine=settings.engine,
            )
            result = BatchER(config, executor=settings.executor()).run(dataset, **settings.run_kwargs())
            row[f"{model} F1"] = round(result.metrics.f1, 2)
            row[f"{model} API ($)"] = round(result.cost.api_cost, 3)
            if model == "llama2-70b":
                row["llama2-70b unanswered"] = result.num_unanswered
        rows.append(row)
    return rows
