"""Exp-1: Batch Prompting vs Standard Prompting (Table III and Figure 6).

Protocol (paper Section VI-B): both approaches use the *same* 8 randomly
sampled, fixed demonstrations; batch prompting uses random question batching
with batch size 8.  Each configuration is run over several seeds and the table
reports mean and standard deviation of F1 plus the API cost.
"""

from __future__ import annotations

import statistics

from repro.core.batcher import BatchER
from repro.core.config import BatcherConfig
from repro.core.standard import StandardPromptingER
from repro.experiments.settings import ExperimentSettings


def _config(settings: ExperimentSettings, seed: int) -> BatcherConfig:
    return BatcherConfig(
        batching="random",
        selection="fixed",
        model=settings.model,
        batch_size=settings.batch_size,
        num_demonstrations=settings.num_demonstrations,
        seed=seed,
        max_questions=settings.max_questions,
        engine=settings.engine,
    )


def _mean_std(values: list[float]) -> tuple[float, float]:
    if len(values) == 1:
        return values[0], 0.0
    return statistics.mean(values), statistics.pstdev(values)


def run_exp1_standard_vs_batch(
    settings: ExperimentSettings | None = None,
) -> list[dict[str, object]]:
    """Reproduce Table III: F1 (mean +/- std over seeds) and API cost per dataset."""
    settings = settings or ExperimentSettings()
    rows = []
    for name in settings.datasets:
        dataset = settings.load(name)
        standard_f1, standard_api = [], []
        batch_f1, batch_api = [], []
        for seed in settings.seeds:
            config = _config(settings, seed)
            standard = StandardPromptingER(config).run(dataset)
            batch = BatchER(config, executor=settings.executor()).run(
                dataset, **settings.run_kwargs()
            )
            standard_f1.append(standard.metrics.f1)
            standard_api.append(standard.cost.api_cost)
            batch_f1.append(batch.metrics.f1)
            batch_api.append(batch.cost.api_cost)
        std_mean, std_dev = _mean_std(standard_f1)
        batch_mean, batch_dev = _mean_std(batch_f1)
        standard_cost = statistics.mean(standard_api)
        batch_cost = statistics.mean(batch_api)
        rows.append(
            {
                "Dataset": dataset.name,
                "Standard F1": f"{std_mean:.2f}±{std_dev:.2f}",
                "Standard API ($)": round(standard_cost, 3),
                "Batch F1": f"{batch_mean:.2f}±{batch_dev:.2f}",
                "Batch API ($)": round(batch_cost, 3),
                "Cost saving (x)": round(standard_cost / batch_cost, 1) if batch_cost else float("inf"),
            }
        )
    return rows


def run_figure6_precision_recall(
    settings: ExperimentSettings | None = None,
    datasets: tuple[str, ...] = ("wa", "ab"),
) -> list[dict[str, object]]:
    """Reproduce Figure 6: precision / recall / F1 of both methods on WA and AB."""
    settings = settings or ExperimentSettings()
    rows = []
    for name in datasets:
        dataset = settings.load(name)
        config = _config(settings, settings.seeds[0])
        standard = StandardPromptingER(config).run(dataset)
        batch = BatchER(config, executor=settings.executor()).run(
            dataset, **settings.run_kwargs()
        )
        for method, result in (("Standard", standard), ("Batch", batch)):
            rows.append(
                {
                    "Dataset": dataset.name,
                    "Method": method,
                    "Precision": round(result.metrics.precision, 2),
                    "Recall": round(result.metrics.recall, 2),
                    "F1": round(result.metrics.f1, 2),
                }
            )
    return rows
