"""Distance utilities shared by clustering, batching and demonstration selection.

The paper measures relevance between questions (and between questions and
demonstrations) with the Euclidean distance over feature vectors (Section
III-B); cosine distance is provided as an alternative.
"""

from __future__ import annotations

import numpy as np


def euclidean_distance(left: np.ndarray, right: np.ndarray) -> float:
    """Euclidean distance between two 1-D feature vectors."""
    return float(np.linalg.norm(np.asarray(left, dtype=float) - np.asarray(right, dtype=float)))


def cosine_distance(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine distance (1 - cosine similarity) between two 1-D feature vectors.

    Zero vectors are treated as maximally distant from everything except other
    zero vectors.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    norm_left = float(np.linalg.norm(left))
    norm_right = float(np.linalg.norm(right))
    if norm_left == 0.0 and norm_right == 0.0:
        return 0.0
    if norm_left == 0.0 or norm_right == 0.0:
        return 1.0
    return 1.0 - float(np.dot(left, right)) / (norm_left * norm_right)


DISTANCE_FUNCTIONS = {
    "euclidean": euclidean_distance,
    "cosine": cosine_distance,
}
"""Registry of named distance functions."""


def get_distance_function(name: str):
    """Look up a distance function by name.

    Raises:
        KeyError: if ``name`` is not registered.
    """
    try:
        return DISTANCE_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(DISTANCE_FUNCTIONS))
        raise KeyError(f"unknown distance function {name!r}; expected one of: {known}") from None


def pairwise_distances(matrix: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Compute the full pairwise distance matrix of row vectors in ``matrix``.

    Args:
        matrix: an ``(n, d)`` array of feature vectors.
        metric: ``"euclidean"`` or ``"cosine"``.

    Returns:
        An ``(n, n)`` symmetric matrix of distances with a zero diagonal.
    """
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    if metric == "euclidean":
        squared_norms = np.sum(data * data, axis=1)
        squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * data @ data.T
        np.maximum(squared, 0.0, out=squared)
        distances = np.sqrt(squared)
    elif metric == "cosine":
        norms = np.linalg.norm(data, axis=1)
        safe_norms = np.where(norms == 0.0, 1.0, norms)
        normalised = data / safe_norms[:, None]
        similarity = normalised @ normalised.T
        similarity = np.clip(similarity, -1.0, 1.0)
        distances = 1.0 - similarity
        zero_rows = norms == 0.0
        if np.any(zero_rows):
            distances[zero_rows, :] = 1.0
            distances[:, zero_rows] = 1.0
            distances[np.ix_(zero_rows, zero_rows)] = 0.0
    else:
        raise KeyError(f"unknown metric {metric!r}; expected 'euclidean' or 'cosine'")
    np.fill_diagonal(distances, 0.0)
    return distances


def elementwise_distances(
    left: np.ndarray, right: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Row-aligned distances between two equal-shape stacks of vectors.

    ``result[i] = distance(left[i], right[i])`` — the vectorized counterpart
    of calling the scalar distance per row (the sparse planner's radius
    sampler draws random pairs this way).  Follows the zero-vector
    conventions of :func:`pairwise_distances` for the cosine metric: two zero
    vectors coincide, a zero vector is maximally distant from everything
    else.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if metric == "euclidean":
        delta = left - right
        return np.sqrt(np.sum(delta * delta, axis=1))
    if metric == "cosine":
        left_norm = np.linalg.norm(left, axis=1)
        right_norm = np.linalg.norm(right, axis=1)
        safe_left = np.where(left_norm == 0.0, 1.0, left_norm)
        safe_right = np.where(right_norm == 0.0, 1.0, right_norm)
        similarity = np.sum(
            (left / safe_left[:, None]) * (right / safe_right[:, None]), axis=1
        )
        distances = 1.0 - np.clip(similarity, -1.0, 1.0)
        left_zero = left_norm == 0.0
        right_zero = right_norm == 0.0
        distances = np.where(left_zero ^ right_zero, 1.0, distances)
        return np.where(left_zero & right_zero, 0.0, distances)
    raise KeyError(f"unknown metric {metric!r}; expected 'euclidean' or 'cosine'")


def cross_distances(
    left: np.ndarray, right: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Compute the ``(n, m)`` distance matrix between two sets of row vectors."""
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.ndim != 2 or right.ndim != 2:
        raise ValueError("both inputs must be 2-D matrices")
    if metric == "euclidean":
        left_norms = np.sum(left * left, axis=1)
        right_norms = np.sum(right * right, axis=1)
        squared = left_norms[:, None] + right_norms[None, :] - 2.0 * left @ right.T
        np.maximum(squared, 0.0, out=squared)
        return np.sqrt(squared)
    if metric == "cosine":
        left_norm = np.linalg.norm(left, axis=1)
        right_norm = np.linalg.norm(right, axis=1)
        safe_left = np.where(left_norm == 0.0, 1.0, left_norm)
        safe_right = np.where(right_norm == 0.0, 1.0, right_norm)
        similarity = (left / safe_left[:, None]) @ (right / safe_right[:, None]).T
        return 1.0 - np.clip(similarity, -1.0, 1.0)
    raise KeyError(f"unknown metric {metric!r}; expected 'euclidean' or 'cosine'")
