"""DBSCAN density clustering (Ester et al., KDD 1996).

The paper clusters question feature vectors with DBSCAN before batching
(Section III).  This implementation works directly on a precomputed distance
matrix (or computes one from feature vectors), assigns cluster labels
``0..k-1`` and marks noise points with ``-1``.  For the batching pipeline the
downstream code treats every noise point as its own singleton cluster, because
every question must end up in exactly one batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.distance import pairwise_distances

#: Label assigned by DBSCAN to noise points.
NOISE_LABEL = -1


@dataclass(frozen=True)
class DBSCANResult:
    """Outcome of a DBSCAN run.

    Attributes:
        labels: per-point cluster labels (``-1`` = noise).
        num_clusters: number of proper (non-noise) clusters found.
        core_point_mask: boolean mask of core points.
    """

    labels: np.ndarray
    num_clusters: int
    core_point_mask: np.ndarray

    def clusters(self, include_noise_as_singletons: bool = True) -> list[list[int]]:
        """Group point indices by cluster.

        Args:
            include_noise_as_singletons: when True (the batching pipeline's
                behaviour), each noise point becomes its own singleton cluster
                appended after the proper clusters.
        """
        grouped: dict[int, list[int]] = {}
        for index, label in enumerate(self.labels):
            if label == NOISE_LABEL:
                continue
            grouped.setdefault(int(label), []).append(index)
        ordered = [grouped[label] for label in sorted(grouped)]
        if include_noise_as_singletons:
            ordered.extend(
                [index] for index, label in enumerate(self.labels) if label == NOISE_LABEL
            )
        return ordered


class DBSCAN:
    """Density-based clustering with an epsilon-neighbourhood and min-points rule.

    Args:
        eps: neighbourhood radius.  When ``None``, the radius is chosen
            automatically as a percentile of the non-zero pairwise distances,
            which makes the clusterer robust to the very different feature
            scales of the structure-aware (low-dimensional, [0,1] entries) and
            semantics-based (256-d unit vectors) extractors.
        min_samples: minimum neighbourhood size for a core point.
        eps_percentile: percentile used by the automatic radius rule.
        metric: distance metric (``"euclidean"`` or ``"cosine"``).
    """

    def __init__(
        self,
        eps: float | None = None,
        min_samples: int = 3,
        eps_percentile: float = 15.0,
        metric: str = "euclidean",
    ) -> None:
        if eps is not None and eps <= 0.0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 < eps_percentile < 100.0:
            raise ValueError("eps_percentile must be in (0, 100)")
        self.eps = eps
        self.min_samples = min_samples
        self.eps_percentile = eps_percentile
        self.metric = metric

    def _resolve_eps(self, distances: np.ndarray) -> float:
        if self.eps is not None:
            return self.eps
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        positive = off_diagonal[off_diagonal > 0.0]
        if positive.size == 0:
            return 1.0
        return float(np.percentile(positive, self.eps_percentile))

    def fit(self, features: np.ndarray, distances: np.ndarray | None = None) -> DBSCANResult:
        """Cluster the row vectors of ``features``.

        Args:
            features: ``(n, d)`` feature matrix (ignored when ``distances`` is
                supplied, except for its row count).
            distances: optional precomputed ``(n, n)`` distance matrix.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        n = features.shape[0]
        if n == 0:
            return DBSCANResult(
                labels=np.empty(0, dtype=int),
                num_clusters=0,
                core_point_mask=np.empty(0, dtype=bool),
            )
        if distances is None:
            distances = pairwise_distances(features, metric=self.metric)
        eps = self._resolve_eps(distances)

        neighbour_lists = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
        core_mask = np.array(
            [len(neighbours) >= self.min_samples for neighbours in neighbour_lists]
        )

        labels = np.full(n, NOISE_LABEL, dtype=int)
        cluster_id = 0
        for point in range(n):
            if labels[point] != NOISE_LABEL or not core_mask[point]:
                continue
            # Breadth-first expansion from this unassigned core point.
            labels[point] = cluster_id
            frontier = list(neighbour_lists[point])
            while frontier:
                neighbour = int(frontier.pop())
                if labels[neighbour] == NOISE_LABEL:
                    labels[neighbour] = cluster_id
                    if core_mask[neighbour]:
                        frontier.extend(
                            int(candidate)
                            for candidate in neighbour_lists[neighbour]
                            if labels[candidate] == NOISE_LABEL
                        )
            cluster_id += 1

        return DBSCANResult(labels=labels, num_clusters=cluster_id, core_point_mask=core_mask)
