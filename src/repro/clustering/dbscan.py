"""DBSCAN density clustering (Ester et al., KDD 1996).

The paper clusters question feature vectors with DBSCAN before batching
(Section III).  This implementation runs its core mask and breadth-first
expansion over the index arrays of a CSR-style
:class:`~repro.clustering.neighbors.NeighborGraph`: frontiers are numpy
arrays, neighbour gathers are vectorized, and an enqueued mask guarantees
every point enters a frontier at most once.  Where the graph comes from is a
routing decision made by a :class:`~repro.clustering.neighbors.NeighborPlanner`:

* small inputs threshold the dense pairwise matrix (usually cached by the
  feature engine) — the historical code path, bit-identical labels;
* large inputs build the graph with blocked radius joins and resolve the
  automatic ``eps`` from a seeded distance sample, so the dense ``(n, n)``
  matrix is never materialised.

Labels ``0..k-1`` are assigned in seed order and noise points are marked
``-1``; downstream batching treats every noise point as its own singleton
cluster, because every question must end up in exactly one batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.neighbors import (
    NeighborGraph,
    NeighborPlanner,
    default_planner,
    dense_percentile_radius,
)

#: Label assigned by DBSCAN to noise points.
NOISE_LABEL = -1


@dataclass(frozen=True)
class DBSCANResult:
    """Outcome of a DBSCAN run.

    Attributes:
        labels: per-point cluster labels (``-1`` = noise).
        num_clusters: number of proper (non-noise) clusters found.
        core_point_mask: boolean mask of core points.
    """

    labels: np.ndarray
    num_clusters: int
    core_point_mask: np.ndarray

    def clusters(self, include_noise_as_singletons: bool = True) -> list[list[int]]:
        """Group point indices by cluster.

        Args:
            include_noise_as_singletons: when True (the batching pipeline's
                behaviour), each noise point becomes its own singleton cluster
                appended after the proper clusters.
        """
        grouped: dict[int, list[int]] = {}
        for index, label in enumerate(self.labels):
            if label == NOISE_LABEL:
                continue
            grouped.setdefault(int(label), []).append(index)
        ordered = [grouped[label] for label in sorted(grouped)]
        if include_noise_as_singletons:
            ordered.extend(
                [index] for index, label in enumerate(self.labels) if label == NOISE_LABEL
            )
        return ordered


class DBSCAN:
    """Density-based clustering with an epsilon-neighbourhood and min-points rule.

    Args:
        eps: neighbourhood radius.  When ``None``, the radius is chosen
            automatically as a percentile of the non-zero pairwise distances,
            which makes the clusterer robust to the very different feature
            scales of the structure-aware (low-dimensional, [0,1] entries) and
            semantics-based (256-d unit vectors) extractors.
        min_samples: minimum neighbourhood size for a core point.
        eps_percentile: percentile used by the automatic radius rule.
        metric: distance metric (``"euclidean"`` or ``"cosine"``).
        planner: dense/sparse routing policy; defaults to the process-wide
            :func:`~repro.clustering.neighbors.default_planner`.
    """

    def __init__(
        self,
        eps: float | None = None,
        min_samples: int = 3,
        eps_percentile: float = 15.0,
        metric: str = "euclidean",
        planner: NeighborPlanner | None = None,
    ) -> None:
        if eps is not None and eps <= 0.0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 < eps_percentile < 100.0:
            raise ValueError("eps_percentile must be in (0, 100)")
        self.eps = eps
        self.min_samples = min_samples
        self.eps_percentile = eps_percentile
        self.metric = metric
        self.planner = planner

    def _resolve_eps(self, distances: np.ndarray) -> float:
        """The automatic radius rule over a precomputed dense matrix."""
        if self.eps is not None:
            return self.eps
        return dense_percentile_radius(distances, self.eps_percentile)

    def fit(
        self,
        features: np.ndarray,
        distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> DBSCANResult:
        """Cluster the row vectors of ``features``.

        Args:
            features: ``(n, d)`` feature matrix (ignored when ``distances`` is
                supplied, except for its row count).
            distances: optional precomputed ``(n, n)`` distance matrix; when
                supplied the run is always dense (the historical contract).
            planner: per-call override of the dense/sparse routing policy.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        n = features.shape[0]
        if n == 0:
            return DBSCANResult(
                labels=np.empty(0, dtype=int),
                num_clusters=0,
                core_point_mask=np.empty(0, dtype=bool),
            )
        if distances is not None:
            # Caller-supplied matrix: always dense, no planner involved.
            eps = self._resolve_eps(distances)
            graph = NeighborGraph.from_dense(
                distances, eps, metric=self.metric, inclusive=True
            )
            return self._fit_graph(graph)
        # The planner routes (and counts) both regimes; its dense regime
        # thresholds the provider-cached matrix, so results are identical to
        # passing that matrix explicitly.
        active = planner or self.planner or default_planner()
        eps = (
            self.eps
            if self.eps is not None
            else active.resolve_radius(features, self.eps_percentile, self.metric)
        )
        graph = active.graph(features, eps, metric=self.metric, inclusive=True)
        return self._fit_graph(graph)

    def _fit_graph(self, graph: NeighborGraph) -> DBSCANResult:
        """Label the points of an inclusive epsilon self-join graph.

        The expansion works directly on the graph's CSR arrays: each BFS level
        gathers the neighbour ranges of the level's core points in one shot,
        and the ``enqueued`` mask keeps any point from entering a frontier
        twice (the pre-graph implementation could re-append the same neighbour
        many times in dense clusters).  Cluster seeds are visited in index
        order, so labels — including border points contested between clusters,
        which go to the earliest-seeded cluster — match the classic
        per-point-loop implementation exactly.
        """
        n = graph.num_rows
        indptr, indices = graph.indptr, graph.indices
        degrees = graph.degrees()
        # The graph excludes self-edges; the classic neighbourhood includes
        # the point itself, hence the +1.
        core_mask = (degrees + 1) >= self.min_samples
        labels = np.full(n, NOISE_LABEL, dtype=int)
        enqueued = np.zeros(n, dtype=bool)
        cluster_id = 0
        for point in range(n):
            if labels[point] != NOISE_LABEL or not core_mask[point]:
                continue
            labels[point] = cluster_id
            enqueued[point] = True
            frontier = indices[indptr[point] : indptr[point + 1]]
            frontier = frontier[~enqueued[frontier]]
            enqueued[frontier] = True
            while frontier.size:
                labels[frontier] = cluster_id
                # Only core members of the level expand the cluster.
                expanders = frontier[core_mask[frontier]]
                if expanders.size == 0:
                    break
                starts = indptr[expanders]
                counts = degrees[expanders]
                total = int(counts.sum())
                if total == 0:
                    break
                # Gather all expander neighbour ranges without a per-point loop.
                offsets = np.zeros(len(counts) + 1, dtype=np.int64)
                np.cumsum(counts, out=offsets[1:])
                flat = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(offsets[:-1], counts)
                    + np.repeat(starts, counts)
                )
                candidates = indices[flat]
                candidates = candidates[~enqueued[candidates]]
                if candidates.size == 0:
                    break
                frontier = np.unique(candidates)
                enqueued[frontier] = True
            cluster_id += 1
        return DBSCANResult(labels=labels, num_clusters=cluster_id, core_point_mask=core_mask)
