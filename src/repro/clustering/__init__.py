"""Clustering substrate used by the question batching module.

The paper clusters questions with DBSCAN (Section III, footnote on clustering
choice); K-Means is provided as an alternative so the clustering choice itself
can be ablated.  Both are implemented from scratch on top of numpy.
"""

from repro.clustering.distance import (
    elementwise_distances,
    euclidean_distance,
    pairwise_distances,
)
from repro.clustering.dbscan import DBSCAN, DBSCANResult
from repro.clustering.kmeans import KMeans, KMeansResult
from repro.clustering.neighbors import (
    LSHConfig,
    NeighborGraph,
    NeighborPlanner,
    build_cross_neighbor_graph,
    build_lsh_neighbor_graph,
    build_neighbor_graph,
    default_planner,
    dense_percentile_radius,
    sample_percentile_radius,
)

__all__ = [
    "DBSCAN",
    "DBSCANResult",
    "KMeans",
    "KMeansResult",
    "LSHConfig",
    "NeighborGraph",
    "NeighborPlanner",
    "build_cross_neighbor_graph",
    "build_lsh_neighbor_graph",
    "build_neighbor_graph",
    "default_planner",
    "dense_percentile_radius",
    "elementwise_distances",
    "euclidean_distance",
    "pairwise_distances",
    "sample_percentile_radius",
]
