"""Clustering substrate used by the question batching module.

The paper clusters questions with DBSCAN (Section III, footnote on clustering
choice); K-Means is provided as an alternative so the clustering choice itself
can be ablated.  Both are implemented from scratch on top of numpy.
"""

from repro.clustering.distance import pairwise_distances, euclidean_distance
from repro.clustering.dbscan import DBSCAN, DBSCANResult
from repro.clustering.kmeans import KMeans, KMeansResult

__all__ = [
    "DBSCAN",
    "DBSCANResult",
    "KMeans",
    "KMeansResult",
    "euclidean_distance",
    "pairwise_distances",
]
