"""Sparse epsilon-neighbor graphs: batch planning past the dense O(n^2) wall.

Batch planning — DBSCAN clustering of question feature vectors (paper Section
III) and covering-based demonstration selection (Sections IV-D/V) — only ever
asks two questions of the pairwise geometry:

* *which points lie within a radius of each point* (the DBSCAN epsilon
  neighbourhood, the covering radius ``t``), and
* *what is a percentile of the pairwise distance distribution* (the automatic
  ``eps`` / threshold rules).

Neither needs the dense ``(n, n)`` distance matrix that
:func:`~repro.clustering.distance.pairwise_distances` materialises (~80 GB of
float64 at n = 100k).  This module answers both questions with bounded memory:

* :class:`NeighborGraph` — a CSR-style epsilon-neighbor graph: for every row
  point, the column points within ``radius``, stored as two flat index arrays.
* :func:`build_neighbor_graph` / :func:`build_cross_neighbor_graph` — blocked
  radius joins: distances are computed in fixed-size row blocks (peak memory
  ``O(block_size * n)``) and only the edges within the radius are kept.
* :func:`sample_percentile_radius` — percentile radii resolved from a seeded
  sample of pairwise distances instead of the full matrix.
* :func:`build_lsh_neighbor_graph` — the *approximate* epsilon self-join for
  very large inputs: candidate pairs come from a banded MinHash-LSH index
  over quantized grid-cell tokens (reusing the
  :mod:`repro.blocking.minhash` primitives), exact distances are computed
  only on candidates, so every surviving edge is a true edge — the result is
  always a subgraph of the exact graph, with probabilistic recall.
* :class:`NeighborPlanner` — the policy object deciding, per planning request,
  between three regimes: the classic dense matrix (small inputs, where the
  cached matrix is cheap and the historical code path stays byte-identical),
  the exact sparse blocked path (large inputs), and the LSH approximate path
  (above ``approx_threshold``, where even the blocked exact join's
  ``O(n^2 / block)`` slab scans are too slow).

The planner is threaded through the
:class:`~repro.features.engine.FeatureStore`, the clustering-based batchers,
:class:`~repro.clustering.dbscan.DBSCAN` and the covering selector; the dense
and exact sparse regimes are golden-tested to produce identical plans on
fixed seeds, and the LSH regime is property-tested to stay a subgraph of the
exact graph at a recall floor.
"""

from __future__ import annotations

import hashlib
import math
import threading
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, ContextManager

import numpy as np

from repro.blocking.minhash import MinHashSigner, band_keys, splitmix64
from repro.clustering.distance import (
    cross_distances,
    elementwise_distances,
    pairwise_distances,
)

#: Inputs with at most this many points use the dense distance-matrix path.
DEFAULT_DENSE_THRESHOLD = 2048

#: Rows per block in blocked radius joins (peak slab = block_size * n floats).
DEFAULT_BLOCK_SIZE = 1024

#: Pairwise distances sampled when resolving a percentile radius sparsely.
DEFAULT_SAMPLE_SIZE = 262_144

#: Seed of the radius-sampling RNG (fixed: planning must be reproducible).
DEFAULT_SAMPLE_SEED = 0

#: Self-joins above this many points route to the approximate LSH regime.
DEFAULT_APPROX_THRESHOLD = 100_000


@dataclass(frozen=True)
class NeighborGraph:
    """A CSR-style epsilon-neighbor graph.

    Row ``i`` owns the column indices ``indices[indptr[i]:indptr[i + 1]]`` —
    the points within ``radius`` of point ``i`` under ``metric``.  For
    self-joins (:func:`build_neighbor_graph`) rows and columns index the same
    point set and self-edges are excluded; for cross joins
    (:func:`build_cross_neighbor_graph`) rows are the left set (questions) and
    columns the right set (pool demonstrations).

    Attributes:
        indptr: ``(num_rows + 1,)`` row pointer array.
        indices: ``(num_edges,)`` column indices, ascending within each row.
        num_cols: size of the column point set.
        radius: the join radius the graph was built with.
        metric: distance metric of the join.
        inclusive: whether the radius comparison was ``<=`` (DBSCAN's
            epsilon rule) or strict ``<`` (the covering rule).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_cols: int
    radius: float
    metric: str
    inclusive: bool

    @property
    def num_rows(self) -> int:
        """Number of row points."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Total number of stored edges."""
        return int(self.indptr[-1])

    def neighbors(self, row: int) -> np.ndarray:
        """Column indices within the radius of ``row`` (a read-only view)."""
        return self.indices[self.indptr[row] : self.indptr[row + 1]]

    def degrees(self) -> np.ndarray:
        """Per-row neighbour counts."""
        return np.diff(self.indptr)

    def transpose(self) -> "NeighborGraph":
        """The column-to-row view of this graph (e.g. demo -> questions)."""
        counts = np.bincount(self.indices, minlength=self.num_cols)
        indptr = np.zeros(self.num_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(self.indices, kind="stable")
        rows = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr)
        )
        return NeighborGraph(
            indptr=indptr,
            indices=rows[order],
            num_cols=self.num_rows,
            radius=self.radius,
            metric=self.metric,
            inclusive=self.inclusive,
        )

    @classmethod
    def from_dense(
        cls,
        distances: np.ndarray,
        radius: float,
        metric: str = "euclidean",
        inclusive: bool = True,
    ) -> "NeighborGraph":
        """Build the graph from a precomputed dense distance matrix.

        This is the small-n path: the dense matrix is already cached by the
        feature engine, so thresholding it reproduces the historical
        neighbourhoods bit-for-bit.  Self-edges (the diagonal) are excluded
        for square matrices.
        """
        distances = np.asarray(distances)
        mask = distances <= radius if inclusive else distances < radius
        if mask.ndim != 2:
            raise ValueError(f"expected a 2-D distance matrix, got shape {mask.shape}")
        if mask.shape[0] == mask.shape[1]:
            np.fill_diagonal(mask, False)
        rows, cols = np.nonzero(mask)
        counts = np.bincount(rows, minlength=mask.shape[0])
        indptr = np.zeros(mask.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            indptr=indptr,
            indices=cols.astype(np.int64, copy=False),
            num_cols=mask.shape[1],
            radius=float(radius),
            metric=metric,
            inclusive=inclusive,
        )


def _assemble(
    blocks_indices: list[np.ndarray], counts: np.ndarray, num_cols: int,
    radius: float, metric: str, inclusive: bool,
) -> NeighborGraph:
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = (
        np.concatenate(blocks_indices)
        if blocks_indices
        else np.empty(0, dtype=np.int64)
    )
    return NeighborGraph(
        indptr=indptr,
        indices=indices.astype(np.int64, copy=False),
        num_cols=num_cols,
        radius=float(radius),
        metric=metric,
        inclusive=inclusive,
    )


def _zero_row_mask(features: np.ndarray, metric: str) -> np.ndarray | None:
    """Mask of zero-norm rows, needed to patch cosine self-join slabs."""
    if metric != "cosine":
        return None
    mask = np.linalg.norm(features, axis=1) == 0.0
    return mask if bool(np.any(mask)) else None


def _self_join_slab(
    features: np.ndarray,
    start: int,
    stop: int,
    metric: str,
    zero_mask: np.ndarray | None,
) -> np.ndarray:
    """One ``(stop - start, n)`` distance slab of the self-join.

    Matches :func:`~repro.clustering.distance.pairwise_distances` semantics:
    :func:`~repro.clustering.distance.cross_distances` reports two zero
    vectors as maximally distant under the cosine metric, while the dense
    self-join treats them as coincident — the patch keeps blocked graphs
    bit-compatible with dense-matrix graphs.
    """
    slab = cross_distances(features[start:stop], features, metric=metric)
    if zero_mask is not None:
        block_zero = zero_mask[start:stop]
        if bool(np.any(block_zero)):
            slab[np.ix_(block_zero, zero_mask)] = 0.0
    return slab


def build_neighbor_graph(
    features: np.ndarray,
    radius: float,
    metric: str = "euclidean",
    inclusive: bool = True,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> NeighborGraph:
    """Blocked epsilon self-join: edges between points within ``radius``.

    Distances are computed one ``(block_size, n)`` slab at a time, so peak
    memory is bounded by the block size regardless of ``n``; the dense
    ``(n, n)`` matrix is never materialised.  Self-edges are excluded.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n = features.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    blocks: list[np.ndarray] = []
    zero_mask = _zero_row_mask(features, metric)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        slab = _self_join_slab(features, start, stop, metric, zero_mask)
        mask = slab <= radius if inclusive else slab < radius
        # Exclude the diagonal of the self-join: the slab's local row r is
        # global point start + r.
        local = np.arange(stop - start)
        mask[local, local + start] = False
        rows, cols = np.nonzero(mask)
        counts[start:stop] = np.bincount(rows, minlength=stop - start)
        blocks.append(cols)
    return _assemble(blocks, counts, n, radius, metric, inclusive)


def build_cross_neighbor_graph(
    left: np.ndarray,
    right: np.ndarray,
    radius: float,
    metric: str = "euclidean",
    inclusive: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
    return_nearest: bool = False,
) -> tuple[NeighborGraph, np.ndarray | None]:
    """Blocked radius join between two point sets (questions -> pool).

    Returns the left-to-right :class:`NeighborGraph` and, when
    ``return_nearest`` is set, the per-left-row index of the nearest right
    point (``np.argmin`` semantics: first column on exact ties) computed from
    the same slabs — the covering selector's fallback rule needs it and this
    avoids a second pass over the distances.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.ndim != 2 or right.ndim != 2:
        raise ValueError("both inputs must be 2-D matrices")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if right.shape[0] == 0:
        raise ValueError("cannot radius-join against an empty right point set")
    n = left.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    blocks: list[np.ndarray] = []
    nearest = np.zeros(n, dtype=np.int64) if return_nearest else None
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        slab = cross_distances(left[start:stop], right, metric=metric)
        mask = slab <= radius if inclusive else slab < radius
        rows, cols = np.nonzero(mask)
        counts[start:stop] = np.bincount(rows, minlength=stop - start)
        blocks.append(cols)
        if nearest is not None:
            nearest[start:stop] = np.argmin(slab, axis=1)
    graph = _assemble(blocks, counts, right.shape[0], radius, metric, inclusive)
    return graph, nearest


@dataclass(frozen=True)
class LSHConfig:
    """Knobs of the approximate LSH epsilon-join.

    The defaults target recall >= 0.95 on the benchmark workloads: with two
    half-offset grids per dimension, any within-radius pair shares at least
    one cell token per dimension, so its Jaccard similarity is at least 1/3;
    a band of ``rows = num_perm / bands = 2`` permutations collides with
    probability ``J^2``, and requiring at least
    ``min_band_collisions = 2`` of the 48 bands keeps worst-case retrieval
    at ``1 - (8/9)^48 - (48/9)(8/9)^47 ~ 0.975`` while discarding the long
    tail of pairs that collide in exactly one band — empirically ~90% of
    all candidates and almost none of the true edges (far pairs have small
    ``J``, so their expected collision count ``bands * J^2`` is far below
    2; near pairs sit far above it).

    Attributes:
        num_perm: MinHash permutations (must be divisible by ``bands``).
        bands: LSH bands; more bands = higher recall, more candidates.
        min_band_collisions: candidate pairs must collide in at least this
            many bands to be verified (1 keeps every collision).
        cell_factor: grid cell width as a multiple of the join radius
            (per-dimension guarantee needs >= 2.0; larger trades candidates
            for recall headroom).
        candidate_cap: per-record cap on verified candidates (lowest column
            indices win, deterministically); 0 disables the cap.  Bucket
            enumeration already bounds a record's candidates near
            ``2 * bucket_window * bands``, so the default cap is a safety
            valve against degenerate inputs, not a recall knob — caps far
            below the enumeration bound truncate true neighbours.
        max_bucket: LSH buckets larger than this are skipped — they
            correspond to degenerate clumps whose all-pairs expansion would
            be quadratic again.
        bucket_window: within a bucket, each member pairs with at most this
            many following members in the band's salted order; buckets up to
            ``bucket_window + 1`` members still emit all their pairs, and
            larger buckets rely on the per-band orders being independent so
            a pair truncated in one band is enumerated in another.
        identical_window: bucket window of the one-shot identical-signature
            pass.  Records with identical full signatures would collide in
            every band, so their pairs are enumerated exactly once (and
            bypass ``min_band_collisions``); a single pass can afford a much
            wider window than the per-band loop.
        verify_chunk: candidate pairs verified per exact-distance chunk.
        seed: seed of the MinHash permutations.
    """

    num_perm: int = 96
    bands: int = 48
    min_band_collisions: int = 2
    cell_factor: float = 2.0
    candidate_cap: int = 4096
    max_bucket: int = 4096
    bucket_window: int = 32
    identical_window: int = 128
    verify_chunk: int = 262_144
    seed: int = 0


#: Shared default LSH configuration.
DEFAULT_LSH_CONFIG = LSHConfig()


def _lsh_cell_tokens(
    features: np.ndarray, radius: float, metric: str, cell_factor: float
) -> np.ndarray:
    """Quantized grid-cell tokens: the LSH "shingles" of numeric vectors.

    Each dimension contributes two tokens, one per half-offset grid of cell
    width ``cell_factor * radius`` (cosine vectors are unit-normalised first
    and the width uses the chord radius ``sqrt(2 * radius)``).  With
    ``cell_factor >= 2`` a within-radius pair agrees on at least one of the
    two grids in every dimension, which lower-bounds its Jaccard similarity
    at 1/3 regardless of dimensionality.
    """
    points = features
    if metric == "cosine":
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        points = features / np.where(norms == 0.0, 1.0, norms)
        width = cell_factor * math.sqrt(max(2.0 * radius, 0.0))
    else:
        width = cell_factor * radius
    if not width > 0.0 or not math.isfinite(width):
        # Degenerate radius: any positive width groups coincident points.
        width = 1.0
    n, dims = points.shape
    salts = splitmix64(np.arange(2 * dims, dtype=np.uint64))
    tokens = np.empty((n, 2 * dims), dtype=np.uint64)
    for offset_grid in range(2):
        cells = np.floor(points / width + 0.5 * offset_grid).astype(np.int64)
        start = offset_grid * dims
        tokens[:, start : start + dims] = splitmix64(
            cells.astype(np.uint64) ^ salts[start : start + dims]
        )
    return tokens


def _bucket_pairs(
    members: np.ndarray, starts: np.ndarray, sizes: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """All (windowed) within-bucket pairs, vectorised across buckets.

    ``members`` concatenates the members of every eligible bucket (in the
    caller's per-band order); the element at local position ``i`` of a
    size-``s`` bucket pairs with the next ``min(s - 1 - i, window)``
    members, so every unordered pair is emitted at most once and buckets of
    up to ``window + 1`` members emit all their pairs.  The returned arrays
    hold member *values*, whose relative order follows the bucket order —
    callers canonicalise pairs themselves.
    """
    local = np.arange(len(members), dtype=np.int64) - np.repeat(starts, sizes)
    leads = np.minimum(np.repeat(sizes, sizes) - 1 - local, window)
    total = int(leads.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    position = np.arange(len(members), dtype=np.int64)
    first_right = np.repeat(position + 1, leads)
    run_starts = np.zeros(len(members), dtype=np.int64)
    np.cumsum(leads[:-1], out=run_starts[1:])
    within_run = np.arange(total, dtype=np.int64) - np.repeat(run_starts, leads)
    left = np.repeat(members, leads)
    right = members[first_right + within_run]
    return left, right


def _column_pairs(
    column: np.ndarray, tiebreak: np.ndarray, max_bucket: int, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed within-bucket pairs of one hash column.

    Groups equal values of ``column`` into buckets, orders members of each
    bucket by ``tiebreak``, skips buckets larger than ``max_bucket``, and
    enumerates windowed pairs via :func:`_bucket_pairs`.
    """
    n = len(column)
    order = np.lexsort((tiebreak, column))
    sorted_keys = column[order]
    change = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
    sizes = np.diff(np.concatenate((starts, np.array([n], dtype=np.int64))))
    eligible = (sizes >= 2) & (sizes <= max_bucket)
    if not bool(np.any(eligible)):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    kept_sizes = sizes[eligible]
    members = order[np.repeat(eligible, sizes)]
    kept_starts = np.zeros(len(kept_sizes), dtype=np.int64)
    np.cumsum(kept_sizes[:-1], out=kept_starts[1:])
    return _bucket_pairs(members, kept_starts, kept_sizes, window)


def build_lsh_neighbor_graph(
    features: np.ndarray,
    radius: float,
    metric: str = "euclidean",
    inclusive: bool = True,
    config: LSHConfig = DEFAULT_LSH_CONFIG,
) -> tuple[NeighborGraph, int]:
    """Approximate epsilon self-join via banded MinHash-LSH candidates.

    Candidate pairs are generated from a banded MinHash index over quantized
    grid-cell tokens and then *verified with exact distances* — so the
    resulting graph contains no false edges: it is a subgraph of
    :func:`build_neighbor_graph` on the same inputs, missing (with low
    probability) some true edges.  Peak memory is bounded by the candidate
    set, never by ``n^2``.

    One floating-point caveat: verification computes candidate distances
    with :func:`~repro.clustering.distance.elementwise_distances`, while the
    blocked join computes slabs via the norm-expansion matmul — two exact
    formulas that can disagree by one ulp.  A pair whose distance ties the
    radius *exactly* may therefore round into this graph and out of the
    blocked one (or vice versa); subgraph comparisons must treat such
    boundary ties as agreements.

    Returns the graph and the number of directed candidate pairs verified
    (the planner surfaces it as ``lsh_candidates``).
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
    if config.bands < 1 or config.num_perm % config.bands != 0:
        raise ValueError(
            f"bands must divide num_perm: bands={config.bands}, "
            f"num_perm={config.num_perm}"
        )
    if config.min_band_collisions < 1:
        raise ValueError(
            f"min_band_collisions must be >= 1, got {config.min_band_collisions}"
        )
    if config.identical_window < 1:
        raise ValueError(
            f"identical_window must be >= 1, got {config.identical_window}"
        )
    n, dims = features.shape
    if n < 2 or dims == 0:
        # Too small (or dimensionless) for hashing to pay off; the exact
        # blocked join is already cheap and keeps the semantics exact.
        return (
            build_neighbor_graph(features, radius, metric=metric, inclusive=inclusive),
            0,
        )

    tokens = _lsh_cell_tokens(features, radius, metric, config.cell_factor)
    signer = MinHashSigner(num_perm=config.num_perm, seed=config.seed)
    keys = np.empty((n, config.bands), dtype=np.uint64)
    for start in range(0, n, 65536):
        stop = min(start + 65536, n)
        keys[start:stop] = band_keys(
            signer.signature_matrix(tokens[start:stop]), config.bands
        )
    del tokens

    if n >= 1 << 31:
        raise ValueError(f"LSH pair packing supports at most 2^31 - 1 rows, got {n}")
    band_salts = splitmix64(
        np.arange(config.bands + 1, dtype=np.uint64) + np.uint64(config.seed)
    )
    index = np.arange(n, dtype=np.uint64)

    # Records with identical full signatures (typically: the same grid cell)
    # collide in *every* band, so the band loop would re-emit each of their
    # pairs ``bands`` times — in clustered data that re-emission dominates
    # the raw candidate stream by an order of magnitude.  Fold the whole
    # signature into one key per record, enumerate identical-signature pairs
    # exactly once with a wider window (one pass can afford what ``bands``
    # passes cannot), and mask such pairs out of every band below.  These
    # pairs would trivially satisfy any ``min_band_collisions`` threshold,
    # so they bypass the multiplicity filter.
    full_key = keys[:, 0].astype(np.uint64, copy=True)
    for band in range(1, config.bands):
        np.bitwise_xor(full_key, keys[:, band], out=full_key)
        full_key = splitmix64(full_key)
    left, right = _column_pairs(
        full_key,
        splitmix64(index ^ band_salts[config.bands]),
        config.max_bucket,
        config.identical_window,
    )
    # The salted bucket order makes left/right arbitrary, so pairs are
    # canonicalised to (min, max) before packing both indices into one int64
    # key via shifts — integer division by ``n`` to unpack would dominate
    # the join at tens of millions of pairs.
    identical = (np.minimum(left, right) << np.int64(32)) | np.maximum(left, right)

    unordered: list[np.ndarray] = []
    for band in range(config.bands):
        # Bucket members are ordered by a per-band salted hash of their
        # index, NOT by the index itself: the enumeration window truncates
        # buckets larger than ``bucket_window + 1``, and a shared (e.g.
        # index-based) order would miss the same far-apart pairs in *every*
        # band.  Independent per-band orders give each truncated pair
        # ``bands`` chances to fall inside a window.
        left, right = _column_pairs(
            keys[:, band],
            splitmix64(index ^ band_salts[band]),
            config.max_bucket,
            config.bucket_window,
        )
        if not len(left):
            continue
        cross = full_key[left] != full_key[right]
        left, right = left[cross], right[cross]
        if len(left):
            unordered.append(
                (np.minimum(left, right) << np.int64(32)) | np.maximum(left, right)
            )
    del keys, full_key

    if not unordered and not len(identical):
        indptr = np.zeros(n + 1, dtype=np.int64)
        empty = NeighborGraph(
            indptr=indptr,
            indices=np.empty(0, dtype=np.int64),
            num_cols=n,
            radius=float(radius),
            metric=metric,
            inclusive=inclusive,
        )
        return empty, 0

    # Dedup with an explicit sort + adjacent-difference mask: ``np.unique``
    # routes large integer inputs through a hash table that is an order of
    # magnitude slower than sorting this many int64 keys in place.  The sort
    # also yields each pair's band-collision count (its run length), which
    # the ``min_band_collisions`` filter uses to drop the long tail of
    # single-collision candidates before the expensive verification gathers.
    if unordered:
        raw = np.concatenate(unordered)
        total_raw = len(raw)
        raw.sort()
        keep = np.empty(total_raw, dtype=bool)
        keep[0] = True
        np.not_equal(raw[1:], raw[:-1], out=keep[1:])
        # Each unique pair is one run in the sorted stream; its run length is
        # its band-collision count.  Gathering survivors through the run-start
        # indices (rather than materialising every unique key first) keeps the
        # only full-width temporaries to the sorted stream and its boolean
        # mask — allocation volume, not arithmetic, is what dominates at this
        # scale.
        run_starts = np.flatnonzero(keep)
        del keep
        if config.min_band_collisions > 1 and len(run_starts):
            collisions = np.empty(len(run_starts), dtype=np.int64)
            np.subtract(run_starts[1:], run_starts[:-1], out=collisions[:-1])
            collisions[-1] = total_raw - run_starts[-1]
            run_starts = run_starts[collisions >= config.min_band_collisions]
            del collisions
        cross_keys = raw[run_starts]
        del raw, run_starts
    else:
        cross_keys = np.empty(0, dtype=np.int64)
    del unordered
    # The two streams are disjoint by construction (the band loop masked out
    # every identical-signature pair), so a plain concatenation stays
    # duplicate-free.
    pair_keys = (
        np.concatenate((identical, cross_keys)) if len(identical) else cross_keys
    )
    del identical, cross_keys
    if not len(pair_keys):
        indptr = np.zeros(n + 1, dtype=np.int64)
        empty = NeighborGraph(
            indptr=indptr,
            indices=np.empty(0, dtype=np.int64),
            num_cols=n,
            radius=float(radius),
            metric=metric,
            inclusive=inclusive,
        )
        return empty, 0
    low = np.int64(0xFFFFFFFF)
    lo = pair_keys >> np.int64(32)
    hi = pair_keys & low
    del pair_keys
    num_candidates = 2 * len(lo)

    capped = False
    if config.candidate_cap > 0:
        directed_counts = np.bincount(lo, minlength=n) + np.bincount(hi, minlength=n)
        capped = int(directed_counts.max(initial=0)) > config.candidate_cap
        del directed_counts
    if capped:
        # Degenerate inputs only: enumerate directed candidates and keep each
        # row's first ``candidate_cap`` (lowest column index wins,
        # deterministically) before verification.  The masking passes over
        # the doubled candidate set are expensive, so the common
        # everything-under-cap case above skips them entirely.
        directed = np.concatenate(
            ((lo << np.int64(32)) | hi, (hi << np.int64(32)) | lo)
        )
        del lo, hi
        directed.sort()
        rows = directed >> np.int64(32)
        cols = directed & low
        del directed
        counts = np.bincount(rows, minlength=n)
        row_starts = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=row_starts[1:])
        rank = np.arange(len(rows), dtype=np.int64) - np.repeat(row_starts, counts)
        keep = rank < config.candidate_cap
        rows, cols = rows[keep], cols[keep]
    else:
        # Verify each unordered pair once — distances are bitwise-symmetric
        # for every supported metric, so this halves verification (and the
        # big directed sort) without changing a single edge; survivors are
        # mirrored after the fact.
        rows, cols = lo, hi
        del lo, hi

    within: list[np.ndarray] = []
    for start in range(0, len(rows), config.verify_chunk):
        stop = min(start + config.verify_chunk, len(rows))
        distances = elementwise_distances(
            features[rows[start:stop]], features[cols[start:stop]], metric
        )
        within.append(distances <= radius if inclusive else distances < radius)
    keep = (
        np.concatenate(within) if within else np.empty(0, dtype=bool)
    )
    rows, cols = rows[keep], cols[keep]
    if not capped:
        directed = np.concatenate(
            ((rows << np.int64(32)) | cols, (cols << np.int64(32)) | rows)
        )
        directed.sort()
        rows = directed >> np.int64(32)
        cols = directed & low
        del directed
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    graph = NeighborGraph(
        indptr=indptr,
        indices=cols.astype(np.int64, copy=False),
        num_cols=n,
        radius=float(radius),
        metric=metric,
        inclusive=inclusive,
    )
    return graph, num_candidates


def dense_percentile_radius(distances: np.ndarray, percentile: float) -> float:
    """The historical percentile-radius rule over a dense distance matrix.

    Takes the given percentile of the *positive off-diagonal* entries,
    falling back to 1.0 when every off-diagonal distance is zero (all points
    coincide).  This is the single definition shared by DBSCAN's automatic
    ``eps``, the covering threshold ``t`` and the planner's dense regime —
    the dense/sparse plan identity rests on all of them using the same rule.
    """
    off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
    positive = off_diagonal[off_diagonal > 0.0]
    if positive.size == 0:
        return 1.0
    return float(np.percentile(positive, percentile))


def sample_percentile_radius(
    features: np.ndarray,
    percentile: float,
    metric: str = "euclidean",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = DEFAULT_SAMPLE_SEED,
    chunk_size: int = 8192,
) -> float:
    """Percentile of the pairwise distance distribution from a seeded sample.

    The dense rules (:class:`~repro.clustering.dbscan.DBSCAN`'s automatic
    ``eps``, the covering threshold ``t``) take a percentile of all positive
    off-diagonal distances — an O(n^2) computation over an O(n^2) matrix.
    This resolver never materialises the matrix:

    * **exact regime** — when the full off-diagonal population ``n * (n - 1)``
      fits in ``sample_size``, every off-diagonal distance is enumerated in
      blocked slabs; the result is bit-identical to the dense rules (each
      unordered pair contributes both of its symmetric entries, exactly as
      the dense off-diagonal does).
    * **sampled regime** — otherwise, ``sample_size`` ordered pairs
      ``(i, j), i != j`` are drawn uniformly with a seeded RNG and only those
      distances are computed (in chunks, memory-bounded).  Deterministic
      given the seed.

    Returns 1.0 when there are fewer than two points or every considered
    distance is zero, matching the dense rules' degenerate fallback.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
    if not 0.0 < percentile < 100.0:
        raise ValueError("percentile must be in (0, 100)")
    if sample_size < 1:
        raise ValueError(f"sample_size must be >= 1, got {sample_size}")
    n = features.shape[0]
    if n < 2:
        return 1.0
    if n * (n - 1) <= sample_size:
        # Exact regime: the full off-diagonal population fits in the sample
        # budget, so the percentile is taken over all of it — computed with
        # the same dense kernel as the historical rules, because BLAS results
        # are shape-dependent in the last ulp and the radii must be
        # bit-identical for the dense and sparse plans to coincide.  Memory
        # stays bounded: n^2 <= sample_size + n, i.e. a few megabytes at the
        # default budget.
        return dense_percentile_radius(
            pairwise_distances(features, metric=metric), percentile
        )
    positives: list[np.ndarray] = []
    rng = np.random.default_rng(seed)
    left_index = rng.integers(0, n, size=sample_size)
    offset = rng.integers(1, n, size=sample_size)
    right_index = (left_index + offset) % n
    for start in range(0, sample_size, chunk_size):
        stop = min(start + chunk_size, sample_size)
        distances = elementwise_distances(
            features[left_index[start:stop]],
            features[right_index[start:stop]],
            metric,
        )
        positives.append(distances[distances > 0.0])
    sampled = np.concatenate(positives)
    if sampled.size == 0:
        return 1.0
    return float(np.percentile(sampled, percentile))


#: Type of the dense-matrix provider a planner delegates small inputs to.
DenseDistanceProvider = Callable[[np.ndarray, str], np.ndarray]


@dataclass
class PlannerStats:
    """Counters of a :class:`NeighborPlanner`'s routing decisions."""

    dense_graphs: int = 0
    sparse_graphs: int = 0
    lsh_graphs: int = 0
    cross_joins: int = 0
    dense_radii: int = 0
    sampled_radii: int = 0
    edges_built: int = 0
    lsh_candidates: int = 0
    lsh_edges: int = 0
    lsh_oracle_runs: int = 0
    lsh_recall_min: float | None = None

    def to_dict(self) -> dict[str, object]:
        """Plain-dict snapshot (JSON-serializable, for service ``/stats``).

        ``lsh_routes`` mirrors ``lsh_graphs`` under the routing-counter name
        the service dashboards use alongside ``repro_planner_route_total``.
        """
        return {
            "dense_graphs": self.dense_graphs,
            "sparse_graphs": self.sparse_graphs,
            "lsh_graphs": self.lsh_graphs,
            "lsh_routes": self.lsh_graphs,
            "cross_joins": self.cross_joins,
            "dense_radii": self.dense_radii,
            "sampled_radii": self.sampled_radii,
            "edges_built": self.edges_built,
            "lsh_candidates": self.lsh_candidates,
            "lsh_edges": self.lsh_edges,
            "lsh_oracle_runs": self.lsh_oracle_runs,
            "lsh_recall_min": self.lsh_recall_min,
        }


class NeighborPlanner:
    """Routing policy between dense, exact sparse and LSH batch planning.

    Small inputs (``n <= dense_threshold``) keep the historical dense path:
    the full distance matrix (typically already cached by the feature engine)
    is thresholded into a graph, and percentile radii are exact — this is the
    regime every pre-existing test and fixed-seed run lives in.  Larger
    inputs switch to blocked radius joins and sampled radii, so the dense
    O(n^2) matrix is never materialised above the threshold.  Above
    ``approx_threshold`` even the exact blocked join's full slab scans are
    too slow, and self-joins route to the approximate MinHash-LSH regime
    (:func:`build_lsh_neighbor_graph`) — candidate generation is hash-based,
    exact distances are computed only on candidates, so the graph is a
    subgraph of the exact one with probabilistic recall.  Cross joins stay
    exact in every regime (their cost is ``n * pool``, not ``n^2``).

    Args:
        dense_threshold: maximum point count for the dense regime; ``0``
            forces the sparse path everywhere (used by the equivalence tests).
        block_size: rows per slab in blocked joins.
        sample_size: pairwise distances sampled by the percentile estimator.
        seed: base seed of the sampling RNG (per-call seeds are derived from
            it and the call-site inputs; see :meth:`resolve_radius`).
        dense_distances: provider of dense matrices for the small regime;
            defaults to :func:`~repro.clustering.distance.pairwise_distances`.
            The feature engine injects its per-run matrix cache here.
        approx_threshold: self-joins strictly larger than this route to the
            LSH regime; ``0`` forces LSH everywhere dense does not apply
            (used by the forced-LSH golden tests), ``None`` disables the
            regime entirely.
        lsh: LSH knobs for the approximate regime.
        recall_oracle_max: when an LSH graph is built over at most this many
            points, the exact graph is also built and the edge recall
            recorded in the stats (``lsh_recall_min``) — an always-on
            quality oracle for benchmarks and smoke tests; 0 disables it.
    """

    def __init__(
        self,
        dense_threshold: int = DEFAULT_DENSE_THRESHOLD,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = DEFAULT_SAMPLE_SEED,
        dense_distances: DenseDistanceProvider | None = None,
        approx_threshold: int | None = DEFAULT_APPROX_THRESHOLD,
        lsh: LSHConfig = DEFAULT_LSH_CONFIG,
        recall_oracle_max: int = 0,
    ) -> None:
        if dense_threshold < 0:
            raise ValueError(f"dense_threshold must be >= 0, got {dense_threshold}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if approx_threshold is not None and approx_threshold < 0:
            raise ValueError(
                f"approx_threshold must be >= 0 or None, got {approx_threshold}"
            )
        if recall_oracle_max < 0:
            raise ValueError(
                f"recall_oracle_max must be >= 0, got {recall_oracle_max}"
            )
        self.dense_threshold = dense_threshold
        self.block_size = block_size
        self.sample_size = sample_size
        self.seed = seed
        self.approx_threshold = approx_threshold
        self.lsh = lsh
        self.recall_oracle_max = recall_oracle_max
        #: Optional :class:`~repro.observability.tracing.Tracer` emitting
        #: ``planner:*`` spans.  An attribute (not a constructor argument) so
        #: the clustering layer never imports the observability package; the
        #: resolver and pipeline stages bind it from their context.
        self.tracer = None
        self._dense_distances = dense_distances or (
            lambda features, metric: pairwise_distances(features, metric=metric)
        )
        self._stats = PlannerStats()
        self._lock = threading.Lock()

    # -- routing -------------------------------------------------------------

    def use_dense(self, num_points: int) -> bool:
        """Whether a self-join over ``num_points`` points stays dense."""
        return num_points <= self.dense_threshold

    def use_lsh(self, num_points: int) -> bool:
        """Whether a self-join over ``num_points`` points routes to LSH."""
        return (
            self.approx_threshold is not None
            and num_points > self.approx_threshold
            and not self.use_dense(num_points)
        )

    def _span(self, name: str, **attributes: object) -> ContextManager:
        tracer = self.tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return nullcontext()
        return tracer.span(name, **attributes)

    def use_dense_cross(self, num_rows: int, num_cols: int) -> bool:
        """Whether a ``(num_rows, num_cols)`` cross join stays dense.

        The dense cross matrix is allowed as long as its cell count does not
        exceed that of the largest allowed square matrix.
        """
        return num_rows * num_cols <= self.dense_threshold * self.dense_threshold

    def dense_distances(self, features: np.ndarray, metric: str) -> np.ndarray:
        """The dense pairwise matrix for the small regime (provider-backed)."""
        return self._dense_distances(features, metric)

    # -- percentile radii ----------------------------------------------------

    def _sample_seed(self, features: np.ndarray, percentile: float, metric: str) -> int:
        """Per-call-site seed of the sampled-percentile RNG stream.

        Derived from the planner's base seed and the call inputs (feature
        bytes, percentile, metric), so repeated radius resolutions on the
        same inputs draw the *same* sample regardless of how many other
        resolutions happened in between, in this process or any other —
        radii are byte-stable per call site, not per call order.
        """
        digest = hashlib.blake2b(digest_size=8)
        digest.update(np.ascontiguousarray(features).tobytes())
        digest.update(f"|{percentile!r}|{metric}|{self.seed}".encode("utf-8"))
        return int.from_bytes(digest.digest(), "little")

    def resolve_radius(
        self, features: np.ndarray, percentile: float, metric: str = "euclidean"
    ) -> float:
        """Percentile radius over the pairwise distances of ``features``.

        Dense regime: exact percentile of all positive off-diagonal entries
        (bit-identical to the historical rules).  Sparse regime: seeded
        sample via :func:`sample_percentile_radius`, with the sample seed
        derived per call site (:meth:`_sample_seed`) so the resolved radius
        is a pure function of the inputs and the planner's base seed.
        """
        features = np.asarray(features, dtype=float)
        n = features.shape[0]
        if n < 2:
            return 1.0
        if self.use_dense(n):
            with self._lock:
                self._stats.dense_radii += 1
            return dense_percentile_radius(
                self.dense_distances(features, metric), percentile
            )
        with self._lock:
            self._stats.sampled_radii += 1
        with self._span("planner:radius", points=n, percentile=percentile):
            return sample_percentile_radius(
                features,
                percentile,
                metric=metric,
                sample_size=self.sample_size,
                seed=self._sample_seed(features, percentile, metric),
            )

    # -- graphs --------------------------------------------------------------

    def graph(
        self,
        features: np.ndarray,
        radius: float,
        metric: str = "euclidean",
        inclusive: bool = True,
    ) -> NeighborGraph:
        """Epsilon self-join graph: dense, exact sparse or approximate LSH."""
        features = np.asarray(features, dtype=float)
        n = features.shape[0]
        if self.use_dense(n):
            with self._span("planner:graph", regime="dense", points=n) as scope:
                graph = NeighborGraph.from_dense(
                    self.dense_distances(features, metric),
                    radius,
                    metric=metric,
                    inclusive=inclusive,
                )
                if scope is not None:
                    scope.set_attribute("edges", graph.num_edges)
            with self._lock:
                self._stats.dense_graphs += 1
                self._stats.edges_built += graph.num_edges
            return graph
        if self.use_lsh(n):
            with self._span("planner:graph", regime="lsh", points=n) as scope:
                graph, candidates = build_lsh_neighbor_graph(
                    features, radius, metric=metric, inclusive=inclusive,
                    config=self.lsh,
                )
                if scope is not None:
                    scope.set_attribute("edges", graph.num_edges)
                    scope.set_attribute("candidates", candidates)
            recall: float | None = None
            if 0 < n <= self.recall_oracle_max:
                exact = build_neighbor_graph(
                    features, radius, metric=metric, inclusive=inclusive,
                    block_size=self.block_size,
                )
                # LSH edges are exact-verified, hence a subset of the exact
                # edges — the edge-count ratio *is* the recall.  Clamped:
                # pairs whose distance ties the radius exactly can round
                # into the LSH graph but out of the blocked one (one-ulp
                # arithmetic difference, see build_lsh_neighbor_graph).
                recall = (
                    1.0
                    if exact.num_edges == 0
                    else min(1.0, graph.num_edges / exact.num_edges)
                )
            with self._lock:
                self._stats.lsh_graphs += 1
                self._stats.lsh_candidates += candidates
                self._stats.lsh_edges += graph.num_edges
                self._stats.edges_built += graph.num_edges
                if recall is not None:
                    self._stats.lsh_oracle_runs += 1
                    previous = self._stats.lsh_recall_min
                    self._stats.lsh_recall_min = (
                        recall if previous is None else min(previous, recall)
                    )
            return graph
        with self._span("planner:graph", regime="sparse", points=n) as scope:
            graph = build_neighbor_graph(
                features, radius, metric=metric, inclusive=inclusive,
                block_size=self.block_size,
            )
            if scope is not None:
                scope.set_attribute("edges", graph.num_edges)
        with self._lock:
            self._stats.sparse_graphs += 1
            self._stats.edges_built += graph.num_edges
        return graph

    def cross_graph(
        self,
        left: np.ndarray,
        right: np.ndarray,
        radius: float,
        metric: str = "euclidean",
        inclusive: bool = False,
        return_nearest: bool = False,
    ) -> tuple[NeighborGraph, np.ndarray | None]:
        """Blocked radius join between two point sets (always memory-bounded).

        Cross joins stay exact in every regime: their cost is linear in
        ``rows * cols`` (questions x pool), never quadratic in the corpus.
        """
        with self._span(
            "planner:cross_join", rows=np.asarray(left).shape[0],
            cols=np.asarray(right).shape[0],
        ) as scope:
            graph, nearest = build_cross_neighbor_graph(
                left, right, radius, metric=metric, inclusive=inclusive,
                block_size=self.block_size, return_nearest=return_nearest,
            )
            if scope is not None:
                scope.set_attribute("edges", graph.num_edges)
        with self._lock:
            self._stats.cross_joins += 1
            self._stats.edges_built += graph.num_edges
        return graph, nearest

    # -- accounting ----------------------------------------------------------

    def stats(self) -> PlannerStats:
        """A point-in-time copy of the routing counters."""
        with self._lock:
            return replace(self._stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborPlanner(dense_threshold={self.dense_threshold}, "
            f"approx_threshold={self.approx_threshold}, "
            f"block_size={self.block_size}, sample_size={self.sample_size})"
        )


#: Module-level default planner used when no caller supplies one.
_DEFAULT_PLANNER = NeighborPlanner()


def default_planner() -> NeighborPlanner:
    """The process-wide default :class:`NeighborPlanner`."""
    return _DEFAULT_PLANNER
