"""Sparse epsilon-neighbor graphs: batch planning past the dense O(n^2) wall.

Batch planning — DBSCAN clustering of question feature vectors (paper Section
III) and covering-based demonstration selection (Sections IV-D/V) — only ever
asks two questions of the pairwise geometry:

* *which points lie within a radius of each point* (the DBSCAN epsilon
  neighbourhood, the covering radius ``t``), and
* *what is a percentile of the pairwise distance distribution* (the automatic
  ``eps`` / threshold rules).

Neither needs the dense ``(n, n)`` distance matrix that
:func:`~repro.clustering.distance.pairwise_distances` materialises (~80 GB of
float64 at n = 100k).  This module answers both questions with bounded memory:

* :class:`NeighborGraph` — a CSR-style epsilon-neighbor graph: for every row
  point, the column points within ``radius``, stored as two flat index arrays.
* :func:`build_neighbor_graph` / :func:`build_cross_neighbor_graph` — blocked
  radius joins: distances are computed in fixed-size row blocks (peak memory
  ``O(block_size * n)``) and only the edges within the radius are kept.
* :func:`sample_percentile_radius` — percentile radii resolved from a seeded
  sample of pairwise distances instead of the full matrix.
* :class:`NeighborPlanner` — the policy object deciding, per planning request,
  whether to serve the classic dense matrix (small inputs, where the cached
  matrix is cheap and the historical code path stays byte-identical) or the
  sparse blocked path (large inputs, where the dense matrix must never be
  materialised).

The planner is threaded through the
:class:`~repro.features.engine.FeatureStore`, the clustering-based batchers,
:class:`~repro.clustering.dbscan.DBSCAN` and the covering selector; both
regimes are golden-tested to produce identical plans on fixed seeds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.clustering.distance import (
    cross_distances,
    elementwise_distances,
    pairwise_distances,
)

#: Inputs with at most this many points use the dense distance-matrix path.
DEFAULT_DENSE_THRESHOLD = 2048

#: Rows per block in blocked radius joins (peak slab = block_size * n floats).
DEFAULT_BLOCK_SIZE = 1024

#: Pairwise distances sampled when resolving a percentile radius sparsely.
DEFAULT_SAMPLE_SIZE = 262_144

#: Seed of the radius-sampling RNG (fixed: planning must be reproducible).
DEFAULT_SAMPLE_SEED = 0


@dataclass(frozen=True)
class NeighborGraph:
    """A CSR-style epsilon-neighbor graph.

    Row ``i`` owns the column indices ``indices[indptr[i]:indptr[i + 1]]`` —
    the points within ``radius`` of point ``i`` under ``metric``.  For
    self-joins (:func:`build_neighbor_graph`) rows and columns index the same
    point set and self-edges are excluded; for cross joins
    (:func:`build_cross_neighbor_graph`) rows are the left set (questions) and
    columns the right set (pool demonstrations).

    Attributes:
        indptr: ``(num_rows + 1,)`` row pointer array.
        indices: ``(num_edges,)`` column indices, ascending within each row.
        num_cols: size of the column point set.
        radius: the join radius the graph was built with.
        metric: distance metric of the join.
        inclusive: whether the radius comparison was ``<=`` (DBSCAN's
            epsilon rule) or strict ``<`` (the covering rule).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_cols: int
    radius: float
    metric: str
    inclusive: bool

    @property
    def num_rows(self) -> int:
        """Number of row points."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Total number of stored edges."""
        return int(self.indptr[-1])

    def neighbors(self, row: int) -> np.ndarray:
        """Column indices within the radius of ``row`` (a read-only view)."""
        return self.indices[self.indptr[row] : self.indptr[row + 1]]

    def degrees(self) -> np.ndarray:
        """Per-row neighbour counts."""
        return np.diff(self.indptr)

    def transpose(self) -> "NeighborGraph":
        """The column-to-row view of this graph (e.g. demo -> questions)."""
        counts = np.bincount(self.indices, minlength=self.num_cols)
        indptr = np.zeros(self.num_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(self.indices, kind="stable")
        rows = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr)
        )
        return NeighborGraph(
            indptr=indptr,
            indices=rows[order],
            num_cols=self.num_rows,
            radius=self.radius,
            metric=self.metric,
            inclusive=self.inclusive,
        )

    @classmethod
    def from_dense(
        cls,
        distances: np.ndarray,
        radius: float,
        metric: str = "euclidean",
        inclusive: bool = True,
    ) -> "NeighborGraph":
        """Build the graph from a precomputed dense distance matrix.

        This is the small-n path: the dense matrix is already cached by the
        feature engine, so thresholding it reproduces the historical
        neighbourhoods bit-for-bit.  Self-edges (the diagonal) are excluded
        for square matrices.
        """
        distances = np.asarray(distances)
        mask = distances <= radius if inclusive else distances < radius
        if mask.ndim != 2:
            raise ValueError(f"expected a 2-D distance matrix, got shape {mask.shape}")
        if mask.shape[0] == mask.shape[1]:
            np.fill_diagonal(mask, False)
        rows, cols = np.nonzero(mask)
        counts = np.bincount(rows, minlength=mask.shape[0])
        indptr = np.zeros(mask.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            indptr=indptr,
            indices=cols.astype(np.int64, copy=False),
            num_cols=mask.shape[1],
            radius=float(radius),
            metric=metric,
            inclusive=inclusive,
        )


def _assemble(
    blocks_indices: list[np.ndarray], counts: np.ndarray, num_cols: int,
    radius: float, metric: str, inclusive: bool,
) -> NeighborGraph:
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = (
        np.concatenate(blocks_indices)
        if blocks_indices
        else np.empty(0, dtype=np.int64)
    )
    return NeighborGraph(
        indptr=indptr,
        indices=indices.astype(np.int64, copy=False),
        num_cols=num_cols,
        radius=float(radius),
        metric=metric,
        inclusive=inclusive,
    )


def _zero_row_mask(features: np.ndarray, metric: str) -> np.ndarray | None:
    """Mask of zero-norm rows, needed to patch cosine self-join slabs."""
    if metric != "cosine":
        return None
    mask = np.linalg.norm(features, axis=1) == 0.0
    return mask if bool(np.any(mask)) else None


def _self_join_slab(
    features: np.ndarray,
    start: int,
    stop: int,
    metric: str,
    zero_mask: np.ndarray | None,
) -> np.ndarray:
    """One ``(stop - start, n)`` distance slab of the self-join.

    Matches :func:`~repro.clustering.distance.pairwise_distances` semantics:
    :func:`~repro.clustering.distance.cross_distances` reports two zero
    vectors as maximally distant under the cosine metric, while the dense
    self-join treats them as coincident — the patch keeps blocked graphs
    bit-compatible with dense-matrix graphs.
    """
    slab = cross_distances(features[start:stop], features, metric=metric)
    if zero_mask is not None:
        block_zero = zero_mask[start:stop]
        if bool(np.any(block_zero)):
            slab[np.ix_(block_zero, zero_mask)] = 0.0
    return slab


def build_neighbor_graph(
    features: np.ndarray,
    radius: float,
    metric: str = "euclidean",
    inclusive: bool = True,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> NeighborGraph:
    """Blocked epsilon self-join: edges between points within ``radius``.

    Distances are computed one ``(block_size, n)`` slab at a time, so peak
    memory is bounded by the block size regardless of ``n``; the dense
    ``(n, n)`` matrix is never materialised.  Self-edges are excluded.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n = features.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    blocks: list[np.ndarray] = []
    zero_mask = _zero_row_mask(features, metric)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        slab = _self_join_slab(features, start, stop, metric, zero_mask)
        mask = slab <= radius if inclusive else slab < radius
        # Exclude the diagonal of the self-join: the slab's local row r is
        # global point start + r.
        local = np.arange(stop - start)
        mask[local, local + start] = False
        rows, cols = np.nonzero(mask)
        counts[start:stop] = np.bincount(rows, minlength=stop - start)
        blocks.append(cols)
    return _assemble(blocks, counts, n, radius, metric, inclusive)


def build_cross_neighbor_graph(
    left: np.ndarray,
    right: np.ndarray,
    radius: float,
    metric: str = "euclidean",
    inclusive: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
    return_nearest: bool = False,
) -> tuple[NeighborGraph, np.ndarray | None]:
    """Blocked radius join between two point sets (questions -> pool).

    Returns the left-to-right :class:`NeighborGraph` and, when
    ``return_nearest`` is set, the per-left-row index of the nearest right
    point (``np.argmin`` semantics: first column on exact ties) computed from
    the same slabs — the covering selector's fallback rule needs it and this
    avoids a second pass over the distances.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.ndim != 2 or right.ndim != 2:
        raise ValueError("both inputs must be 2-D matrices")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if right.shape[0] == 0:
        raise ValueError("cannot radius-join against an empty right point set")
    n = left.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    blocks: list[np.ndarray] = []
    nearest = np.zeros(n, dtype=np.int64) if return_nearest else None
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        slab = cross_distances(left[start:stop], right, metric=metric)
        mask = slab <= radius if inclusive else slab < radius
        rows, cols = np.nonzero(mask)
        counts[start:stop] = np.bincount(rows, minlength=stop - start)
        blocks.append(cols)
        if nearest is not None:
            nearest[start:stop] = np.argmin(slab, axis=1)
    graph = _assemble(blocks, counts, right.shape[0], radius, metric, inclusive)
    return graph, nearest


def dense_percentile_radius(distances: np.ndarray, percentile: float) -> float:
    """The historical percentile-radius rule over a dense distance matrix.

    Takes the given percentile of the *positive off-diagonal* entries,
    falling back to 1.0 when every off-diagonal distance is zero (all points
    coincide).  This is the single definition shared by DBSCAN's automatic
    ``eps``, the covering threshold ``t`` and the planner's dense regime —
    the dense/sparse plan identity rests on all of them using the same rule.
    """
    off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
    positive = off_diagonal[off_diagonal > 0.0]
    if positive.size == 0:
        return 1.0
    return float(np.percentile(positive, percentile))


def sample_percentile_radius(
    features: np.ndarray,
    percentile: float,
    metric: str = "euclidean",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = DEFAULT_SAMPLE_SEED,
    chunk_size: int = 8192,
) -> float:
    """Percentile of the pairwise distance distribution from a seeded sample.

    The dense rules (:class:`~repro.clustering.dbscan.DBSCAN`'s automatic
    ``eps``, the covering threshold ``t``) take a percentile of all positive
    off-diagonal distances — an O(n^2) computation over an O(n^2) matrix.
    This resolver never materialises the matrix:

    * **exact regime** — when the full off-diagonal population ``n * (n - 1)``
      fits in ``sample_size``, every off-diagonal distance is enumerated in
      blocked slabs; the result is bit-identical to the dense rules (each
      unordered pair contributes both of its symmetric entries, exactly as
      the dense off-diagonal does).
    * **sampled regime** — otherwise, ``sample_size`` ordered pairs
      ``(i, j), i != j`` are drawn uniformly with a seeded RNG and only those
      distances are computed (in chunks, memory-bounded).  Deterministic
      given the seed.

    Returns 1.0 when there are fewer than two points or every considered
    distance is zero, matching the dense rules' degenerate fallback.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
    if not 0.0 < percentile < 100.0:
        raise ValueError("percentile must be in (0, 100)")
    if sample_size < 1:
        raise ValueError(f"sample_size must be >= 1, got {sample_size}")
    n = features.shape[0]
    if n < 2:
        return 1.0
    if n * (n - 1) <= sample_size:
        # Exact regime: the full off-diagonal population fits in the sample
        # budget, so the percentile is taken over all of it — computed with
        # the same dense kernel as the historical rules, because BLAS results
        # are shape-dependent in the last ulp and the radii must be
        # bit-identical for the dense and sparse plans to coincide.  Memory
        # stays bounded: n^2 <= sample_size + n, i.e. a few megabytes at the
        # default budget.
        return dense_percentile_radius(
            pairwise_distances(features, metric=metric), percentile
        )
    positives: list[np.ndarray] = []
    rng = np.random.default_rng(seed)
    left_index = rng.integers(0, n, size=sample_size)
    offset = rng.integers(1, n, size=sample_size)
    right_index = (left_index + offset) % n
    for start in range(0, sample_size, chunk_size):
        stop = min(start + chunk_size, sample_size)
        distances = elementwise_distances(
            features[left_index[start:stop]],
            features[right_index[start:stop]],
            metric,
        )
        positives.append(distances[distances > 0.0])
    sampled = np.concatenate(positives)
    if sampled.size == 0:
        return 1.0
    return float(np.percentile(sampled, percentile))


#: Type of the dense-matrix provider a planner delegates small inputs to.
DenseDistanceProvider = Callable[[np.ndarray, str], np.ndarray]


@dataclass
class PlannerStats:
    """Counters of a :class:`NeighborPlanner`'s routing decisions."""

    dense_graphs: int = 0
    sparse_graphs: int = 0
    cross_joins: int = 0
    dense_radii: int = 0
    sampled_radii: int = 0
    edges_built: int = 0

    def to_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (JSON-serializable, for service ``/stats``)."""
        return {
            "dense_graphs": self.dense_graphs,
            "sparse_graphs": self.sparse_graphs,
            "cross_joins": self.cross_joins,
            "dense_radii": self.dense_radii,
            "sampled_radii": self.sampled_radii,
            "edges_built": self.edges_built,
        }


class NeighborPlanner:
    """Routing policy between dense-matrix and sparse-graph batch planning.

    Small inputs (``n <= dense_threshold``) keep the historical dense path:
    the full distance matrix (typically already cached by the feature engine)
    is thresholded into a graph, and percentile radii are exact — this is the
    regime every pre-existing test and fixed-seed run lives in.  Large inputs
    switch to blocked radius joins and sampled radii, so the dense O(n^2)
    matrix is never materialised above the threshold.

    Args:
        dense_threshold: maximum point count for the dense regime; ``0``
            forces the sparse path everywhere (used by the equivalence tests).
        block_size: rows per slab in blocked joins.
        sample_size: pairwise distances sampled by the percentile estimator.
        seed: seed of the sampling RNG.
        dense_distances: provider of dense matrices for the small regime;
            defaults to :func:`~repro.clustering.distance.pairwise_distances`.
            The feature engine injects its per-run matrix cache here.
    """

    def __init__(
        self,
        dense_threshold: int = DEFAULT_DENSE_THRESHOLD,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = DEFAULT_SAMPLE_SEED,
        dense_distances: DenseDistanceProvider | None = None,
    ) -> None:
        if dense_threshold < 0:
            raise ValueError(f"dense_threshold must be >= 0, got {dense_threshold}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.dense_threshold = dense_threshold
        self.block_size = block_size
        self.sample_size = sample_size
        self.seed = seed
        self._dense_distances = dense_distances or (
            lambda features, metric: pairwise_distances(features, metric=metric)
        )
        self._stats = PlannerStats()
        self._lock = threading.Lock()

    # -- routing -------------------------------------------------------------

    def use_dense(self, num_points: int) -> bool:
        """Whether a self-join over ``num_points`` points stays dense."""
        return num_points <= self.dense_threshold

    def use_dense_cross(self, num_rows: int, num_cols: int) -> bool:
        """Whether a ``(num_rows, num_cols)`` cross join stays dense.

        The dense cross matrix is allowed as long as its cell count does not
        exceed that of the largest allowed square matrix.
        """
        return num_rows * num_cols <= self.dense_threshold * self.dense_threshold

    def dense_distances(self, features: np.ndarray, metric: str) -> np.ndarray:
        """The dense pairwise matrix for the small regime (provider-backed)."""
        return self._dense_distances(features, metric)

    # -- percentile radii ----------------------------------------------------

    def resolve_radius(
        self, features: np.ndarray, percentile: float, metric: str = "euclidean"
    ) -> float:
        """Percentile radius over the pairwise distances of ``features``.

        Dense regime: exact percentile of all positive off-diagonal entries
        (bit-identical to the historical rules).  Sparse regime: seeded
        sample via :func:`sample_percentile_radius`.
        """
        features = np.asarray(features, dtype=float)
        n = features.shape[0]
        if n < 2:
            return 1.0
        if self.use_dense(n):
            with self._lock:
                self._stats.dense_radii += 1
            return dense_percentile_radius(
                self.dense_distances(features, metric), percentile
            )
        with self._lock:
            self._stats.sampled_radii += 1
        return sample_percentile_radius(
            features,
            percentile,
            metric=metric,
            sample_size=self.sample_size,
            seed=self.seed,
        )

    # -- graphs --------------------------------------------------------------

    def graph(
        self,
        features: np.ndarray,
        radius: float,
        metric: str = "euclidean",
        inclusive: bool = True,
    ) -> NeighborGraph:
        """Epsilon self-join graph, dense-thresholded or sparse-blocked."""
        features = np.asarray(features, dtype=float)
        if self.use_dense(features.shape[0]):
            graph = NeighborGraph.from_dense(
                self.dense_distances(features, metric),
                radius,
                metric=metric,
                inclusive=inclusive,
            )
            with self._lock:
                self._stats.dense_graphs += 1
                self._stats.edges_built += graph.num_edges
            return graph
        graph = build_neighbor_graph(
            features, radius, metric=metric, inclusive=inclusive,
            block_size=self.block_size,
        )
        with self._lock:
            self._stats.sparse_graphs += 1
            self._stats.edges_built += graph.num_edges
        return graph

    def cross_graph(
        self,
        left: np.ndarray,
        right: np.ndarray,
        radius: float,
        metric: str = "euclidean",
        inclusive: bool = False,
        return_nearest: bool = False,
    ) -> tuple[NeighborGraph, np.ndarray | None]:
        """Blocked radius join between two point sets (always memory-bounded)."""
        graph, nearest = build_cross_neighbor_graph(
            left, right, radius, metric=metric, inclusive=inclusive,
            block_size=self.block_size, return_nearest=return_nearest,
        )
        with self._lock:
            self._stats.cross_joins += 1
            self._stats.edges_built += graph.num_edges
        return graph, nearest

    # -- accounting ----------------------------------------------------------

    def stats(self) -> PlannerStats:
        """A point-in-time copy of the routing counters."""
        with self._lock:
            return PlannerStats(**self._stats.to_dict())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborPlanner(dense_threshold={self.dense_threshold}, "
            f"block_size={self.block_size}, sample_size={self.sample_size})"
        )


#: Module-level default planner used when no caller supplies one.
_DEFAULT_PLANNER = NeighborPlanner()


def default_planner() -> NeighborPlanner:
    """The process-wide default :class:`NeighborPlanner`."""
    return _DEFAULT_PLANNER
