"""K-Means clustering (Lloyd's algorithm with k-means++ initialisation).

The paper mentions K-Means as an alternative to DBSCAN for grouping questions
before batching.  We ship it so the clustering choice can be ablated; the
batching strategies only require a list of clusters, not a particular
clustering algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a K-Means run."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    def clusters(self) -> list[list[int]]:
        """Group point indices by cluster (empty clusters are dropped)."""
        grouped: dict[int, list[int]] = {}
        for index, label in enumerate(self.labels):
            grouped.setdefault(int(label), []).append(index)
        return [grouped[label] for label in sorted(grouped)]


class KMeans:
    """Lloyd's K-Means with k-means++ seeding and a fixed RNG seed.

    Args:
        num_clusters: target number of clusters (clamped to the number of
            points at fit time).
        max_iterations: iteration cap.
        tolerance: centroid-movement convergence threshold.
        seed: RNG seed for the k-means++ initialisation.
    """

    def __init__(
        self,
        num_clusters: int = 8,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed

    def _init_centroids(self, data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """k-means++ initialisation: spread the initial centroids apart."""
        n = data.shape[0]
        centroids = np.empty((k, data.shape[1]), dtype=float)
        first = int(rng.integers(n))
        centroids[0] = data[first]
        closest_squared = np.sum((data - centroids[0]) ** 2, axis=1)
        for i in range(1, k):
            total = float(np.sum(closest_squared))
            if total <= 0.0:
                centroids[i] = data[int(rng.integers(n))]
            else:
                probabilities = closest_squared / total
                choice = int(rng.choice(n, p=probabilities))
                centroids[i] = data[choice]
            distances = np.sum((data - centroids[i]) ** 2, axis=1)
            np.minimum(closest_squared, distances, out=closest_squared)
        return centroids

    def fit(self, features: np.ndarray) -> KMeansResult:
        """Cluster the row vectors of ``features``."""
        data = np.asarray(features, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {data.shape}")
        n = data.shape[0]
        if n == 0:
            return KMeansResult(
                labels=np.empty(0, dtype=int),
                centroids=np.empty((0, data.shape[1] if data.ndim == 2 else 0)),
                inertia=0.0,
                iterations=0,
            )
        k = min(self.num_clusters, n)
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(data, k, rng)

        # Distances are translation-invariant: centring the data (and the
        # centroids, below) keeps the expanded-norm identity numerically
        # stable for data living far from the origin, where |x|^2 + |c|^2
        # would otherwise swallow the much smaller cross term.
        offset = data.mean(axis=0)
        centered = data - offset
        centered_squared_norms = np.sum(centered * centered, axis=1)
        labels = np.zeros(n, dtype=int)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            squared = self._squared_distances(
                centered, centered_squared_norms, centroids - offset
            )
            labels = np.argmin(squared, axis=1)
            new_centroids = centroids.copy()
            for cluster in range(k):
                members = data[labels == cluster]
                if len(members) > 0:
                    new_centroids[cluster] = members.mean(axis=0)
            movement = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            if movement <= self.tolerance:
                break

        final_squared = self._squared_distances(
            centered, centered_squared_norms, centroids - offset
        )
        inertia = float(np.sum(np.min(final_squared, axis=1)))
        return KMeansResult(
            labels=labels, centroids=centroids, inertia=inertia, iterations=iterations
        )

    @staticmethod
    def _squared_distances(
        data: np.ndarray, data_squared_norms: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        """Squared point-to-centroid distances via the expanded-norm identity.

        ``|x - c|^2 = |x|^2 + |c|^2 - 2 x.c`` keeps the computation at one
        ``(n, k)`` matrix product instead of broadcasting an ``(n, k, d)``
        difference tensor — the assignment step's memory no longer scales
        with the feature dimension.
        """
        centroid_squared_norms = np.sum(centroids * centroids, axis=1)
        squared = (
            data_squared_norms[:, None]
            + centroid_squared_norms[None, :]
            - 2.0 * data @ centroids.T
        )
        np.maximum(squared, 0.0, out=squared)
        return squared
