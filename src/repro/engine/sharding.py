"""Deterministic shard planning for scale-out runs.

A shard is a unit of independent execution: a subset of a run's question
*batches* that one worker can render, dispatch and parse without talking to
any other worker.  Sharding at batch granularity (rather than question
granularity) is what keeps a sharded run byte-identical to the unsharded
path: every batch prompt — the unit the LLM actually sees — is preserved
intact, only *where* it executes changes.

Two assignment strategies are provided, both deterministic across processes
and immune to ``PYTHONHASHSEED``:

* ``"fingerprint"`` — a batch goes to the shard selected by a BLAKE2 hash of
  its content fingerprint (the :func:`~repro.data.fingerprint.pair_fingerprint`
  of every question in the batch).  Content-addressed placement: the same
  batch of pairs lands on the same shard regardless of batch ordering, which
  is the natural choice when checkpoints may outlive the planning order.
* ``"round-robin"`` — batch ``i`` goes to shard ``i % num_shards``.  Position
  -addressed placement with perfectly even shard sizes.

:meth:`ShardPlanner.plan_pairs` applies the same fingerprint partitioning to a
raw pair list (no batches yet) — the service's bulk path uses it to split a
large submission into independently resolvable chunks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.batching.base import QuestionBatch
from repro.data.fingerprint import pair_fingerprint
from repro.data.schema import EntityPair

#: Shard assignment strategies understood by :class:`ShardPlanner`.
SHARD_STRATEGIES = ("fingerprint", "round-robin")


def batch_fingerprint(batch: QuestionBatch) -> str:
    """Canonical content fingerprint of one question batch.

    Hashes the (global index, pair fingerprint) sequence of the batch's
    questions, so it identifies both *which* pairs the batch contains and
    *where* they sit in the run's question order — exactly the facts a
    checkpointed batch result depends on.
    """
    digest = hashlib.blake2b(digest_size=16)
    for index, pair in zip(batch.indices, batch.pairs):
        digest.update(f"{index}:".encode("ascii"))
        digest.update(pair_fingerprint(pair).encode("ascii"))
    return digest.hexdigest()


@dataclass(frozen=True)
class Shard:
    """One unit of independent execution within a sharded run.

    Attributes:
        shard_id: position of the shard in the plan (``0 .. num_shards - 1``).
        batch_ids: ids of the run's batches assigned to this shard, ascending.
        fingerprint: content fingerprint over the shard's batches — the
            checkpoint validity key (a checkpoint written for a shard with a
            different fingerprint is stale and must not be resumed from).
    """

    shard_id: int
    batch_ids: tuple[int, ...]
    fingerprint: str

    def __len__(self) -> int:
        return len(self.batch_ids)

    @property
    def is_empty(self) -> bool:
        """Whether this shard carries no batches (degenerate but legal)."""
        return not self.batch_ids


@dataclass(frozen=True)
class ShardPlan:
    """The full shard assignment of one run.

    Attributes:
        shards: one entry per shard, including empty ones, in shard-id order.
        strategy: the assignment strategy that produced the plan.
    """

    shards: tuple[Shard, ...]
    strategy: str

    @property
    def num_shards(self) -> int:
        """Number of shards in the plan (empty shards included)."""
        return len(self.shards)

    @property
    def num_batches(self) -> int:
        """Total number of batches across all shards."""
        return sum(len(shard) for shard in self.shards)

    def shard_sizes(self) -> tuple[int, ...]:
        """Number of batches per shard, in shard-id order."""
        return tuple(len(shard) for shard in self.shards)


class ShardPlanner:
    """Partition a run's batches (or raw pairs) into deterministic shards.

    Args:
        num_shards: shard count; 1 degenerates to a single-shard plan.
        strategy: one of :data:`SHARD_STRATEGIES`.
    """

    def __init__(self, num_shards: int, strategy: str = "fingerprint") -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        normalised = strategy.strip().lower().replace("_", "-")
        if normalised not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; expected one of {SHARD_STRATEGIES}"
            )
        self.num_shards = num_shards
        self.strategy = normalised

    def plan(self, batches: Sequence[QuestionBatch]) -> ShardPlan:
        """Assign every batch to exactly one shard.

        The assignment is a pure function of the batches and the planner
        configuration — replanning the same run always yields the same plan,
        which is what makes checkpoints addressable across processes.
        """
        assigned: list[list[int]] = [[] for _ in range(self.num_shards)]
        fingerprints: dict[int, str] = {}
        for batch in batches:
            fingerprints[batch.batch_id] = batch_fingerprint(batch)
            if self.strategy == "round-robin":
                shard_index = batch.batch_id % self.num_shards
            else:
                shard_index = _bucket(fingerprints[batch.batch_id], self.num_shards)
            assigned[shard_index].append(batch.batch_id)
        shards = []
        for shard_id, batch_ids in enumerate(assigned):
            ordered = tuple(sorted(batch_ids))
            shards.append(
                Shard(
                    shard_id=shard_id,
                    batch_ids=ordered,
                    fingerprint=_shard_fingerprint(
                        ordered, [fingerprints[batch_id] for batch_id in ordered]
                    ),
                )
            )
        return ShardPlan(shards=tuple(shards), strategy=self.strategy)

    def plan_pairs(self, pairs: Sequence[EntityPair]) -> list[list[int]]:
        """Partition raw pairs (no batches yet) into per-shard index lists.

        Fingerprint strategy buckets each pair by its content fingerprint;
        round-robin buckets by position.  Within a shard, input order is
        preserved, so per-shard results can be merged back by index.
        """
        assigned: list[list[int]] = [[] for _ in range(self.num_shards)]
        for index, pair in enumerate(pairs):
            if self.strategy == "round-robin":
                shard_index = index % self.num_shards
            else:
                shard_index = _bucket(pair_fingerprint(pair), self.num_shards)
            assigned[shard_index].append(index)
        return assigned

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardPlanner(num_shards={self.num_shards}, strategy={self.strategy!r})"


def _bucket(fingerprint: str, num_shards: int) -> int:
    """Stable shard index for a hex content fingerprint."""
    return int(fingerprint[:16], 16) % num_shards


def _shard_fingerprint(batch_ids: Sequence[int], batch_fingerprints: Sequence[str]) -> str:
    """Content fingerprint of a whole shard (its batches, in batch-id order)."""
    digest = hashlib.blake2b(digest_size=16)
    for batch_id, fingerprint in zip(batch_ids, batch_fingerprints):
        digest.update(f"{batch_id}:".encode("ascii"))
        digest.update(fingerprint.encode("ascii"))
    return digest.hexdigest()
