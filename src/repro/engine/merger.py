"""Recombine per-shard batch records into one evaluated :class:`RunResult`.

The merge is deliberately boring: shard execution produced exactly the
per-question labels and token usage the unsharded ``ParseAnswers`` +
``Inference`` stages would have produced (the batches, prompts and the
seeded LLM are shared), so the merger only has to reassemble them in
question order, attach the summed usage to the run's cost tracker, and run
the stock :class:`~repro.pipeline.stages.Evaluate` stage.  Reusing the
evaluate stage — rather than re-implementing result assembly — is what makes
the merged ``RunResult`` byte-identical to the unsharded path by
construction.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.result import RunResult
from repro.data.fingerprint import pair_fingerprint
from repro.data.schema import MatchLabel
from repro.engine.checkpoint import BatchRecord
from repro.llm.base import UsageTracker
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import Evaluate, Inference, ParseAnswers


class ShardMerger:
    """Merges completed batch records back into the planning context.

    Args:
        verify_fingerprints: re-hash every merged pair and compare with the
            checkpointed fingerprint.  The shard-header check already rules
            out stale files wholesale; this per-question check additionally
            catches a corrupted or hand-edited record body.  On by default —
            fingerprinting is cheap next to an LLM call.
    """

    def __init__(self, verify_fingerprints: bool = True) -> None:
        self.verify_fingerprints = verify_fingerprints

    def merge(
        self, context: PipelineContext, records: Mapping[int, BatchRecord]
    ) -> RunResult:
        """Fill ``context`` from ``records`` and return the evaluated result.

        Args:
            context: the planning context (batches / selection / prompts
                present, inference not run).
            records: one :class:`BatchRecord` per batch id of the plan.

        Raises:
            ValueError: when records are missing, cover unexpected batches,
                disagree with the planned batch composition, or (with
                :attr:`verify_fingerprints`) carry a fingerprint that does not
                match the question at the recorded index.
        """
        batches = context.require("batches", "batch-questions")
        expected = {batch.batch_id for batch in batches}
        missing = expected - set(records)
        if missing:
            raise ValueError(
                f"cannot merge an incomplete run: missing batch records {sorted(missing)[:10]}"
            )
        unexpected = set(records) - expected
        if unexpected:
            raise ValueError(
                f"batch records do not belong to this plan: {sorted(unexpected)[:10]}"
            )

        answers: list[MatchLabel | None] = [None] * len(context.questions)
        predictions: list[MatchLabel] = [ParseAnswers.fallback] * len(context.questions)
        num_unanswered = 0
        usage = UsageTracker()
        for batch in batches:
            record = records[batch.batch_id]
            recorded_indices = tuple(question.index for question in record.questions)
            if recorded_indices != batch.indices:
                raise ValueError(
                    f"batch {batch.batch_id} record covers questions "
                    f"{recorded_indices[:10]}, expected {batch.indices[:10]}"
                )
            for question, pair in zip(record.questions, batch.pairs):
                if (
                    self.verify_fingerprints
                    and question.fingerprint != pair_fingerprint(pair)
                ):
                    raise ValueError(
                        f"checkpointed fingerprint of question {question.index} "
                        f"(batch {batch.batch_id}) does not match the question pair"
                    )
                predictions[question.index] = question.label
                if question.answered:
                    answers[question.index] = question.label
                else:
                    num_unanswered += 1
            usage.add_totals(
                num_calls=record.num_calls,
                prompt_tokens=record.prompt_tokens,
                completion_tokens=record.completion_tokens,
            )

        context.answers = tuple(answers)
        context.predictions = tuple(predictions)
        context.num_unanswered = num_unanswered
        # The merged usage replaces the planning client's (empty) tracker:
        # live and resumed batches alike are accounted from their checkpoint
        # records, so cost is identical whether the tokens were spent in this
        # process or a crashed one.
        context.cost.attach_usage(usage)
        for stage_name in (Inference.name, ParseAnswers.name):
            if stage_name not in context.completed_stages:
                context.completed_stages.append(stage_name)
        Evaluate().run(context)
        if Evaluate.name not in context.completed_stages:
            context.completed_stages.append(Evaluate.name)
        assert context.result is not None  # produced by Evaluate
        return context.result
