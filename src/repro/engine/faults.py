"""Deterministic fault injection for exercising crash/resume paths.

Resume correctness must be *tested*, not hoped for, and that requires crashing
the engine at an exactly chosen point.  The wrappers here fail deterministically
at the k-th operation:

* :class:`CrashingLLM` raises :class:`InjectedFault` *instead of making* its
  ``fail_at_call``-th LLM call — the call is never issued, never charged, and
  never recorded, exactly like a process killed on the way to the API.  Calls
  before and after the crash point pass through untouched, so a resume with
  the same wrapper completes normally and the "zero repeated calls" property
  can be asserted over the wrapper's cumulative successful-call count.
* :class:`CrashingStore` raises instead of performing its
  ``fail_at_append``-th checkpoint append — the harsher crash point, because
  by then the LLM call *has* been paid for but not yet persisted.  Resume
  must re-execute (and re-pay) at most that one torn batch.

Both wrappers are thread-safe, so they also exercise concurrent shard
execution; with more than one in-flight shard, *which* logical call hits the
crash point depends on scheduling, but the *count* of successful operations
before the fault is always exact.
"""

from __future__ import annotations

import threading

from repro.engine.checkpoint import BatchRecord, CheckpointStore
from repro.llm.base import LLMClient


class InjectedFault(RuntimeError):
    """The deliberate failure raised by the crash wrappers."""


class CrashingLLM(LLMClient):
    """An LLM client that refuses to make its ``fail_at_call``-th call.

    Args:
        inner: the real client answering the prompts.
        fail_at_call: 1-based ordinal of the completion attempt that raises
            (``0`` disables the fault).  Only that one attempt fails; the
            ordinal keeps counting across the fault, so attempt ``k`` raises
            and attempts ``k+1, k+2, ...`` succeed — a resume can share the
            wrapper with the crashed run.

    Token counting goes through the *inner* client's tokenizer, so successful
    calls are priced identically to unwrapped ones.
    """

    def __init__(self, inner: LLMClient, fail_at_call: int) -> None:
        if fail_at_call < 0:
            raise ValueError(f"fail_at_call must be >= 0, got {fail_at_call}")
        super().__init__(model_name=inner.model_name, tokenizer=inner.tokenizer)
        self.inner = inner
        self.fail_at_call = fail_at_call
        self._lock = threading.Lock()
        self._attempts = 0
        self._faults = 0

    @property
    def attempts(self) -> int:
        """Completion attempts so far (successful or faulted)."""
        return self._attempts

    @property
    def successful_calls(self) -> int:
        """Completions that actually reached the inner client."""
        return self._attempts - self._faults

    def _generate(self, prompt_text: str) -> str:
        with self._lock:
            self._attempts += 1
            if self._attempts == self.fail_at_call:
                self._faults += 1
                raise InjectedFault(
                    f"injected LLM fault at call {self.fail_at_call}"
                )
        return self.inner._generate(prompt_text)


class CrashingStore(CheckpointStore):
    """A checkpoint store that refuses its ``fail_at_append``-th batch append.

    Args:
        directory: as :class:`CheckpointStore`.
        fail_at_append: 1-based ordinal of the append that raises (``0``
            disables the fault).  Like :class:`CrashingLLM`, exactly one
            append fails; the count is global across shards and survives
            :meth:`CheckpointStore.for_run` namespacing (child stores share
            the parent's counter).
    """

    def __init__(self, directory, fail_at_append: int = 0) -> None:
        super().__init__(directory)
        if fail_at_append < 0:
            raise ValueError(f"fail_at_append must be >= 0, got {fail_at_append}")
        self.fail_at_append = fail_at_append
        self._lock = threading.Lock()
        self._appends = 0
        self._faults = 0
        self._parent: CrashingStore | None = None

    def for_run(self, run_key: str) -> "CrashingStore":
        child = CrashingStore(self.directory / run_key, self.fail_at_append)
        child._parent = self
        return child

    @property
    def appends(self) -> int:
        """Append attempts so far (successful or faulted)."""
        root = self._parent if self._parent is not None else self
        return root._appends

    def _before_append(self, record: BatchRecord) -> None:
        root = self._parent if self._parent is not None else self
        with root._lock:
            root._appends += 1
            if root._appends == root.fail_at_append:
                root._faults += 1
                raise InjectedFault(
                    f"injected checkpoint fault at append {root.fail_at_append}"
                )
