"""Per-shard JSONL checkpoints: never re-pay for a completed LLM call.

Every LLM call costs money, so the run engine's core invariant is that a
killed run resumes without repeating a single completed call.  The unit of
persistence is one *batch* (one LLM call): after each batch of a shard is
answered and parsed, its per-question resolutions and token usage are appended
to the shard's JSONL file and flushed.  A crash therefore loses at most the
calls that were in flight — one per shard executing at that moment, exactly
one under serial execution — and nothing that was already paid for.

File layout (one file per shard, ``shard-00003.jsonl``)::

    {"type": "header", "version": 1, "dataset": ..., "config": <fp>,
     "shard": <fp>, "num_batches": N, "model": ...}
    {"type": "batch", "batch_id": 0, "usage": {...}, "questions": [...]}
    {"type": "batch", "batch_id": 7, "usage": {...}, "questions": [...]}

Each question entry carries the fields of the service's cache-spill format
(``fingerprint`` — :func:`~repro.data.fingerprint.pair_fingerprint` —,
``label``, ``answered``) plus the question's global ``index`` in the run
order.  The header pins the run identity: a file whose header does not match
the current dataset/config/shard fingerprints is stale and is rewritten, not
resumed from.  A truncated tail (the classic kill-mid-write artifact) is
tolerated: complete leading records are kept, the torn tail is discarded.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.data.schema import MatchLabel

#: Version tag of the checkpoint file format.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ShardHeader:
    """The identity a shard checkpoint is valid for.

    Attributes:
        dataset: dataset code of the run.
        config_fingerprint: hash of the run's ``BatcherConfig`` snapshot.
        shard_fingerprint: content fingerprint of the shard's batches
            (:class:`~repro.engine.sharding.Shard`).
        num_batches: number of batches the shard is expected to complete.
        model: LLM profile the answers were produced by.
    """

    dataset: str
    config_fingerprint: str
    shard_fingerprint: str
    num_batches: int
    model: str

    def to_dict(self) -> dict[str, object]:
        """The header's JSONL representation."""
        return {
            "type": "header",
            "version": CHECKPOINT_VERSION,
            "dataset": self.dataset,
            "config": self.config_fingerprint,
            "shard": self.shard_fingerprint,
            "num_batches": self.num_batches,
            "model": self.model,
        }

    def matches(self, entry: dict[str, object]) -> bool:
        """Whether a parsed header line identifies the same shard of the same run."""
        return entry == self.to_dict()


@dataclass(frozen=True)
class QuestionRecord:
    """The checkpointed resolution of one question.

    Attributes:
        index: the question's global index in the run's question order.
        fingerprint: canonical content fingerprint of the pair.
        label: predicted label (the parse fallback already applied when the
            LLM failed to answer, mirroring ``Resolution``).
        answered: whether the LLM actually answered the question.
    """

    index: int
    fingerprint: str
    label: MatchLabel
    answered: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "fingerprint": self.fingerprint,
            "label": int(self.label),
            "answered": self.answered,
        }

    @classmethod
    def from_dict(cls, entry: dict[str, object]) -> "QuestionRecord":
        return cls(
            index=int(entry["index"]),
            fingerprint=str(entry["fingerprint"]),
            label=MatchLabel(int(entry["label"])),
            answered=bool(entry["answered"]),
        )


@dataclass(frozen=True)
class BatchRecord:
    """The checkpointed outcome of one batch (= one LLM call).

    Attributes:
        batch_id: the batch's global id in the run's batch order.
        num_calls / prompt_tokens / completion_tokens: token usage of the
            call(s) that produced this batch's answers.
        questions: per-question resolutions, in batch order.
    """

    batch_id: int
    num_calls: int
    prompt_tokens: int
    completion_tokens: int
    questions: tuple[QuestionRecord, ...]

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "batch",
            "batch_id": self.batch_id,
            "usage": {
                "num_calls": self.num_calls,
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.completion_tokens,
            },
            "questions": [question.to_dict() for question in self.questions],
        }

    @classmethod
    def from_dict(cls, entry: dict[str, object]) -> "BatchRecord":
        usage = entry["usage"]
        if not isinstance(usage, dict):
            raise ValueError(f"'usage' must be an object, got {type(usage).__name__}")
        questions = entry["questions"]
        if not isinstance(questions, list):
            raise ValueError(
                f"'questions' must be a list, got {type(questions).__name__}"
            )
        return cls(
            batch_id=int(entry["batch_id"]),
            num_calls=int(usage["num_calls"]),
            prompt_tokens=int(usage["prompt_tokens"]),
            completion_tokens=int(usage["completion_tokens"]),
            questions=tuple(QuestionRecord.from_dict(question) for question in questions),
        )


class ShardWriter:
    """Appends batch records to one shard's checkpoint file.

    Every append is followed by a flush, so a kill between batches loses
    nothing and a kill mid-write tears at most the final line (which resume
    discards).  Writers must be closed; the engine uses them in a
    ``try/finally``.
    """

    def __init__(self, path: Path, handle: IO[str], store: "CheckpointStore") -> None:
        self._path = path
        self._handle = handle
        self._store = store

    def append(self, record: BatchRecord) -> None:
        """Persist one completed batch."""
        self._store._before_append(record)
        self._handle.write(json.dumps(record.to_dict()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CheckpointStore:
    """Filesystem store of per-shard checkpoint files.

    Args:
        directory: directory holding the shard files (created on demand).
            Callers running multiple configurations against one root should
            namespace per run — :meth:`for_run` returns a store rooted at a
            subdirectory keyed by the run identity.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def for_run(self, run_key: str) -> "CheckpointStore":
        """A store namespaced under ``directory/run_key`` (same concrete type).

        Subclasses (e.g. fault-injection wrappers) keep their behaviour: the
        namespaced store is constructed through ``type(self)``.
        """
        return type(self)(self.directory / run_key)

    def shard_path(self, shard_id: int) -> Path:
        """Path of the checkpoint file for ``shard_id``."""
        return self.directory / f"shard-{shard_id:05d}.jsonl"

    def open_shard(
        self, shard_id: int, header: ShardHeader
    ) -> tuple[dict[int, BatchRecord], ShardWriter]:
        """Open a shard for resumable execution.

        Returns ``(completed, writer)``: the batch records already persisted
        for this exact shard of this exact run, and a writer positioned to
        append further batches.  A missing file, a header mismatch (different
        dataset / config / shard content / model) or a corrupt prefix starts
        the shard from scratch; a torn tail keeps the valid prefix.

        The valid prefix is rewritten before appending — atomically, via a
        temp file and ``os.replace`` — so the on-disk file is always
        ``header + complete batch lines``, and a kill during the rewrite
        itself cannot lose batches that were already paid for.
        """
        path = self.shard_path(shard_id)
        completed = self._load_valid_prefix(path, header)
        self.directory.mkdir(parents=True, exist_ok=True)
        scratch = path.with_suffix(".jsonl.tmp")
        with scratch.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header.to_dict()) + "\n")
            for record in completed.values():
                handle.write(json.dumps(record.to_dict()) + "\n")
            handle.flush()
        os.replace(scratch, path)
        return completed, ShardWriter(path, path.open("a", encoding="utf-8"), self)

    def completed_batches(
        self, shard_id: int, header: ShardHeader
    ) -> dict[int, BatchRecord]:
        """Read-only view of the valid persisted batches for one shard."""
        return self._load_valid_prefix(self.shard_path(shard_id), header)

    def _load_valid_prefix(
        self, path: Path, header: ShardHeader
    ) -> dict[int, BatchRecord]:
        if not path.exists():
            return {}
        completed: dict[int, BatchRecord] = {}
        try:
            with path.open("r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return {}
        if not lines:
            return {}
        try:
            first = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if not isinstance(first, dict) or not header.matches(first):
            return {}
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict) or entry.get("type") != "batch":
                    raise ValueError("not a batch record")
                record = BatchRecord.from_dict(entry)
            except (KeyError, TypeError, ValueError, json.JSONDecodeError):
                # Torn tail from a kill mid-write: keep the valid prefix,
                # discard this and anything after it.
                break
            completed[record.batch_id] = record
        return completed

    def _before_append(self, record: BatchRecord) -> None:
        """Hook invoked before each batch append (fault-injection seam)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(directory={str(self.directory)!r})"
