"""Sharded, checkpointable run engine.

Splits a benchmark run into deterministic shards of whole batches, executes
them serially or concurrently with per-batch JSONL checkpoints, and merges
the shard results into a :class:`~repro.core.result.RunResult` byte-identical
to the unsharded ``BatchER.run`` path — so a run can be spread across workers
and killed/resumed at any point without ever re-paying for a checkpointed LLM
call.  :mod:`repro.engine.faults` provides the deterministic crash wrappers
the resume guarantees are tested with.
"""

from repro.engine.checkpoint import (
    BatchRecord,
    CheckpointStore,
    QuestionRecord,
    ShardHeader,
    ShardWriter,
)
from repro.engine.engine import EngineReport, RunEngine, config_fingerprint
from repro.engine.faults import CrashingLLM, CrashingStore, InjectedFault
from repro.engine.merger import ShardMerger
from repro.engine.sharding import (
    SHARD_STRATEGIES,
    Shard,
    ShardPlan,
    ShardPlanner,
    batch_fingerprint,
)

__all__ = [
    "BatchRecord",
    "CheckpointStore",
    "CrashingLLM",
    "CrashingStore",
    "EngineReport",
    "InjectedFault",
    "QuestionRecord",
    "RunEngine",
    "SHARD_STRATEGIES",
    "Shard",
    "ShardHeader",
    "ShardMerger",
    "ShardPlan",
    "ShardPlanner",
    "ShardWriter",
    "batch_fingerprint",
    "config_fingerprint",
]
