"""The sharded, checkpointable run engine.

``BatchER.run`` executes a whole benchmark run as one monolithic in-memory
pass: a crash loses everything and a single worker carries every LLM call.
:class:`RunEngine` splits the same run into independently executable,
individually checkpointed *shards* without changing a single byte of the
result:

1. **Plan** — run the deterministic pipeline prefix (``Featurize`` →
   ``BatchQuestions`` → ``SelectDemonstrations`` → ``RenderPrompts``) once on
   the full question set.  No LLM is called; batching, demonstration
   selection (and hence labeling cost) and every rendered prompt are fixed
   here, identical to the unsharded run.
2. **Shard** — assign whole batches to shards with a deterministic
   :class:`~repro.engine.sharding.ShardPlanner`.  Batches are the LLM-call
   unit, so moving them between workers cannot change any response.
3. **Execute** — run each shard's batches through per-shard
   :meth:`~repro.pipeline.context.PipelineContext.shard_view` contexts
   (sharing the plan's feature store), serially or on a bounded
   :class:`~repro.llm.executors.ConcurrentExecutor`.  After every batch (=
   one LLM call) the parsed resolutions and token usage are appended to the
   shard's JSONL checkpoint, so a killed run resumes with zero repeated
   calls.
4. **Merge** — :class:`~repro.engine.merger.ShardMerger` reassembles the
   records and runs the stock ``Evaluate`` stage, producing a
   :class:`RunResult` byte-identical to the unsharded path for a fixed seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.config import BatcherConfig
from repro.core.result import RunResult
from repro.data.fingerprint import pair_fingerprint
from repro.data.schema import Dataset
from repro.engine.checkpoint import BatchRecord, CheckpointStore, QuestionRecord, ShardHeader
from repro.engine.merger import ShardMerger
from repro.engine.sharding import Shard, ShardPlanner
from repro.llm.base import LLMClient
from repro.llm.executors import ExecutionBackend, SerialExecutor
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NOOP_TRACER, Tracer
from repro.pipeline.context import PipelineContext
from repro.pipeline.pipeline import Pipeline, StageHook
from repro.pipeline.stages import Inference, ParseAnswers, RenderPrompts
from repro.resilience.breaker import CircuitOpenError


def config_fingerprint(config: BatcherConfig) -> str:
    """Stable content fingerprint of a design-space point.

    Hashes the sorted JSON form of :meth:`BatcherConfig.to_dict`, so any field
    change (model, seed, batching, ...) invalidates checkpoints written under
    the old configuration.
    """
    payload = json.dumps(config.to_dict(), sort_keys=True).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class EngineReport:
    """Counters describing how the last engine run was executed.

    Attributes:
        num_shards: shards in the plan (empty shards included).
        strategy: shard assignment strategy used.
        num_batches: total batches (= total LLM calls a fresh run makes).
        batches_executed: batches answered live in this run.
        batches_resumed: batches replayed from checkpoints (zero LLM calls).
        llm_calls: LLM calls recorded on the merged result (live + resumed).
        llm_calls_saved: calls the resume avoided re-paying.
        shard_sizes: batches per shard, in shard-id order.
        checkpointed: whether a checkpoint store persisted this run.
        paused: the run stopped on an open circuit breaker
            (:class:`~repro.resilience.CircuitOpenError`) after persisting
            every completed batch — call :meth:`RunEngine.execute` again once
            the backend recovers; the resume repeats zero LLM calls.
    """

    num_shards: int
    strategy: str
    num_batches: int
    batches_executed: int
    batches_resumed: int
    llm_calls: int
    llm_calls_saved: int
    shard_sizes: tuple[int, ...]
    checkpointed: bool
    paused: bool = False

    def to_dict(self) -> dict[str, object]:
        """Return a plain-dict snapshot (JSON-serializable, for benchmarks)."""
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "num_batches": self.num_batches,
            "batches_executed": self.batches_executed,
            "batches_resumed": self.batches_resumed,
            "llm_calls": self.llm_calls,
            "llm_calls_saved": self.llm_calls_saved,
            "shard_sizes": list(self.shard_sizes),
            "checkpointed": self.checkpointed,
            "paused": self.paused,
        }


class RunEngine:
    """Sharded, checkpointable executor for benchmark runs.

    Args:
        config: the design-space point to run.
        llm: optional pre-built LLM client shared by every shard (the client
            contract — generation a pure function of the prompt text, usage
            tracking thread-safe — is what keeps shard placement invisible in
            the results).  By default one is created from the config.
        executor: optional backend dispatching whole *shards* concurrently;
            its worker bound is the number of in-flight shards.  ``None``
            executes shards serially.
        num_shards: how many shards to split the run into.
        shard_strategy: batch→shard assignment
            (:data:`~repro.engine.sharding.SHARD_STRATEGIES`).
        checkpoint_dir: root directory for crash-safe per-shard checkpoints;
            runs are namespaced under it by dataset + config fingerprint, so
            one directory serves many configurations.  ``None`` disables
            checkpointing (the run still shards, but cannot resume).
        checkpoint_store: pre-built store (overrides ``checkpoint_dir``);
            fault-injection tests pass a crashing store here.
        hooks: pipeline telemetry hooks applied to the planning stages.
        tracer: optional span producer; ``execute`` opens an
            ``engine:execute`` root with one ``engine:shard`` child per
            non-empty shard (crossing the shard executor's thread boundary).
        metrics: optional registry recording shard progress
            (``repro_shard_batches_total{mode=executed|resumed}`` and
            ``repro_shards_completed_total``).
    """

    def __init__(
        self,
        config: BatcherConfig | None = None,
        llm: LLMClient | None = None,
        executor: ExecutionBackend | None = None,
        num_shards: int = 1,
        shard_strategy: str = "fingerprint",
        checkpoint_dir: str | Path | None = None,
        checkpoint_store: CheckpointStore | None = None,
        hooks: Iterable[StageHook] = (),
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or BatcherConfig()
        self._llm = llm
        self._executor = executor
        self.planner = ShardPlanner(num_shards, strategy=shard_strategy)
        if checkpoint_store is None and checkpoint_dir is not None:
            checkpoint_store = CheckpointStore(checkpoint_dir)
        self._store = checkpoint_store
        self._hooks = tuple(hooks)
        self._tracer = tracer or NOOP_TRACER
        self._metric_batches = self._metric_shards = None
        if metrics is not None:
            self._metric_batches = metrics.counter(
                "repro_shard_batches_total",
                "Batches completed by the run engine, by execution mode.",
                labels=("mode",),
            )
            self._metric_shards = metrics.counter(
                "repro_shards_completed_total", "Shards fully executed or replayed."
            )
        self.last_report: EngineReport | None = None

    @property
    def num_shards(self) -> int:
        """Number of shards the engine splits runs into."""
        return self.planner.num_shards

    @property
    def checkpoint_store(self) -> CheckpointStore | None:
        """The root checkpoint store (``None`` when checkpointing is off)."""
        return self._store

    # -- phases ---------------------------------------------------------------

    def plan(self, dataset: Dataset) -> PipelineContext:
        """Run the deterministic planning prefix (no LLM calls) on ``dataset``."""
        context = PipelineContext.from_dataset(dataset, self.config, llm=self._llm)
        context.tracer = self._tracer
        with self._tracer.span("engine:plan"):
            Pipeline.default(hooks=self._hooks).run_until(context, RenderPrompts.name)
        return context

    def run(self, dataset: Dataset) -> RunResult:
        """Execute (or resume) a full sharded run and return the evaluated result."""
        return self.execute(self.plan(dataset))

    def execute(self, context: PipelineContext) -> RunResult:
        """Execute the sharded inference phase over a planned context.

        Shards that already have valid checkpoints are replayed without
        touching the LLM; everything else is answered live and checkpointed
        batch by batch.  When any shard fails, the completed work of *every*
        shard is persisted first, then the first failure (lowest shard id)
        is re-raised — a subsequent call resumes from exactly where the
        failure struck.

        An open circuit breaker is the planned instance of that contract: a
        :class:`~repro.resilience.CircuitOpenError` surfacing from a shard is
        a *checkpoint-then-pause*, not a loss.  Every batch completed before
        the breaker tripped is already on disk, ``last_report`` is populated
        with the partial progress (``paused=True``), and calling ``execute``
        again after the backend recovers resumes with zero repeated LLM
        calls.

        Raises:
            ValueError: when the context has not been planned (no prompts).
            Exception: the first shard failure, re-raised after all in-flight
                shards settle.
        """
        batches = context.require("batches", "batch-questions")
        prompts = context.require("prompts", RenderPrompts.name)
        plan = self.planner.plan(batches)
        store = (
            self._store.for_run(self._run_key(context))
            if self._store is not None
            else None
        )
        backend = self._executor or SerialExecutor()
        with self._tracer.span("engine:execute") as scope:
            if self._tracer.enabled:
                scope.set_attribute("shards", plan.num_shards)
                scope.set_attribute("batches", plan.num_batches)
            outcomes = backend.map_settled(
                lambda shard: self._execute_shard(shard, context, store), plan.shards
            )
        errors = [error for _, error in outcomes if error is not None]
        if errors:
            # All shards have settled and every completed batch is already
            # checkpointed; record the partial progress before re-raising so
            # a breaker pause is observable (counters from shards that
            # failed mid-way reappear as resumed batches on the next run).
            settled = [outcome for outcome, error in outcomes if error is None]
            executed = sum(shard_executed for _, shard_executed, _ in settled)
            resumed = sum(shard_resumed for _, _, shard_resumed in settled)
            calls = sum(
                record.num_calls
                for shard_records, _, _ in settled
                for record in shard_records.values()
            )
            self.last_report = EngineReport(
                num_shards=plan.num_shards,
                strategy=plan.strategy,
                num_batches=plan.num_batches,
                batches_executed=executed,
                batches_resumed=resumed,
                llm_calls=calls,
                llm_calls_saved=calls - executed,
                shard_sizes=plan.shard_sizes(),
                checkpointed=store is not None,
                paused=any(isinstance(error, CircuitOpenError) for error in errors),
            )
            raise errors[0]

        records: dict[int, BatchRecord] = {}
        executed = resumed = 0
        for shard_records, shard_executed, shard_resumed in (
            outcome for outcome, _ in outcomes
        ):
            records.update(shard_records)
            executed += shard_executed
            resumed += shard_resumed
        calls = sum(record.num_calls for record in records.values())
        self.last_report = EngineReport(
            num_shards=plan.num_shards,
            strategy=plan.strategy,
            num_batches=plan.num_batches,
            batches_executed=executed,
            batches_resumed=resumed,
            llm_calls=calls,
            llm_calls_saved=calls - executed,
            shard_sizes=plan.shard_sizes(),
            checkpointed=store is not None,
        )
        return ShardMerger().merge(context, records)

    # -- internals ------------------------------------------------------------

    def _run_key(self, context: PipelineContext) -> str:
        """Checkpoint namespace of one (dataset, configuration) run."""
        return f"{context.dataset_name}-{config_fingerprint(context.config)[:12]}"

    def _execute_shard(
        self,
        shard: Shard,
        context: PipelineContext,
        store: CheckpointStore | None,
    ) -> tuple[dict[int, BatchRecord], int, int]:
        """Execute one shard, returning ``(records, executed, resumed)``.

        Batches with a valid checkpoint are replayed; pending batches run
        one at a time through a single-batch
        :meth:`~repro.pipeline.context.PipelineContext.shard_view` (sharing
        the plan's feature store) and are checkpointed immediately after
        their LLM call is parsed — the granularity that bounds crash loss to
        one in-flight call.
        """
        if shard.is_empty:
            return {}, 0, 0
        with context.tracer.span("engine:shard") as scope:
            if context.tracer.enabled:
                scope.set_attribute("shard_id", shard.shard_id)
                scope.set_attribute("batches", len(shard))
            result = self._run_shard_batches(shard, context, store)
            if context.tracer.enabled:
                scope.set_attribute("resumed", result[2])
        if self._metric_batches is not None:
            self._metric_batches.inc(result[1], mode="executed")
            self._metric_batches.inc(result[2], mode="resumed")
            self._metric_shards.inc()
        return result

    def _run_shard_batches(
        self,
        shard: Shard,
        context: PipelineContext,
        store: CheckpointStore | None,
    ) -> tuple[dict[int, BatchRecord], int, int]:
        batches = context.batches or []
        prompts = context.prompts or []
        header = ShardHeader(
            dataset=context.dataset_name,
            config_fingerprint=config_fingerprint(context.config),
            shard_fingerprint=shard.fingerprint,
            num_batches=len(shard),
            model=context.config.model,
        )
        if store is not None:
            completed, writer = store.open_shard(shard.shard_id, header)
        else:
            completed, writer = {}, None
        resumed = len(completed)
        executed = 0
        try:
            for batch_id in shard.batch_ids:
                if batch_id in completed:
                    continue
                batch = batches[batch_id]
                view = context.shard_view([batch], [prompts[batch_id]])
                Inference().run(view)
                ParseAnswers().run(view)
                response = (view.responses or [None])[0]
                assert response is not None and view.predictions is not None
                questions = tuple(
                    QuestionRecord(
                        index=global_index,
                        fingerprint=pair_fingerprint(batch.pairs[position]),
                        label=view.predictions[position],
                        answered=(view.answers or ())[position] is not None,
                    )
                    for position, global_index in enumerate(batch.indices)
                )
                record = BatchRecord(
                    batch_id=batch_id,
                    num_calls=1,
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                    questions=questions,
                )
                if writer is not None:
                    writer.append(record)
                completed[batch_id] = record
                executed += 1
        finally:
            if writer is not None:
                writer.close()
        return completed, executed, resumed
