"""The staged pipeline runner.

A :class:`Pipeline` is an ordered list of stages plus optional telemetry
hooks.  Running it threads one :class:`~repro.pipeline.context.PipelineContext`
through every stage, recording per-stage wall-clock timings on the context and
notifying the hooks around each stage — the seam where metrics, tracing or
progress reporting attach without touching stage code.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.llm.executors import ExecutionBackend
from repro.pipeline.context import PipelineContext, StageTiming
from repro.pipeline.stages import (
    BatchQuestions,
    Evaluate,
    Featurize,
    Inference,
    ParseAnswers,
    PipelineStage,
    RenderPrompts,
    SelectDemonstrations,
)


class StageHook:
    """Observer notified around every stage execution.

    Subclass and override any subset of the callbacks; the defaults are
    no-ops, so hooks only pay for what they observe.
    """

    def on_stage_start(self, stage: PipelineStage, context: PipelineContext) -> None:
        """Called immediately before ``stage`` runs."""

    def on_stage_end(
        self, stage: PipelineStage, context: PipelineContext, seconds: float
    ) -> None:
        """Called after ``stage`` completed, with its wall-clock duration."""

    def on_stage_error(
        self, stage: PipelineStage, context: PipelineContext, error: Exception
    ) -> None:
        """Called when ``stage`` raised; the exception is re-raised after."""


class Pipeline:
    """An ordered, observable composition of pipeline stages.

    Args:
        stages: the stages to run, in order.
        hooks: telemetry observers notified around every stage.
    """

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        hooks: Iterable[StageHook] = (),
    ) -> None:
        if not stages:
            raise ValueError("a pipeline requires at least one stage")
        self.stages = tuple(stages)
        self.hooks = tuple(hooks)

    @classmethod
    def default(
        cls,
        executor: ExecutionBackend | None = None,
        evaluate: bool = True,
        hooks: Iterable[StageHook] = (),
    ) -> "Pipeline":
        """The full BatchER pipeline (paper Figure 2).

        Args:
            executor: execution backend for the inference stage (``None`` =
                serial dispatch).
            evaluate: include the final ``Evaluate`` stage; serving workloads
                over unlabeled pairs set this to ``False``.
            hooks: telemetry observers.
        """
        stages: list[PipelineStage] = [
            Featurize(),
            BatchQuestions(),
            SelectDemonstrations(),
            RenderPrompts(),
            Inference(executor=executor),
            ParseAnswers(),
        ]
        if evaluate:
            stages.append(Evaluate())
        return cls(stages, hooks=hooks)

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The names of the composed stages, in execution order."""
        return tuple(stage.name for stage in self.stages)

    def run(self, context: PipelineContext) -> PipelineContext:
        """Run every stage over ``context`` and return it.

        Stages already completed on this context (``context.completed_stages``)
        are skipped, so running after :meth:`run_until` resumes from where the
        partial run stopped instead of re-executing — and re-charging — the
        prefix.
        """
        for stage in self.stages:
            if stage.name not in context.completed_stages:
                self.run_stage(stage, context)
        return context

    def run_until(self, context: PipelineContext, stage_name: str) -> PipelineContext:
        """Run stages up to and including ``stage_name`` (for inspection).

        Like :meth:`run`, already-completed stages are skipped.

        Raises:
            ValueError: if no composed stage has that name.
        """
        if stage_name not in self.stage_names:
            raise ValueError(
                f"unknown stage {stage_name!r}; expected one of {self.stage_names}"
            )
        for stage in self.stages:
            if stage.name not in context.completed_stages:
                self.run_stage(stage, context)
            if stage.name == stage_name:
                break
        return context

    def run_stage(self, stage: PipelineStage, context: PipelineContext) -> PipelineContext:
        """Run a single stage (unconditionally) with timing telemetry and hooks."""
        for hook in self.hooks:
            hook.on_stage_start(stage, context)
        started = time.perf_counter()
        try:
            with context.tracer.span(f"stage:{stage.name}") as scope:
                if context.tracer.enabled:
                    scope.set_attribute("questions", context.num_questions)
                stage.run(context)
        except Exception as error:
            for hook in self.hooks:
                hook.on_stage_error(stage, context, error)
            raise
        elapsed = time.perf_counter() - started
        context.timings.append(StageTiming(stage=stage.name, seconds=elapsed))
        if stage.name not in context.completed_stages:
            context.completed_stages.append(stage.name)
        for hook in self.hooks:
            hook.on_stage_end(stage, context, elapsed)
        return context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline(stages={list(self.stage_names)})"
