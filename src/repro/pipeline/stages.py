"""The individually-runnable stages of the BatchER pipeline.

Each stage is a small callable object with a stable ``name``; running a stage
reads its prerequisites off the :class:`~repro.pipeline.context.PipelineContext`
and writes its outputs back.  The default stage order (paper Figure 2) is::

    Featurize -> BatchQuestions -> SelectDemonstrations -> RenderPrompts
              -> Inference -> ParseAnswers -> Evaluate

but any prefix can be run on its own (e.g. stop after ``BatchQuestions`` to
inspect the batching, or swap ``Evaluate`` out for serving workloads where the
incoming pairs carry no gold labels).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.batching.base import validate_batching
from repro.batching.factory import create_batcher
from repro.core.result import RunResult
from repro.data.schema import MatchLabel
from repro.evaluation.metrics import evaluate_predictions
from repro.features.engine import create_feature_store
from repro.llm.executors import ExecutionBackend
from repro.pipeline.context import PipelineContext
from repro.prompting.batch import BatchPromptBuilder
from repro.prompting.parser import parse_batch_answers
from repro.selection.factory import create_selector


class PipelineStage(ABC):
    """Base class of all pipeline stages."""

    #: Stage name used in telemetry and error messages.
    name: str = "stage"

    @abstractmethod
    def run(self, context: PipelineContext) -> None:
        """Execute the stage, mutating ``context`` in place."""

    def __call__(self, context: PipelineContext) -> PipelineContext:
        """Run the stage and return the context (for fluent chaining)."""
        self.run(context)
        return context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Featurize(PipelineStage):
    """Extract feature matrices for the questions and the demonstration pool.

    Featurization goes through the context's columnar
    :class:`~repro.features.engine.FeatureStore` (an ephemeral one is built
    when a long-lived session did not pre-set a shared store), so repeated
    pair contents reuse memoized vectors and misses are computed in vectorized
    batches.  Matrices already present on the context are kept — a session
    that caches pool features across calls (e.g. a ``Resolver``) pre-sets
    ``pool_features`` and only the questions are featurized.
    """

    name = "featurize"

    def run(self, context: PipelineContext) -> None:
        if context.feature_store is None:
            store = create_feature_store(
                context.config.feature_extractor, context.attributes
            )
            # Ephemeral stores inherit the run's tracer so planner routing
            # (dense / sparse / LSH graph builds) appears in the trace.
            store.planner.tracer = context.tracer
            context.feature_store = store
        store = context.feature_store
        if context.question_features is None:
            context.question_features = store.extract_matrix(context.questions)
        if context.pool_features is None:
            context.pool_features = store.extract_matrix(context.pool)


class BatchQuestions(PipelineStage):
    """Group the questions into batches with the configured strategy.

    The feature store's :class:`~repro.clustering.neighbors.NeighborPlanner`
    routes the clustering geometry: question sets up to the planner's dense
    threshold consume the engine's cached pairwise distance matrix (shared
    with the covering selector), larger ones cluster over a sparse
    epsilon-neighbor graph built in fixed-size blocks, and sets above the
    planner's ``approx_threshold`` cluster over the approximate MinHash-LSH
    epsilon-graph — the dense ``(n, n)`` matrix is never materialised above
    the dense threshold.
    """

    name = "batch-questions"

    def run(self, context: PipelineContext) -> None:
        config = context.config
        features = context.require("question_features", Featurize.name)
        batcher = create_batcher(
            config.batching, batch_size=config.batch_size, seed=config.seed
        )
        # The planner routes dense vs sparse itself; its dense regime reads
        # the engine's cached matrix (the store wires dense_distances to its
        # per-run distance cache), so no matrix is prefetched here.
        planner = (
            context.feature_store.planner if context.feature_store is not None else None
        )
        batches = batcher.create_batches(context.questions, features, planner=planner)
        validate_batching(batches, len(context.questions), config.batch_size)
        context.batches = batches


class SelectDemonstrations(PipelineStage):
    """Select (and pay the labeling cost for) per-batch demonstrations.

    The covering strategy consumes the store's cached dense distance matrix
    only for question sets within the planner's dense threshold; above it the
    selector plans over blocked sparse radius joins (see
    :mod:`repro.clustering.neighbors`), never materialising the dense
    question-pairwise or question-to-pool matrices.
    """

    name = "select-demonstrations"

    def run(self, context: PipelineContext) -> None:
        config = context.config
        batches = context.require("batches", BatchQuestions.name)
        question_features = context.require("question_features", Featurize.name)
        pool_features = context.require("pool_features", Featurize.name)
        selector = create_selector(
            config.selection,
            num_demonstrations=config.num_demonstrations,
            metric=config.metric,
            seed=config.seed,
            threshold_percentile=config.threshold_percentile,
        )
        # As in BatchQuestions, the planner is the single routing point: its
        # dense regime resolves the covering threshold from the engine-cached
        # matrix, its sparse regime samples radii and radius-joins blockwise.
        planner = (
            context.feature_store.planner if context.feature_store is not None else None
        )
        selection = selector.select(
            batches,
            question_features,
            context.pool,
            pool_features,
            planner=planner,
        )
        context.selection = selection
        newly_labeled = (
            selection.labeled_pool_indices - context.prelabeled_pool_indices
        )
        context.cost.record_labeled_pairs(len(newly_labeled))


class RenderPrompts(PipelineStage):
    """Render one batch prompt per question batch."""

    name = "render-prompts"

    def run(self, context: PipelineContext) -> None:
        batches = context.require("batches", BatchQuestions.name)
        selection = context.require("selection", SelectDemonstrations.name)
        builder = BatchPromptBuilder(attributes=context.attributes)
        context.prompts = [
            builder.build(batch.pairs, batch_demos.demonstrations)
            for batch, batch_demos in zip(batches, selection.per_batch)
        ]


class Inference(PipelineStage):
    """Dispatch the batch prompts to the LLM.

    Args:
        executor: optional execution backend; prompts are independent, so a
            :class:`~repro.llm.executors.ConcurrentExecutor` dispatches them in
            parallel.  Responses are always aligned with the prompt order, so
            the backend choice never changes the run's results.
    """

    name = "inference"

    def __init__(self, executor: ExecutionBackend | None = None) -> None:
        self.executor = executor

    def run(self, context: PipelineContext) -> None:
        prompts = context.require("prompts", RenderPrompts.name)
        context.responses = context.llm.complete_many(
            [prompt.text for prompt in prompts], executor=self.executor
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Inference(executor={self.executor!r})"


class ParseAnswers(PipelineStage):
    """Parse the LLM responses back into per-question predictions."""

    name = "parse-answers"

    #: Label assigned to questions the LLM failed to answer.
    fallback: MatchLabel = MatchLabel.NON_MATCH

    def run(self, context: PipelineContext) -> None:
        batches = context.require("batches", BatchQuestions.name)
        responses = context.require("responses", Inference.name)
        answers: list[MatchLabel | None] = [None] * len(context.questions)
        num_unanswered = 0
        for batch, response in zip(batches, responses):
            parsed = parse_batch_answers(response.text, num_questions=len(batch))
            num_unanswered += parsed.num_unanswered
            for question_index, label in zip(batch.indices, parsed.labels):
                answers[question_index] = label
        context.answers = tuple(answers)
        context.predictions = tuple(
            label if label is not None else self.fallback for label in answers
        )
        context.num_unanswered = num_unanswered


class Evaluate(PipelineStage):
    """Score the predictions against gold labels and assemble a RunResult."""

    name = "evaluate"

    def run(self, context: PipelineContext) -> None:
        predictions = context.require("predictions", ParseAnswers.name)
        batches = context.require("batches", BatchQuestions.name)
        gold = [question.label for question in context.questions]
        unlabeled = [
            question.pair_id
            for question, label in zip(context.questions, gold)
            if label is None
        ]
        if unlabeled:
            raise ValueError(
                "cannot evaluate unlabeled questions (no gold labels for "
                f"{unlabeled[:5]}); use a Resolver for unlabeled pair streams"
            )
        metrics = evaluate_predictions(gold, predictions)
        context.result = RunResult(
            dataset=context.dataset_name,
            method=context.method_label,
            metrics=metrics,
            cost=context.cost.breakdown(),
            num_questions=len(context.questions),
            num_batches=len(batches),
            num_unanswered=context.num_unanswered,
            predictions=predictions,
            config=context.config.to_dict(),
        )


#: The default stage classes, in execution order.
DEFAULT_STAGES = (
    Featurize,
    BatchQuestions,
    SelectDemonstrations,
    RenderPrompts,
    Inference,
    ParseAnswers,
    Evaluate,
)
