"""Streaming Resolver session: serve ad-hoc entity-pair streams.

``BatchER.run`` is the benchmarking entry point — it needs a full
:class:`~repro.data.schema.Dataset` with gold test labels.  A :class:`Resolver`
is the serving-style counterpart: a long-lived session holding a persistent
labeled demonstration pool and an LLM client, resolving arbitrary
:class:`~repro.data.schema.EntityPair` streams on demand.

Across calls the session accumulates token usage and pays the labeling cost of
each pool demonstration at most once — the covering selector's reuse of
already-labeled demonstrations is exactly what makes a long-lived session
cheaper than independent runs.

>>> resolver = Resolver.from_dataset(load_dataset("beer"))   # doctest: +SKIP
>>> for resolution in resolver.resolve_iter(incoming_pairs): # doctest: +SKIP
...     route(resolution.pair_id, resolution.label)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.config import BatcherConfig
from repro.cost.tracker import CostBreakdown, CostTracker
from repro.data.schema import Dataset, EntityPair, MatchLabel
from repro.features.engine import FeatureStore, create_feature_store
from repro.llm.base import LLMClient, UsageTracker
from repro.llm.executors import ExecutionBackend
from repro.llm.registry import create_llm
from repro.observability.tracing import NOOP_TRACER, Tracer
from repro.pipeline.context import PipelineContext
from repro.pipeline.pipeline import Pipeline, StageHook


@dataclass(frozen=True)
class Resolution:
    """The resolved outcome for one entity pair.

    Attributes:
        pair: the input pair (as supplied, labels untouched).
        label: the predicted matching label.
        answered: whether the LLM actually answered this question (``False``
            means the label is the fallback, not a model judgement).
    """

    pair: EntityPair
    label: MatchLabel
    answered: bool

    @property
    def pair_id(self) -> str:
        """Identifier of the resolved pair."""
        return self.pair.pair_id

    @property
    def is_match(self) -> bool:
        """Whether the pair was predicted to be a match."""
        return self.label is MatchLabel.MATCH

    def to_dict(self) -> dict[str, object]:
        """Return a plain-dict snapshot (JSON-serializable, for the HTTP layer)."""
        return {
            "pair_id": self.pair_id,
            "label": int(self.label),
            "label_name": self.label.name,
            "is_match": self.is_match,
            "answered": self.answered,
        }


class Resolver:
    """A long-lived entity-resolution session over a persistent pool.

    Args:
        config: design-space point used for featurization, batching, selection
            and prompting (``max_questions`` is ignored — streams decide their
            own size).
        demonstrations: initial labeled demonstration pool.
        attributes: shared attribute schema; inferred from the first
            demonstration (or first resolved pair) when omitted.
        llm: optional pre-built LLM client; by default one is created from the
            config.  Usage accumulates across the whole session.
        executor: optional execution backend for concurrent prompt dispatch.
        hooks: pipeline telemetry hooks applied to every resolve call.
        tracer: optional span producer; every :meth:`resolve` call opens a
            ``resolver:resolve`` root span with per-stage children.
    """

    def __init__(
        self,
        config: BatcherConfig | None = None,
        demonstrations: Sequence[EntityPair] = (),
        attributes: tuple[str, ...] | None = None,
        llm: LLMClient | None = None,
        executor: ExecutionBackend | None = None,
        hooks: Iterable[StageHook] = (),
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or BatcherConfig()
        self.attributes = attributes
        self.tracer = tracer or NOOP_TRACER
        self._llm = llm or create_llm(
            self.config.model,
            seed=self.config.seed,
            temperature=self.config.temperature,
            engine=self.config.engine,
        )
        self._pipeline = Pipeline.default(executor=executor, evaluate=False, hooks=hooks)
        self._pool: list[EntityPair] = []
        self._pool_features_cache: np.ndarray | None = None
        self._feature_store: FeatureStore | None = None
        self._feature_store_lock = threading.Lock()
        self._labeled_indices: set[int] = set()
        self._cost = CostTracker(self.config.model)
        self._cost.attach_usage(self._llm.usage)
        self._num_resolved = 0
        if demonstrations:
            self.add_demonstrations(demonstrations)

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, config: BatcherConfig | None = None, **kwargs
    ) -> "Resolver":
        """Open a session whose pool is ``dataset``'s train split."""
        return cls(
            config=config,
            demonstrations=list(dataset.splits.train),
            attributes=dataset.attributes,
            **kwargs,
        )

    # -- pool management -----------------------------------------------------

    def add_demonstrations(self, pairs: Iterable[EntityPair]) -> None:
        """Grow the persistent demonstration pool with labeled pairs.

        Raises:
            ValueError: if any pair carries no gold label.
        """
        pairs = list(pairs)
        unlabeled = [pair.pair_id for pair in pairs if not pair.is_labeled]
        if unlabeled:
            raise ValueError(
                f"demonstrations must be labeled; missing labels for {unlabeled[:5]}"
            )
        if self.attributes is None and pairs:
            self.attributes = tuple(pairs[0].left.values.keys())
        self._pool.extend(pairs)
        self._pool_features_cache = None

    @property
    def pool_size(self) -> int:
        """Current size of the demonstration pool."""
        return len(self._pool)

    def warm(self) -> int:
        """Eagerly featurize the demonstration pool and return its size.

        Featurization of a large pool is the dominant fixed cost of the first
        resolve call; a serving deployment calls :meth:`warm` at startup so the
        first live request does not pay it.  Idempotent: re-warming an
        already-featurized pool is free.

        Raises:
            ValueError: if the session has no demonstrations yet.
        """
        if not self._pool:
            raise ValueError(
                "cannot warm a resolver session without demonstrations; call "
                "add_demonstrations() (or build it with Resolver.from_dataset)"
            )
        self._pool_features()
        return self.pool_size

    @property
    def planner(self):
        """The session's batch-planning policy, or ``None`` before the store
        exists.

        A :class:`~repro.clustering.neighbors.NeighborPlanner` owned by the
        session's feature store: resolve calls over small chunks plan against
        the cached dense matrix, while large chunks (or a large persistent
        pool on the covering path) plan over sparse epsilon-neighbor graphs
        with bounded memory.  Exposed so serving deployments can inspect the
        routing counters next to :meth:`cost` and :attr:`usage`.
        """
        store = self.feature_store
        return store.planner if store is not None else None

    @property
    def feature_store(self) -> FeatureStore | None:
        """The session's columnar feature engine (``None`` until the attribute
        schema is known, i.e. before the first demonstrations arrive).

        Creation is locked: the property is read concurrently (e.g. a stats
        thread alongside the service's flush thread), and a check-then-set
        race must never replace a populated store with an empty one.
        """
        if self._feature_store is None and self.attributes is not None:
            with self._feature_store_lock:
                if self._feature_store is None:
                    store = create_feature_store(
                        self.config.feature_extractor, self.attributes
                    )
                    # Bind the session tracer so graph builds and radius
                    # resolutions show up as planner:* spans in traces.
                    store.planner.tracer = self.tracer
                    self._feature_store = store
        return self._feature_store

    def _pool_features(self) -> np.ndarray:
        """Pool feature matrix, computed once per pool version.

        A long-lived session resolves many small chunks against the same
        (large) pool; the matrix is cached per pool version, and the vectors
        behind it live in the session's content-addressed feature store — so
        growing the pool re-featurizes only the new demonstrations.
        """
        if self._pool_features_cache is None:
            store = self.feature_store
            assert store is not None  # self._pool is non-empty here
            self._pool_features_cache = store.extract_matrix(self._pool)
        return self._pool_features_cache

    # -- session accounting --------------------------------------------------

    @property
    def llm(self) -> LLMClient:
        """The session's LLM client (an engine when built via the registry)."""
        return self._llm

    @property
    def usage(self) -> UsageTracker:
        """Cumulative LLM token usage of this session."""
        return self._llm.usage

    @property
    def num_resolved(self) -> int:
        """Total number of pairs resolved by this session."""
        return self._num_resolved

    @property
    def num_labeled(self) -> int:
        """Distinct pool demonstrations labeled (paid for) so far."""
        return len(self._labeled_indices)

    def cost(self) -> CostBreakdown:
        """Cumulative monetary cost (API + labeling) of this session."""
        return self._cost.breakdown()

    # -- resolution ----------------------------------------------------------

    def resolve(self, pairs: Iterable[EntityPair]) -> list[Resolution]:
        """Resolve a batch of pairs and return resolutions in input order.

        Raises:
            ValueError: if the session has no demonstrations yet.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if not self._pool:
            raise ValueError(
                "resolver session has no demonstrations; call "
                "add_demonstrations() (or build it with Resolver.from_dataset)"
            )
        context = PipelineContext.from_pairs(
            questions=pairs,
            pool=self._pool,
            attributes=self.attributes,
            config=self.config,
            llm=self._llm,
            cost=self._cost,
            method=f"resolver/{self.config.batching}+{self.config.selection}",
            prelabeled_pool_indices=frozenset(self._labeled_indices),
            reset_usage=False,
        )
        context.feature_store = self.feature_store
        context.pool_features = self._pool_features()
        context.tracer = self.tracer
        try:
            with self.tracer.span("resolver:resolve") as scope:
                if self.tracer.enabled:
                    scope.set_attribute("pairs", len(pairs))
                self._pipeline.run(context)
        finally:
            # Demonstrations are charged to the session tracker the moment
            # SelectDemonstrations runs; remember them even when a later stage
            # fails, so a retry never pays for the same demonstration twice.
            if context.selection is not None:
                self._labeled_indices.update(context.selection.labeled_pool_indices)
        self._num_resolved += len(pairs)
        predictions = context.predictions or ()
        answers = context.answers or ()
        return [
            Resolution(pair=pair, label=label, answered=answer is not None)
            for pair, label, answer in zip(pairs, predictions, answers)
        ]

    def resolve_iter(
        self, pairs: Iterable[EntityPair], chunk_size: int | None = None
    ) -> Iterator[Resolution]:
        """Resolve a (possibly unbounded) pair stream incrementally.

        Pairs are consumed lazily and flushed through the pipeline in chunks,
        so resolutions for early pairs are yielded before the stream is
        exhausted — the generator never materialises the full stream.

        The stream is consumed exactly once, so single-pass iterators
        (generators, file readers, network streams) are safe inputs; each
        chunk is materialised internally before it is resolved.  Note this is
        itself a generator: nothing is consumed (and nothing resolved) until
        the returned iterator is advanced.

        Args:
            chunk_size: pairs per flush; defaults to ``batch_size`` squared so
                each flush still gives the batching strategy room to group
                similar questions while keeping latency bounded.
        """
        if chunk_size is None:
            chunk_size = self.config.batch_size * self.config.batch_size
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        chunk: list[EntityPair] = []
        for pair in pairs:
            chunk.append(pair)
            if len(chunk) >= chunk_size:
                yield from self.resolve(chunk)
                chunk = []
        if chunk:
            yield from self.resolve(chunk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resolver(model={self.config.model!r}, pool_size={self.pool_size}, "
            f"num_resolved={self.num_resolved})"
        )
