"""The typed artifact passed between pipeline stages.

A :class:`PipelineContext` is the single mutable value object a
:class:`~repro.pipeline.pipeline.Pipeline` threads through its stages.  Each
stage reads the fields produced by earlier stages (enforced via
:meth:`PipelineContext.require`) and fills in its own outputs, so any prefix of
the stage sequence is independently runnable and inspectable — the property the
staged API is built around.

Contexts are constructed either from a benchmark dataset
(:meth:`PipelineContext.from_dataset`, the ``BatchER.run`` path) or from an
ad-hoc stream of entity pairs (:meth:`PipelineContext.from_pairs`, the
``Resolver`` serving path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.core.config import BatcherConfig
from repro.core.result import RunResult
from repro.cost.tracker import CostTracker
from repro.data.schema import Dataset, EntityPair, MatchLabel
from repro.features.engine import FeatureStore
from repro.llm.base import LLMClient, LLMResponse
from repro.llm.registry import create_llm
from repro.observability.tracing import NOOP_TRACER, Tracer
from repro.prompting.prompt import Prompt
from repro.selection.base import SelectionResult


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock telemetry for one executed stage."""

    stage: str
    seconds: float


@dataclass
class PipelineContext:
    """Mutable state threaded through the pipeline stages.

    Attributes:
        config: the design-space point being run.
        questions: the entity pairs to resolve, in evaluation order.
        pool: the (labeled) demonstration pool.
        attributes: shared attribute schema used for featurization/prompting.
        llm: the LLM client answering the prompts.
        cost: monetary cost accumulator for the run.
        dataset_name: dataset code recorded on results (``"stream"`` for
            ad-hoc pair streams).
        method: method label recorded on results; defaults to
            ``batcher/<batching>+<selection>``.
        prelabeled_pool_indices: pool indices whose labeling cost was already
            paid (a :class:`~repro.pipeline.resolver.Resolver` session pays for
            each demonstration only once across many resolve calls).
        feature_store: the columnar feature engine used to featurize (and to
            serve the run's cached pairwise-distance matrix and its
            :class:`~repro.clustering.neighbors.NeighborPlanner`, which routes
            batch planning between the dense-matrix and sparse-graph
            regimes).  A long-lived session (``Resolver``, the service)
            pre-sets a shared store so vectors are memoized across calls;
            ``Featurize`` builds an ephemeral one otherwise.
        question_features / pool_features: feature matrices (``Featurize``).
        batches: question batches (``BatchQuestions``).
        selection: per-batch demonstrations (``SelectDemonstrations``).
        prompts: rendered batch prompts, one per batch (``RenderPrompts``).
        responses: LLM responses aligned with ``prompts`` (``Inference``).
        answers: per-question parsed labels, ``None`` where the LLM failed to
            answer (``ParseAnswers``).
        predictions: ``answers`` with unanswered questions resolved to the
            fallback label (``ParseAnswers``).
        num_unanswered: count of unanswered questions (``ParseAnswers``).
        result: the evaluated :class:`RunResult` (``Evaluate``).
        timings: per-stage wall-clock telemetry appended by the pipeline.
        completed_stages: names of stages the pipeline has already run on this
            context; :meth:`Pipeline.run` skips them, so ``run_until`` followed
            by ``run`` resumes instead of re-executing (and re-charging) the
            prefix.
        tracer: span producer the pipeline (and everything it calls) records
            into; the default :data:`~repro.observability.tracing.NOOP_TRACER`
            keeps untraced runs effectively free of tracing overhead.
    """

    config: BatcherConfig
    questions: list[EntityPair]
    pool: list[EntityPair]
    attributes: tuple[str, ...]
    llm: LLMClient
    cost: CostTracker
    dataset_name: str = "stream"
    method: str | None = None
    prelabeled_pool_indices: frozenset[int] = frozenset()
    feature_store: FeatureStore | None = None
    question_features: np.ndarray | None = None
    pool_features: np.ndarray | None = None
    batches: list[QuestionBatch] | None = None
    selection: SelectionResult | None = None
    prompts: list[Prompt] | None = None
    responses: list[LLMResponse] | None = None
    answers: tuple[MatchLabel | None, ...] | None = None
    predictions: tuple[MatchLabel, ...] | None = None
    num_unanswered: int = 0
    result: RunResult | None = None
    timings: list[StageTiming] = field(default_factory=list)
    completed_stages: list[str] = field(default_factory=list)
    tracer: Tracer = NOOP_TRACER

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        config: BatcherConfig | None = None,
        llm: LLMClient | None = None,
    ) -> "PipelineContext":
        """Build a context for a benchmark run (test split vs. train pool)."""
        config = config or BatcherConfig()
        questions = list(dataset.splits.test)
        if config.max_questions is not None:
            questions = questions[: config.max_questions]
        if not questions:
            raise ValueError(f"dataset {dataset.name!r} has an empty test split")
        pool = list(dataset.splits.train)
        if not pool:
            raise ValueError(f"dataset {dataset.name!r} has an empty train split")
        return cls._build(
            config=config,
            questions=questions,
            pool=pool,
            attributes=dataset.attributes,
            llm=llm,
            dataset_name=dataset.name,
        )

    @classmethod
    def from_pairs(
        cls,
        questions: Sequence[EntityPair],
        pool: Sequence[EntityPair],
        attributes: tuple[str, ...] | None = None,
        config: BatcherConfig | None = None,
        llm: LLMClient | None = None,
        cost: CostTracker | None = None,
        dataset_name: str = "stream",
        method: str | None = None,
        prelabeled_pool_indices: frozenset[int] = frozenset(),
        reset_usage: bool = True,
    ) -> "PipelineContext":
        """Build a context for an ad-hoc pair stream against a given pool.

        Args:
            attributes: attribute schema; inferred from the first question's
                left record when omitted.
            cost: session-level cost tracker to accumulate into (a fresh one is
                created when omitted).
            prelabeled_pool_indices: pool indices whose labeling cost has
                already been paid in this session.
            reset_usage: whether to clear the LLM's usage before the run; a
                session keeping cumulative usage across calls passes ``False``.
        """
        config = config or BatcherConfig()
        questions = list(questions)
        if not questions:
            raise ValueError("cannot build a pipeline context without questions")
        pool = list(pool)
        if not pool:
            raise ValueError("cannot build a pipeline context without a demonstration pool")
        if attributes is None:
            attributes = tuple(questions[0].left.values.keys())
        return cls._build(
            config=config,
            questions=questions,
            pool=pool,
            attributes=attributes,
            llm=llm,
            cost=cost,
            dataset_name=dataset_name,
            method=method,
            prelabeled_pool_indices=prelabeled_pool_indices,
            reset_usage=reset_usage,
        )

    @classmethod
    def _build(
        cls,
        config: BatcherConfig,
        questions: list[EntityPair],
        pool: list[EntityPair],
        attributes: tuple[str, ...],
        llm: LLMClient | None,
        cost: CostTracker | None = None,
        dataset_name: str = "stream",
        method: str | None = None,
        prelabeled_pool_indices: frozenset[int] = frozenset(),
        reset_usage: bool = True,
    ) -> "PipelineContext":
        if llm is None:
            llm = create_llm(
                config.model,
                seed=config.seed,
                temperature=config.temperature,
                engine=config.engine,
            )
        elif reset_usage:
            llm.reset_usage()
        if cost is None:
            cost = CostTracker(config.model)
            cost.attach_usage(llm.usage)
        return cls(
            config=config,
            questions=questions,
            pool=pool,
            attributes=attributes,
            llm=llm,
            cost=cost,
            dataset_name=dataset_name,
            method=method,
            prelabeled_pool_indices=prelabeled_pool_indices,
        )

    def shard_view(
        self,
        batches: Sequence[QuestionBatch],
        prompts: Sequence[Prompt],
    ) -> "PipelineContext":
        """Build a sub-context executing only ``batches`` of this run.

        The run engine plans batching/selection/prompt-rendering once on the
        full context, then executes disjoint batch subsets (shards) through
        per-shard contexts produced here.  The view shares this context's
        :class:`~repro.features.engine.FeatureStore`, LLM client and cost
        tracker — only the questions, batches and prompts are narrowed, and
        batch indices are remapped to the view's local question order so the
        inference and parsing stages run on it unchanged.

        Raises:
            ValueError: if ``batches`` and ``prompts`` are not aligned.
        """
        if len(batches) != len(prompts):
            raise ValueError(
                f"shard view needs one prompt per batch, got {len(batches)} "
                f"batches and {len(prompts)} prompts"
            )
        questions: list[EntityPair] = []
        local_batches: list[QuestionBatch] = []
        for batch in batches:
            offset = len(questions)
            questions.extend(batch.pairs)
            local_batches.append(
                QuestionBatch(
                    batch_id=batch.batch_id,
                    indices=tuple(range(offset, offset + len(batch))),
                    pairs=batch.pairs,
                )
            )
        return PipelineContext(
            config=self.config,
            questions=questions,
            pool=self.pool,
            attributes=self.attributes,
            llm=self.llm,
            cost=self.cost,
            dataset_name=self.dataset_name,
            method=self.method,
            prelabeled_pool_indices=self.prelabeled_pool_indices,
            feature_store=self.feature_store,
            batches=local_batches,
            prompts=list(prompts),
            tracer=self.tracer,
        )

    # -- stage plumbing -------------------------------------------------------

    def require(self, field_name: str, producer: str):
        """Return ``field_name``, raising if the producing stage has not run.

        Raises:
            ValueError: when the field is still ``None`` — i.e. ``producer``
                (the stage that fills it) has not been run on this context.
        """
        value = getattr(self, field_name)
        if value is None:
            raise ValueError(
                f"pipeline context is missing {field_name!r}; "
                f"run the {producer!r} stage first"
            )
        return value

    @property
    def num_questions(self) -> int:
        """Number of questions carried by this context."""
        return len(self.questions)

    @property
    def method_label(self) -> str:
        """Method label recorded on results."""
        if self.method is not None:
            return self.method
        return f"batcher/{self.config.batching}+{self.config.selection}"
