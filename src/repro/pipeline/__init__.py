"""Staged pipeline API: composable stages, concurrent dispatch, serving.

This package is the composable counterpart to the monolithic
:class:`repro.core.BatchER` entry point (which is now a thin facade over it):

* :class:`PipelineContext` — the typed artifact stages pass between them;
* the stages — :class:`Featurize`, :class:`BatchQuestions`,
  :class:`SelectDemonstrations`, :class:`RenderPrompts`, :class:`Inference`,
  :class:`ParseAnswers`, :class:`Evaluate` — each individually runnable;
* :class:`Pipeline` — the ordered, observable stage runner with per-stage
  timing telemetry and :class:`StageHook` observers;
* execution backends (:class:`SerialExecutor`, :class:`ConcurrentExecutor`)
  that dispatch independent batch prompts serially or on a thread pool with
  deterministic result ordering; and
* :class:`Resolver` — a long-lived serving session resolving ad-hoc
  :class:`~repro.data.schema.EntityPair` streams against a persistent
  demonstration pool.
"""

from repro.llm.executors import (
    ConcurrentExecutor,
    ExecutionBackend,
    SerialExecutor,
    create_executor,
)
from repro.pipeline.context import PipelineContext, StageTiming
from repro.pipeline.pipeline import Pipeline, StageHook
from repro.pipeline.resolver import Resolution, Resolver
from repro.pipeline.stages import (
    DEFAULT_STAGES,
    BatchQuestions,
    Evaluate,
    Featurize,
    Inference,
    ParseAnswers,
    PipelineStage,
    RenderPrompts,
    SelectDemonstrations,
)

__all__ = [
    "BatchQuestions",
    "ConcurrentExecutor",
    "DEFAULT_STAGES",
    "Evaluate",
    "ExecutionBackend",
    "Featurize",
    "Inference",
    "ParseAnswers",
    "Pipeline",
    "PipelineContext",
    "PipelineStage",
    "RenderPrompts",
    "Resolution",
    "Resolver",
    "SelectDemonstrations",
    "SerialExecutor",
    "StageHook",
    "StageTiming",
    "create_executor",
]
