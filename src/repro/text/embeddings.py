"""Deterministic sentence embeddings standing in for SBERT / RoBERTa.

The semantics-based feature extractor of the paper (Section III-B) encodes a
serialized entity pair with a pre-trained sentence encoder.  Offline we cannot
load SBERT, so :class:`HashingSentenceEncoder` provides a deterministic
substitute with the single property the downstream pipeline depends on:
*textually similar sentences map to nearby vectors*.

The encoder hashes word unigrams, word bigrams and character trigrams into a
fixed-dimensional vector (the classic "hashing trick"), applies sub-linear
term-frequency scaling and L2-normalises the result.  Cosine / Euclidean
proximity of the resulting vectors then tracks surface-level textual overlap,
which is exactly what an off-the-shelf sentence encoder gives an ER pipeline
that never fine-tunes it.
"""

from __future__ import annotations

import hashlib
import math
import re

import numpy as np

_WORD_PATTERN = re.compile(r"[a-z0-9]+")


def _stable_hash(text: str) -> int:
    """Return a deterministic 64-bit hash of ``text`` (stable across processes)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingSentenceEncoder:
    """Hash-based sentence encoder producing deterministic dense embeddings.

    Args:
        dimension: output embedding dimensionality.
        use_char_ngrams: include character trigram features (helps with typos,
            which matter for dirty ER attribute values).
        use_word_bigrams: include word bigram features (adds mild word-order
            sensitivity, mimicking a contextual encoder).

    The encoder is stateless apart from its configuration, so encoding the same
    sentence always yields the same vector.
    """

    def __init__(
        self,
        dimension: int = 256,
        use_char_ngrams: bool = True,
        use_word_bigrams: bool = True,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self.use_char_ngrams = use_char_ngrams
        self.use_word_bigrams = use_word_bigrams

    def _features(self, text: str) -> list[str]:
        words = _WORD_PATTERN.findall(text.lower())
        features = [f"w:{word}" for word in words]
        if self.use_word_bigrams and len(words) > 1:
            features.extend(
                f"b:{first}_{second}" for first, second in zip(words, words[1:])
            )
        if self.use_char_ngrams:
            for word in words:
                padded = f"^{word}$"
                features.extend(
                    f"c:{padded[i:i + 3]}" for i in range(max(1, len(padded) - 2))
                )
        return features

    def encode(self, text: str | None) -> np.ndarray:
        """Encode one sentence into a unit-norm vector of ``self.dimension`` floats."""
        vector = np.zeros(self.dimension, dtype=np.float64)
        if not text:
            return vector
        counts: dict[str, int] = {}
        for feature in self._features(text):
            counts[feature] = counts.get(feature, 0) + 1
        for feature, count in counts.items():
            feature_hash = _stable_hash(feature)
            index = feature_hash % self.dimension
            sign = 1.0 if (feature_hash >> 32) % 2 == 0 else -1.0
            vector[index] += sign * (1.0 + math.log(count))
        norm = float(np.linalg.norm(vector))
        if norm > 0.0:
            vector /= norm
        return vector

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Encode a list of sentences into a ``(len(texts), dimension)`` matrix."""
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.vstack([self.encode(text) for text in texts])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between the embeddings of two sentences."""
        return float(np.dot(self.encode(left), self.encode(right)))
