"""Deterministic sentence embeddings standing in for SBERT / RoBERTa.

The semantics-based feature extractor of the paper (Section III-B) encodes a
serialized entity pair with a pre-trained sentence encoder.  Offline we cannot
load SBERT, so :class:`HashingSentenceEncoder` provides a deterministic
substitute with the single property the downstream pipeline depends on:
*textually similar sentences map to nearby vectors*.

The encoder hashes word unigrams, word bigrams and character trigrams into a
fixed-dimensional vector (the classic "hashing trick"), applies sub-linear
term-frequency scaling and L2-normalises the result.  Cosine / Euclidean
proximity of the resulting vectors then tracks surface-level textual overlap,
which is exactly what an off-the-shelf sentence encoder gives an ER pipeline
that never fine-tunes it.

:meth:`HashingSentenceEncoder.encode_batch` is the hot path used by the
columnar feature engine: it deduplicates repeated texts, memoizes per-text
vectors across calls, caches feature hashes (the dominant cost — one blake2b
digest per distinct n-gram), and accumulates all remaining texts in a single
sparse ``np.add.at`` pass.  Its output is bit-identical to per-text
:meth:`~HashingSentenceEncoder.encode` calls, which the equivalence tests pin
down.
"""

from __future__ import annotations

import hashlib
import math
import re

import numpy as np

_WORD_PATTERN = re.compile(r"[a-z0-9]+")

#: Bound on the per-text vector memo (entries are dropped FIFO on overflow).
DEFAULT_TEXT_CACHE_SIZE = 65536

#: Bound on the feature-hash memo (cleared wholesale on overflow; n-gram
#: variety grows slowly, so a clear is rare and cheap).
DEFAULT_HASH_CACHE_SIZE = 1 << 20


def _stable_hash(text: str) -> int:
    """Return a deterministic 64-bit hash of ``text`` (stable across processes)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingSentenceEncoder:
    """Hash-based sentence encoder producing deterministic dense embeddings.

    Args:
        dimension: output embedding dimensionality.
        use_char_ngrams: include character trigram features (helps with typos,
            which matter for dirty ER attribute values).
        use_word_bigrams: include word bigram features (adds mild word-order
            sensitivity, mimicking a contextual encoder).

    The encoder is stateless apart from its configuration, so encoding the same
    sentence always yields the same vector.
    """

    def __init__(
        self,
        dimension: int = 256,
        use_char_ngrams: bool = True,
        use_word_bigrams: bool = True,
        text_cache_size: int = DEFAULT_TEXT_CACHE_SIZE,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        if text_cache_size < 0:
            raise ValueError(f"text_cache_size must be >= 0, got {text_cache_size}")
        self.dimension = dimension
        self.use_char_ngrams = use_char_ngrams
        self.use_word_bigrams = use_word_bigrams
        self.text_cache_size = text_cache_size
        # feature n-gram -> (vector index, sign); shared across every text, so
        # each distinct n-gram pays its blake2b digest exactly once.
        self._hash_cache: dict[str, tuple[int, float]] = {}
        # text -> finished unit-norm vector (never handed out without a copy).
        self._text_cache: dict[str, np.ndarray] = {}

    def _features(self, text: str) -> list[str]:
        words = _WORD_PATTERN.findall(text.lower())
        features = [f"w:{word}" for word in words]
        if self.use_word_bigrams and len(words) > 1:
            features.extend(
                f"b:{first}_{second}" for first, second in zip(words, words[1:])
            )
        if self.use_char_ngrams:
            for word in words:
                padded = f"^{word}$"
                features.extend(
                    f"c:{padded[i:i + 3]}" for i in range(max(1, len(padded) - 2))
                )
        return features

    def _hashed(self, feature: str) -> tuple[int, float]:
        """Vector index and sign of one feature, via the shared hash cache."""
        cached = self._hash_cache.get(feature)
        if cached is None:
            feature_hash = _stable_hash(feature)
            cached = (
                feature_hash % self.dimension,
                1.0 if (feature_hash >> 32) % 2 == 0 else -1.0,
            )
            if len(self._hash_cache) >= DEFAULT_HASH_CACHE_SIZE:
                self._hash_cache.clear()
            self._hash_cache[feature] = cached
        return cached

    def _remember(self, text: str, vector: np.ndarray) -> None:
        """Memoize a finished vector, dropping the oldest entries on overflow."""
        if self.text_cache_size == 0:
            return
        self._text_cache[text] = vector
        while len(self._text_cache) > self.text_cache_size:
            self._text_cache.pop(next(iter(self._text_cache)))

    def encode(self, text: str | None) -> np.ndarray:
        """Encode one sentence into a unit-norm vector of ``self.dimension`` floats."""
        if not text:
            return np.zeros(self.dimension, dtype=np.float64)
        cached = self._text_cache.get(text)
        if cached is not None:
            return cached.copy()
        vector = np.zeros(self.dimension, dtype=np.float64)
        counts: dict[str, int] = {}
        for feature in self._features(text):
            counts[feature] = counts.get(feature, 0) + 1
        for feature, count in counts.items():
            index, sign = self._hashed(feature)
            vector[index] += sign * (1.0 + math.log(count))
        norm = float(np.linalg.norm(vector))
        if norm > 0.0:
            vector /= norm
        self._remember(text, vector)
        return vector.copy()

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Encode a list of sentences into a ``(len(texts), dimension)`` matrix.

        This is the vectorized path: repeated texts are deduplicated, memoized
        vectors are reused across calls, and every remaining text is
        accumulated in one sparse ``np.add.at`` pass instead of per-text
        Python loops.  The result is bit-identical to stacking per-text
        :meth:`encode` calls (``np.add.at`` applies updates unbuffered in
        coordinate order, matching the scalar accumulation order).
        """
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)

        # Dedup in first-appearance order; figure out which texts still need
        # to be computed (empty texts map to the zero vector directly).
        unique: dict[str, int] = {}
        for text in texts:
            key = text or ""
            if key not in unique:
                unique[key] = len(unique)
        resolved: dict[str, np.ndarray] = {}
        pending: list[str] = []
        for text in unique:
            if not text:
                resolved[text] = np.zeros(self.dimension, dtype=np.float64)
                continue
            cached = self._text_cache.get(text)
            if cached is not None:
                resolved[text] = cached
            else:
                pending.append(text)

        if pending:
            # Single sparse accumulation pass over all pending texts: build
            # (row, column, value) coordinates in exactly the order the scalar
            # path would apply them, then apply them all at once.
            rows: list[int] = []
            columns: list[int] = []
            values: list[float] = []
            for row, text in enumerate(pending):
                counts: dict[str, int] = {}
                for feature in self._features(text):
                    counts[feature] = counts.get(feature, 0) + 1
                for feature, count in counts.items():
                    index, sign = self._hashed(feature)
                    rows.append(row)
                    columns.append(index)
                    values.append(sign * (1.0 + math.log(count)))
            block = np.zeros((len(pending), self.dimension), dtype=np.float64)
            np.add.at(
                block,
                (np.asarray(rows, dtype=np.intp), np.asarray(columns, dtype=np.intp)),
                np.asarray(values, dtype=np.float64),
            )
            for row, text in enumerate(pending):
                vector = block[row]
                norm = float(np.linalg.norm(vector))
                if norm > 0.0:
                    vector /= norm
                resolved[text] = vector
                self._remember(text, vector.copy())

        matrix = np.empty((len(texts), self.dimension), dtype=np.float64)
        for position, text in enumerate(texts):
            matrix[position] = resolved[text or ""]
        return matrix

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between the embeddings of two sentences."""
        return float(np.dot(self.encode(left), self.encode(right)))
