"""String similarity functions used by the structure-aware feature extractor.

The paper (Section III-B) builds feature vectors for an entity pair by computing
per-attribute string similarities.  Two functions are named explicitly:

* the token-set **Jaccard** similarity (Eq. 4), and
* the **Levenshtein ratio** (Eq. 5), defined as ``1 - LED(a, b) / (len(a) + len(b))``
  where ``LED`` is the Levenshtein edit distance.

Beyond those, this module ships the usual record-linkage similarity toolbox
(Jaro, Jaro-Winkler, Monge-Elkan, overlap coefficient, token cosine) so that the
feature extractor and the blocker can be configured with alternatives, and so
that ablations over the similarity function are possible.

All functions accept plain strings, treat ``None``/empty values as empty
strings, and return a float in ``[0, 1]`` (except ``levenshtein_distance``,
which returns a non-negative integer).
"""

from __future__ import annotations

import math
import re
from functools import lru_cache

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def _normalise(value: str | None) -> str:
    """Return a lower-cased, stripped string; ``None`` becomes the empty string."""
    if value is None:
        return ""
    return str(value).strip().lower()


def tokenize_value(value: str | None) -> list[str]:
    """Split an attribute value into lower-case alphanumeric tokens.

    >>> tokenize_value("Here Comes The Fuzz [Explicit]")
    ['here', 'comes', 'the', 'fuzz', 'explicit']
    """
    return _TOKEN_PATTERN.findall(_normalise(value))


def levenshtein_distance(left: str | None, right: str | None) -> int:
    """Compute the Levenshtein edit distance between two strings.

    Uses the classic two-row dynamic program, O(len(left) * len(right)) time and
    O(min(len)) memory.
    """
    a = _normalise(left)
    b = _normalise(right)
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (char_a != char_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_ratio(left: str | None, right: str | None) -> float:
    """Levenshtein ratio as defined by Eq. 5 of the paper.

    ``LR(a, b) = 1 - LED(a, b) / (len(a) + len(b))``.  Two empty strings are
    defined to have similarity 1.0 (nothing distinguishes them); a single empty
    string against a non-empty one yields ``1 - len/len = 0`` under the paper's
    formula only when the edit distance equals the total length, which it does,
    so no special case is needed there.
    """
    a = _normalise(left)
    b = _normalise(right)
    total_length = len(a) + len(b)
    if total_length == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / total_length


def jaccard_similarity(left: str | None, right: str | None) -> float:
    """Token-set Jaccard similarity as defined by Eq. 4 of the paper.

    Values are tokenized into sets; two empty token sets have similarity 1.0.
    """
    tokens_a = set(tokenize_value(left))
    tokens_b = set(tokenize_value(right))
    if not tokens_a and not tokens_b:
        return 1.0
    union_size = len(tokens_a | tokens_b)
    if union_size == 0:
        return 1.0
    return len(tokens_a & tokens_b) / union_size


def overlap_coefficient(left: str | None, right: str | None) -> float:
    """Szymkiewicz-Simpson overlap coefficient over token sets."""
    tokens_a = set(tokenize_value(left))
    tokens_b = set(tokenize_value(right))
    if not tokens_a and not tokens_b:
        return 1.0
    smaller = min(len(tokens_a), len(tokens_b))
    if smaller == 0:
        return 0.0
    return len(tokens_a & tokens_b) / smaller


def cosine_token_similarity(left: str | None, right: str | None) -> float:
    """Cosine similarity between token multiset frequency vectors."""
    tokens_a = tokenize_value(left)
    tokens_b = tokenize_value(right)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    counts_a: dict[str, int] = {}
    counts_b: dict[str, int] = {}
    for token in tokens_a:
        counts_a[token] = counts_a.get(token, 0) + 1
    for token in tokens_b:
        counts_b[token] = counts_b.get(token, 0) + 1
    dot = sum(count * counts_b.get(token, 0) for token, count in counts_a.items())
    norm_a = math.sqrt(sum(count * count for count in counts_a.values()))
    norm_b = math.sqrt(sum(count * count for count in counts_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def jaro_similarity(left: str | None, right: str | None) -> float:
    """Jaro similarity between two strings."""
    a = _normalise(left)
    b = _normalise(right)
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str | None, right: str | None, prefix_weight: float = 0.1
) -> float:
    """Jaro-Winkler similarity (Jaro boosted by common-prefix length up to 4)."""
    a = _normalise(left)
    b = _normalise(right)
    jaro = jaro_similarity(a, b)
    prefix_length = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def monge_elkan_similarity(left: str | None, right: str | None) -> float:
    """Monge-Elkan similarity: mean of best Jaro-Winkler match per left token."""
    tokens_a = tokenize_value(left)
    tokens_b = tokenize_value(right)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(jaro_winkler_similarity(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


SIMILARITY_FUNCTIONS = {
    "levenshtein_ratio": levenshtein_ratio,
    "jaccard": jaccard_similarity,
    "overlap": overlap_coefficient,
    "cosine": cosine_token_similarity,
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "monge_elkan": monge_elkan_similarity,
}
"""Registry of named similarity functions usable by feature extractors and blockers."""


@lru_cache(maxsize=1)
def available_similarity_functions() -> tuple[str, ...]:
    """Return the names of all registered string similarity functions."""
    return tuple(sorted(SIMILARITY_FUNCTIONS))


def get_similarity_function(name: str):
    """Look up a similarity function by name.

    Raises:
        KeyError: if ``name`` is not a registered similarity function.
    """
    try:
        return SIMILARITY_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(available_similarity_functions())
        raise KeyError(f"unknown similarity function {name!r}; expected one of: {known}") from None
