"""Approximate LLM tokenizer used for token counting and API cost estimation.

The paper's cost model is priced per 1K tokens of the prompt sent to the LLM
API.  Offline we cannot call ``tiktoken``, so this module provides a
deterministic approximation that mirrors the well-known heuristics for GPT-style
BPE tokenizers:

* whitespace-separated words are split further into sub-word chunks of roughly
  four characters,
* punctuation and digits tend to become their own tokens,
* long alphanumeric identifiers (product model numbers, ids) cost proportionally
  more tokens.

The absolute counts do not need to match OpenAI's tokenizer exactly — every
method in the benchmark is priced with the *same* tokenizer, so relative cost
comparisons (the paper's 4x-7x savings claims) are preserved.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_WORD_PATTERN = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z\d]")

#: Average number of characters covered by one BPE token for alphabetic words.
_CHARS_PER_ALPHA_TOKEN = 4
#: Average number of characters covered by one BPE token for digit runs.
_CHARS_PER_DIGIT_TOKEN = 3


@dataclass(frozen=True)
class TokenizationResult:
    """Tokenization outcome: the surface chunks and the estimated token count."""

    chunks: tuple[str, ...]
    token_count: int


class ApproxTokenizer:
    """Deterministic approximation of a GPT-style BPE tokenizer.

    The tokenizer is stateless; a single shared instance may be reused across
    the whole pipeline.  ``count`` is the primary entry point.
    """

    def tokenize(self, text: str | None) -> TokenizationResult:
        """Split ``text`` into word-level chunks and estimate the BPE token count."""
        if not text:
            return TokenizationResult(chunks=(), token_count=0)
        chunks = tuple(_WORD_PATTERN.findall(text))
        token_count = 0
        for chunk in chunks:
            if chunk.isalpha():
                token_count += max(1, -(-len(chunk) // _CHARS_PER_ALPHA_TOKEN))
            elif chunk.isdigit():
                token_count += max(1, -(-len(chunk) // _CHARS_PER_DIGIT_TOKEN))
            else:
                token_count += 1
        return TokenizationResult(chunks=chunks, token_count=token_count)

    def count(self, text: str | None) -> int:
        """Return the estimated number of tokens in ``text``."""
        return self.tokenize(text).token_count

    def count_many(self, texts: list[str]) -> int:
        """Return the total estimated token count over a list of texts."""
        return sum(self.count(text) for text in texts)


_DEFAULT_TOKENIZER = ApproxTokenizer()


def count_tokens(text: str | None) -> int:
    """Estimate the token count of ``text`` using the shared default tokenizer."""
    return _DEFAULT_TOKENIZER.count(text)
