"""Text substrate: tokenization, string similarity and sentence embeddings.

The paper relies on three text-level capabilities:

* token counting against the LLM provider's tokenizer (for API cost and for the
  token-weighted Batch Covering objective) — provided by
  :class:`repro.text.tokenizer.ApproxTokenizer`;
* string similarity functions used by the structure-aware feature extractor
  (Levenshtein ratio, Eq. 5; Jaccard, Eq. 4) — provided by
  :mod:`repro.text.similarity`;
* sentence embeddings used by the semantics-based feature extractor (the paper
  uses SBERT; offline we substitute a deterministic hashing encoder) — provided
  by :class:`repro.text.embeddings.HashingSentenceEncoder`.
"""

from repro.text.tokenizer import ApproxTokenizer, count_tokens
from repro.text.similarity import (
    cosine_token_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_ratio,
    monge_elkan_similarity,
    overlap_coefficient,
    tokenize_value,
)
from repro.text.embeddings import HashingSentenceEncoder

__all__ = [
    "ApproxTokenizer",
    "HashingSentenceEncoder",
    "cosine_token_similarity",
    "count_tokens",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_ratio",
    "monge_elkan_similarity",
    "overlap_coefficient",
    "tokenize_value",
]
