"""BatchER reproduction: cost-effective in-context learning for entity resolution.

This package reproduces the system described in "Cost-Effective In-Context
Learning for Entity Resolution: A Design Space Exploration" (ICDE 2024).
It provides:

* a data substrate with synthetic Magellan-style ER benchmarks
  (:mod:`repro.data`),
* string similarity, tokenization and embedding substrates (:mod:`repro.text`),
* clustering (:mod:`repro.clustering`) and feature extraction
  (:mod:`repro.features`) behind a content-addressed columnar feature engine
  (:class:`FeatureStore`) shared by the pipeline, resolver sessions and the
  service,
* the BatchER design space: question batching (:mod:`repro.batching`) and
  demonstration selection (:mod:`repro.selection`) including the covering-based
  strategy built on greedy set cover,
* prompt construction and answer parsing (:mod:`repro.prompting`),
* a simulated LLM substrate with usage/pricing accounting and pluggable
  execution backends for concurrent prompt dispatch (:mod:`repro.llm`),
* the staged pipeline API (:mod:`repro.pipeline`): individually-runnable
  stages passing a typed :class:`PipelineContext`, per-stage telemetry, and
  the streaming :class:`Resolver` session for serving ad-hoc pair streams,
* supervised PLM-style baselines and the ManualPrompt baseline
  (:mod:`repro.baselines`),
* the end-to-end :class:`repro.core.BatchER` facade over the pipeline,
* the sharded, checkpointable run engine (:mod:`repro.engine`): a
  :class:`RunEngine` that splits a run into deterministic shards of whole
  batches, executes them serially or concurrently with per-batch JSONL
  checkpoints, and merges byte-identical results — a killed run resumes with
  zero repeated LLM calls (fault-injection tested via
  :mod:`repro.engine.faults`),
* the online serving subsystem (:mod:`repro.service`): a micro-batching
  :class:`ResolutionService` aggregating concurrent requests into shared
  batch prompts, with a pair-level result cache, cost-aware admission,
  multi-tenant API-key quotas and budgets, and two byte-identical stdlib
  HTTP front ends — asyncio and threaded (``repro-serve``), and
* experiment runners reproducing every table and figure of the paper
  (:mod:`repro.experiments`).

Quickstart — benchmarking
-------------------------

>>> from repro import BatchER, BatcherConfig, load_dataset
>>> dataset = load_dataset("beer", seed=7)
>>> config = BatcherConfig(batching="diverse", selection="covering")
>>> framework = BatchER(config)
>>> result = framework.run(dataset)
>>> 0.0 <= result.metrics.f1 <= 100.0
True

Quickstart — serving
--------------------

>>> from repro import ConcurrentExecutor, Resolver
>>> resolver = Resolver.from_dataset(dataset, config, executor=ConcurrentExecutor(4))
>>> pairs = [pair.without_label() for pair in dataset.splits.test][:8]
>>> resolutions = resolver.resolve(pairs)
>>> len(resolutions) == len(pairs)
True
"""

from repro.core.config import BatcherConfig
from repro.core.batcher import BatchER
from repro.core.result import RunResult
from repro.core.standard import StandardPromptingER
from repro.data.registry import available_datasets, load_dataset
from repro.engine import CheckpointStore, RunEngine, ShardPlanner
from repro.evaluation.metrics import MatchingMetrics, evaluate_predictions
from repro.llm.executors import (
    ConcurrentExecutor,
    ExecutionBackend,
    SerialExecutor,
    create_executor,
)
from repro.features import FeatureStore
from repro.pipeline import (
    Pipeline,
    PipelineContext,
    Resolution,
    Resolver,
    StageHook,
)
from repro.service import ResolutionService, ResultCache, ServiceConfig, TenantConfig

__version__ = "1.10.0"

__all__ = [
    "BatchER",
    "BatcherConfig",
    "CheckpointStore",
    "ConcurrentExecutor",
    "ExecutionBackend",
    "FeatureStore",
    "MatchingMetrics",
    "Pipeline",
    "PipelineContext",
    "Resolution",
    "ResolutionService",
    "Resolver",
    "ResultCache",
    "RunEngine",
    "RunResult",
    "SerialExecutor",
    "ShardPlanner",
    "ServiceConfig",
    "StageHook",
    "StandardPromptingER",
    "TenantConfig",
    "available_datasets",
    "create_executor",
    "evaluate_predictions",
    "load_dataset",
    "__version__",
]
