"""BatchER reproduction: cost-effective in-context learning for entity resolution.

This package reproduces the system described in "Cost-Effective In-Context
Learning for Entity Resolution: A Design Space Exploration" (ICDE 2024).
It provides:

* a data substrate with synthetic Magellan-style ER benchmarks
  (:mod:`repro.data`),
* string similarity, tokenization and embedding substrates (:mod:`repro.text`),
* clustering (:mod:`repro.clustering`) and feature extraction
  (:mod:`repro.features`),
* the BatchER design space: question batching (:mod:`repro.batching`) and
  demonstration selection (:mod:`repro.selection`) including the covering-based
  strategy built on greedy set cover,
* prompt construction and answer parsing (:mod:`repro.prompting`),
* a simulated LLM substrate with usage/pricing accounting (:mod:`repro.llm`),
* supervised PLM-style baselines and the ManualPrompt baseline
  (:mod:`repro.baselines`),
* the end-to-end :class:`repro.core.BatchER` framework, and
* experiment runners reproducing every table and figure of the paper
  (:mod:`repro.experiments`).

Quickstart
----------

>>> from repro import BatchER, BatcherConfig, load_dataset
>>> dataset = load_dataset("beer", seed=7)
>>> config = BatcherConfig(batching="diverse", selection="covering")
>>> framework = BatchER(config)
>>> result = framework.run(dataset)
>>> 0.0 <= result.metrics.f1 <= 1.0
True
"""

from repro.core.config import BatcherConfig
from repro.core.batcher import BatchER
from repro.core.result import RunResult
from repro.data.registry import available_datasets, load_dataset
from repro.evaluation.metrics import MatchingMetrics, evaluate_predictions

__version__ = "1.0.0"

__all__ = [
    "BatchER",
    "BatcherConfig",
    "RunResult",
    "MatchingMetrics",
    "available_datasets",
    "evaluate_predictions",
    "load_dataset",
    "__version__",
]
