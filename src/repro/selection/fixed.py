"""Fixed demonstration selection (paper Section IV-A).

Sample ``K`` demonstrations from the pool once, label them, and attach the same
set to every batch.  The labeling cost is fixed (K pairs) but the demonstrations
are unrelated to the questions, which is why ICL accuracy with fixed random
demonstrations is known to be unstable.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair
from repro.selection.base import DemonstrationSelector, SelectionResult


class FixedDemonstrationSelector(DemonstrationSelector):
    """One random demonstration set reused for every batch."""

    name = "fixed"

    def select(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        question_distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> SelectionResult:
        if not pool:
            raise ValueError("the demonstration pool is empty")
        rng = random.Random(self.seed)
        count = min(self.num_demonstrations, len(pool))
        fixed_indices = rng.sample(range(len(pool)), count)
        # Prefer a label-balanced fixed set when possible: ICL with only one
        # class of demonstrations is degenerate, and the paper's fixed strategy
        # samples from a pool that contains both classes.
        labels = [pool[index].label for index in fixed_indices]
        if len(set(labels)) == 1 and len(pool) > count:
            wanted = {label for label in (0, 1) if label not in {int(l) for l in labels}}
            for index in rng.sample(range(len(pool)), len(pool)):
                if int(pool[index].label) in wanted:
                    fixed_indices[-1] = index
                    break
        per_batch = [list(fixed_indices) for _ in batches]
        return self._build_result(batches, per_batch, pool)
