"""Factory for demonstration selection strategies keyed by the paper's names."""

from __future__ import annotations

from repro.selection.base import DemonstrationSelector
from repro.selection.covering import CoveringSelector
from repro.selection.fixed import FixedDemonstrationSelector
from repro.selection.topk_batch import TopKBatchSelector
from repro.selection.topk_question import TopKQuestionSelector

#: Canonical selection strategy names accepted by :func:`create_selector`.
SELECTION_STRATEGIES = ("fixed", "topk-batch", "topk-question", "covering")


def create_selector(
    strategy: str,
    num_demonstrations: int = 8,
    metric: str = "euclidean",
    seed: int = 0,
    threshold_percentile: float = 8.0,
) -> DemonstrationSelector:
    """Create a demonstration selector for one of the paper's strategies.

    Args:
        strategy: ``"fixed"``, ``"topk-batch"``, ``"topk-question"`` or
            ``"covering"`` (aliases like ``"cover"`` are accepted).
        num_demonstrations: per-batch demonstration budget K (paper: 8).
        metric: distance metric between feature vectors.
        seed: RNG seed for randomised choices.
        threshold_percentile: covering threshold percentile (covering only).

    Raises:
        KeyError: for unknown strategies.
    """
    key = strategy.strip().lower().replace("_", "-")
    if key in ("fixed", "fix"):
        return FixedDemonstrationSelector(
            num_demonstrations=num_demonstrations, metric=metric, seed=seed
        )
    if key in ("topk-batch", "topkbatch", "batch-topk"):
        return TopKBatchSelector(
            num_demonstrations=num_demonstrations, metric=metric, seed=seed
        )
    if key in ("topk-question", "topkquestion", "question-topk"):
        return TopKQuestionSelector(
            num_demonstrations=num_demonstrations, metric=metric, seed=seed
        )
    if key in ("covering", "cover", "covering-based"):
        return CoveringSelector(
            num_demonstrations=num_demonstrations,
            metric=metric,
            seed=seed,
            threshold_percentile=threshold_percentile,
        )
    known = ", ".join(SELECTION_STRATEGIES)
    raise KeyError(f"unknown selection strategy {strategy!r}; expected one of: {known}")
