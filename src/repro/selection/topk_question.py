"""Top-k-question demonstration selection (paper Section IV-C).

For every question in a batch, pick its ``k`` nearest pool demonstrations and
take the union as the batch's demonstration set
(``D_i = U_{q in B_i} kNN(q, Du)``).  Accuracy tends to be high because every
question gets a relevant reference, but the labeling cost (and prompt length)
is the largest of the four strategies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair
from repro.selection.base import DemonstrationSelector, SelectionResult


class TopKQuestionSelector(DemonstrationSelector):
    """Union of each question's k nearest demonstrations.

    Args:
        per_question_k: explicit ``k`` per question.  When ``None`` it is
            derived as ``max(1, num_demonstrations // batch size)`` so that the
            per-batch budget matches the other strategies (the paper sets the
            budget to the batch size of 8, i.e. k = 1 per question).
    """

    name = "topk-question"

    def __init__(
        self,
        num_demonstrations: int = 8,
        metric: str = "euclidean",
        seed: int = 0,
        per_question_k: int | None = None,
    ) -> None:
        super().__init__(num_demonstrations=num_demonstrations, metric=metric, seed=seed)
        if per_question_k is not None and per_question_k < 1:
            raise ValueError(f"per_question_k must be >= 1, got {per_question_k}")
        self.per_question_k = per_question_k

    def _resolve_k(self, batch: QuestionBatch) -> int:
        if self.per_question_k is not None:
            return self.per_question_k
        return max(1, self.num_demonstrations // max(1, len(batch)))

    def select(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        question_distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> SelectionResult:
        if not pool:
            raise ValueError("the demonstration pool is empty")
        distances = self._question_to_pool_distances(question_features, pool_features)

        per_batch: list[list[int]] = []
        for batch in batches:
            k = min(self._resolve_k(batch), len(pool))
            selected: list[int] = []
            for question_index in batch.indices:
                nearest = np.argsort(distances[question_index], kind="stable")[:k]
                selected.extend(int(index) for index in nearest)
            per_batch.append(selected)
        return self._build_result(batches, per_batch, pool)
