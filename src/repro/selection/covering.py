"""Covering-based demonstration selection (paper Sections IV-D and V).

The strategy runs in two phases, both greedy set covers (Algorithm 1):

1. **Demonstration Set Generation** (Section V-A): over *all* questions of all
   batches, select a minimal subset ``Ds`` of the unlabeled pool such that
   every question has at least one demonstration within distance ``t``.
   Weights are 1 (each selected demonstration costs one manual label), so the
   greedy rule minimises the number of labeled demonstrations.

2. **Batch Covering** (Section V-B): for each batch, select a subset of ``Ds``
   covering every question of the batch while minimising the total *token*
   weight of the chosen demonstrations, which minimises the prompt (API) cost.

The distance threshold ``t`` defaults to the paper's rule: the 8th percentile
of all pairwise question distances.  Questions that no pool demonstration can
cover within ``t`` fall back to their single nearest demonstration so that the
prompt never leaves a question without any reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.distance import pairwise_distances
from repro.data.schema import EntityPair
from repro.data.serialization import serialize_pair
from repro.selection.base import DemonstrationSelector, SelectionResult
from repro.selection.set_cover import greedy_set_cover
from repro.text.tokenizer import ApproxTokenizer

#: The paper's default: take the 8th percentile of pairwise question distances as t.
DEFAULT_THRESHOLD_PERCENTILE = 8.0


@dataclass(frozen=True)
class CoveringDiagnostics:
    """Diagnostics of a covering run, useful for ablations and reports."""

    threshold: float
    demonstration_set_size: int
    uncovered_questions: int
    fallback_questions: int


class CoveringSelector(DemonstrationSelector):
    """Two-phase covering-based demonstration selection.

    Args:
        threshold_percentile: percentile of pairwise question distances used as
            the covering radius ``t`` (paper default: 8).
        threshold: explicit radius overriding the percentile rule.
        tokenizer: tokenizer used to weight demonstrations by token count in
            the Batch Covering phase.
    """

    name = "covering"
    uses_question_distances = True

    def __init__(
        self,
        num_demonstrations: int = 8,
        metric: str = "euclidean",
        seed: int = 0,
        threshold_percentile: float = DEFAULT_THRESHOLD_PERCENTILE,
        threshold: float | None = None,
        tokenizer: ApproxTokenizer | None = None,
    ) -> None:
        super().__init__(num_demonstrations=num_demonstrations, metric=metric, seed=seed)
        if not 0.0 < threshold_percentile < 100.0:
            raise ValueError("threshold_percentile must be in (0, 100)")
        if threshold is not None and threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        self.threshold_percentile = threshold_percentile
        self.threshold = threshold
        self.tokenizer = tokenizer or ApproxTokenizer()
        #: Diagnostics of the last :meth:`select` call (None before the first call).
        self.last_diagnostics: CoveringDiagnostics | None = None

    # -- threshold ----------------------------------------------------------

    def resolve_threshold(
        self,
        question_features: np.ndarray,
        question_distances: np.ndarray | None = None,
    ) -> float:
        """Compute the covering radius ``t`` from the question feature vectors.

        Args:
            question_distances: optional precomputed pairwise distance matrix
                over the question features in ``self.metric`` (the feature
                engine caches one per run); computed on demand when omitted.
        """
        if self.threshold is not None:
            return self.threshold
        features = np.asarray(question_features, dtype=float)
        if features.shape[0] < 2:
            return 1.0
        distances = question_distances
        if distances is None:
            distances = pairwise_distances(features, metric=self.metric)
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        positive = off_diagonal[off_diagonal > 0.0]
        if positive.size == 0:
            return 1.0
        return float(np.percentile(positive, self.threshold_percentile))

    # -- selection ----------------------------------------------------------

    def select(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        question_distances: np.ndarray | None = None,
    ) -> SelectionResult:
        if not pool:
            raise ValueError("the demonstration pool is empty")
        question_features = np.asarray(question_features, dtype=float)
        threshold = self.resolve_threshold(question_features, question_distances)
        distances = self._question_to_pool_distances(question_features, pool_features)
        num_questions = distances.shape[0]
        num_pool = distances.shape[1]

        # Phase 1: Demonstration Set Generation over all questions, unit weights.
        coverage = [
            frozenset(np.flatnonzero(distances[:, demo] < threshold).tolist())
            for demo in range(num_pool)
        ]
        generation = greedy_set_cover(num_questions, coverage, weights=None)
        demonstration_set = list(generation.selected)

        # Fallback: questions not coverable within t get their nearest pool demo,
        # so every question still has at least one relevant reference.
        fallback_questions = sorted(generation.uncovered_items)
        for question_index in fallback_questions:
            nearest = int(np.argmin(distances[question_index]))
            if nearest not in demonstration_set:
                demonstration_set.append(nearest)

        # Token weights for the Batch Covering phase.
        token_weights = {
            demo: max(1.0, float(self.tokenizer.count(serialize_pair(pool[demo]))))
            for demo in demonstration_set
        }

        # Phase 2: Batch Covering — per batch, cover its questions with the
        # minimum token weight subset of the demonstration set.
        per_batch: list[list[int]] = []
        for batch in batches:
            batch_questions = list(batch.indices)
            local_coverage = []
            for demo in demonstration_set:
                covered_locally = frozenset(
                    position
                    for position, question_index in enumerate(batch_questions)
                    if distances[question_index, demo] < threshold
                )
                local_coverage.append(covered_locally)
            solution = greedy_set_cover(
                len(batch_questions),
                local_coverage,
                weights=[token_weights[demo] for demo in demonstration_set],
            )
            chosen = [demonstration_set[position] for position in solution.selected]
            # Uncovered questions within the batch fall back to their nearest
            # demonstration from the generated set (cheapest feasible repair).
            for position in sorted(solution.uncovered_items):
                question_index = batch_questions[position]
                nearest_demo = min(
                    demonstration_set, key=lambda demo: distances[question_index, demo]
                )
                if nearest_demo not in chosen:
                    chosen.append(nearest_demo)
            per_batch.append(chosen)

        self.last_diagnostics = CoveringDiagnostics(
            threshold=threshold,
            demonstration_set_size=len(demonstration_set),
            uncovered_questions=len(generation.uncovered_items),
            fallback_questions=len(fallback_questions),
        )
        return self._build_result(batches, per_batch, pool)
