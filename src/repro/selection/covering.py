"""Covering-based demonstration selection (paper Sections IV-D and V).

The strategy runs in two phases, both greedy set covers (Algorithm 1):

1. **Demonstration Set Generation** (Section V-A): over *all* questions of all
   batches, select a minimal subset ``Ds`` of the unlabeled pool such that
   every question has at least one demonstration within distance ``t``.
   Weights are 1 (each selected demonstration costs one manual label), so the
   greedy rule minimises the number of labeled demonstrations.

2. **Batch Covering** (Section V-B): for each batch, select a subset of ``Ds``
   covering every question of the batch while minimising the total *token*
   weight of the chosen demonstrations, which minimises the prompt (API) cost.

The distance threshold ``t`` defaults to the paper's rule: the 8th percentile
of all pairwise question distances.  Questions that no pool demonstration can
cover within ``t`` fall back to their single nearest demonstration so that the
prompt never leaves a question without any reference.

Scaling: the coverage relation "question q is within ``t`` of demonstration
d" is all the geometry either phase needs, and a
:class:`~repro.clustering.neighbors.NeighborPlanner` decides how to obtain
it.  Small problems keep the historical dense ``(n, m)`` question-to-pool
matrix; large ones build a sparse question→pool radius graph in fixed-size
row blocks (peak memory bounded by the block size) and resolve ``t`` from a
seeded distance sample, so neither the ``(n, n)`` nor the ``(n, m)`` matrix
is ever materialised.  Both paths produce identical selections on the same
threshold and are golden-tested against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.distance import cross_distances
from repro.clustering.neighbors import (
    NeighborPlanner,
    default_planner,
    dense_percentile_radius,
)
from repro.data.schema import EntityPair
from repro.data.serialization import serialize_pair
from repro.selection.base import DemonstrationSelector, SelectionResult
from repro.selection.set_cover import greedy_set_cover
from repro.text.tokenizer import ApproxTokenizer

#: The paper's default: take the 8th percentile of pairwise question distances as t.
DEFAULT_THRESHOLD_PERCENTILE = 8.0


@dataclass(frozen=True)
class CoveringDiagnostics:
    """Diagnostics of a covering run, useful for ablations and reports."""

    threshold: float
    demonstration_set_size: int
    uncovered_questions: int
    fallback_questions: int


class CoveringSelector(DemonstrationSelector):
    """Two-phase covering-based demonstration selection.

    Args:
        threshold_percentile: percentile of pairwise question distances used as
            the covering radius ``t`` (paper default: 8).
        threshold: explicit radius overriding the percentile rule.
        tokenizer: tokenizer used to weight demonstrations by token count in
            the Batch Covering phase.
        planner: dense/sparse routing policy for the coverage geometry;
            defaults to the process-wide
            :func:`~repro.clustering.neighbors.default_planner`.
    """

    name = "covering"
    uses_question_distances = True

    def __init__(
        self,
        num_demonstrations: int = 8,
        metric: str = "euclidean",
        seed: int = 0,
        threshold_percentile: float = DEFAULT_THRESHOLD_PERCENTILE,
        threshold: float | None = None,
        tokenizer: ApproxTokenizer | None = None,
        planner: NeighborPlanner | None = None,
    ) -> None:
        super().__init__(num_demonstrations=num_demonstrations, metric=metric, seed=seed)
        if not 0.0 < threshold_percentile < 100.0:
            raise ValueError("threshold_percentile must be in (0, 100)")
        if threshold is not None and threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        self.threshold_percentile = threshold_percentile
        self.threshold = threshold
        self.tokenizer = tokenizer or ApproxTokenizer()
        self.planner = planner
        #: Diagnostics of the last :meth:`select` call (None before the first call).
        self.last_diagnostics: CoveringDiagnostics | None = None

    # -- threshold ----------------------------------------------------------

    def resolve_threshold(
        self,
        question_features: np.ndarray,
        question_distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> float:
        """Compute the covering radius ``t`` from the question feature vectors.

        Args:
            question_distances: optional precomputed pairwise distance matrix
                over the question features in ``self.metric`` (the feature
                engine caches one per run for small question sets).  When
                omitted, the planner resolves the percentile radius — exactly
                for small inputs, from a seeded distance sample for large
                ones — without materialising the ``(n, n)`` matrix.
            planner: per-call override of the routing policy.
        """
        if self.threshold is not None:
            return self.threshold
        features = np.asarray(question_features, dtype=float)
        if features.shape[0] < 2:
            return 1.0
        if question_distances is not None:
            return dense_percentile_radius(question_distances, self.threshold_percentile)
        active = planner or self.planner or default_planner()
        return active.resolve_radius(features, self.threshold_percentile, self.metric)

    # -- selection ----------------------------------------------------------

    def select(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        question_distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> SelectionResult:
        if not pool:
            raise ValueError("the demonstration pool is empty")
        question_features = np.asarray(question_features, dtype=float)
        pool_features = np.asarray(pool_features, dtype=float)
        threshold = self.resolve_threshold(
            question_features, question_distances, planner=planner
        )
        active = planner or self.planner or default_planner()
        num_questions = question_features.shape[0]
        num_pool = len(pool)
        if active.use_dense_cross(num_questions, num_pool):
            return self._select_dense(batches, question_features, pool, pool_features, threshold)
        return self._select_sparse(
            batches, question_features, pool, pool_features, threshold, active
        )

    # -- dense path (small n * m: the historical implementation) -------------

    def _select_dense(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        threshold: float,
    ) -> SelectionResult:
        distances = self._question_to_pool_distances(question_features, pool_features)
        num_questions = distances.shape[0]
        num_pool = distances.shape[1]

        # Phase 1: Demonstration Set Generation over all questions, unit weights.
        coverage = [
            frozenset(np.flatnonzero(distances[:, demo] < threshold).tolist())
            for demo in range(num_pool)
        ]
        generation = greedy_set_cover(num_questions, coverage, weights=None)
        demonstration_set = list(generation.selected)

        # Fallback: questions not coverable within t get their nearest pool demo,
        # so every question still has at least one relevant reference.
        fallback_questions = sorted(generation.uncovered_items)
        for question_index in fallback_questions:
            nearest = int(np.argmin(distances[question_index]))
            if nearest not in demonstration_set:
                demonstration_set.append(nearest)

        token_weights = self._token_weights(pool, demonstration_set)

        # Phase 2: Batch Covering — per batch, cover its questions with the
        # minimum token weight subset of the demonstration set.
        per_batch: list[list[int]] = []
        for batch in batches:
            batch_questions = list(batch.indices)
            local_coverage = []
            for demo in demonstration_set:
                covered_locally = frozenset(
                    position
                    for position, question_index in enumerate(batch_questions)
                    if distances[question_index, demo] < threshold
                )
                local_coverage.append(covered_locally)
            solution = greedy_set_cover(
                len(batch_questions),
                local_coverage,
                weights=[token_weights[demo] for demo in demonstration_set],
            )
            chosen = [demonstration_set[position] for position in solution.selected]
            # Uncovered questions within the batch fall back to their nearest
            # demonstration from the generated set (cheapest feasible repair).
            for position in sorted(solution.uncovered_items):
                question_index = batch_questions[position]
                nearest_demo = min(
                    demonstration_set, key=lambda demo: distances[question_index, demo]
                )
                if nearest_demo not in chosen:
                    chosen.append(nearest_demo)
            per_batch.append(chosen)

        self.last_diagnostics = CoveringDiagnostics(
            threshold=threshold,
            demonstration_set_size=len(demonstration_set),
            uncovered_questions=len(generation.uncovered_items),
            fallback_questions=len(fallback_questions),
        )
        return self._build_result(batches, per_batch, pool)

    # -- sparse path (blocked radius joins, no dense matrices) ---------------

    def _select_sparse(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        threshold: float,
        planner: NeighborPlanner,
    ) -> SelectionResult:
        num_questions = question_features.shape[0]
        num_pool = len(pool)
        # One blocked pass over the question-to-pool geometry yields both the
        # strict-radius coverage graph and each question's nearest pool
        # demonstration (the phase-1 fallback rule).
        graph, nearest = planner.cross_graph(
            question_features,
            pool_features,
            threshold,
            metric=self.metric,
            inclusive=False,
            return_nearest=True,
        )
        assert nearest is not None

        # Phase 1 over the transposed graph: demo -> covered questions.
        by_demo = graph.transpose()
        coverage = [
            frozenset(by_demo.neighbors(demo).tolist()) for demo in range(num_pool)
        ]
        generation = greedy_set_cover(num_questions, coverage, weights=None)
        demonstration_set = list(generation.selected)

        fallback_questions = sorted(generation.uncovered_items)
        for question_index in fallback_questions:
            nearest_demo = int(nearest[question_index])
            if nearest_demo not in demonstration_set:
                demonstration_set.append(nearest_demo)

        token_weights = self._token_weights(pool, demonstration_set)

        # Phase 2 reads the same graph: a question's covering demos are its
        # graph neighbours, intersected with the demonstration set.
        demo_lookup = set(demonstration_set)
        covering_demos: dict[int, set[int]] = {}
        for batch in batches:
            for question_index in batch.indices:
                if question_index not in covering_demos:
                    covering_demos[question_index] = demo_lookup.intersection(
                        graph.neighbors(question_index).tolist()
                    )

        per_batch: list[list[int]] = []
        for batch in batches:
            batch_questions = list(batch.indices)
            positions_by_demo: dict[int, list[int]] = {}
            for position, question_index in enumerate(batch_questions):
                for demo in covering_demos[question_index]:
                    positions_by_demo.setdefault(demo, []).append(position)
            local_coverage = [
                frozenset(positions_by_demo.get(demo, ()))
                for demo in demonstration_set
            ]
            solution = greedy_set_cover(
                len(batch_questions),
                local_coverage,
                weights=[token_weights[demo] for demo in demonstration_set],
            )
            chosen = [demonstration_set[position] for position in solution.selected]
            for position in sorted(solution.uncovered_items):
                question_index = batch_questions[position]
                # One (1, |Ds|) distance row on demand — cheaper than keeping
                # the full matrix for the rare fallback questions.  Ordering
                # by demonstration_set keeps the first-minimum tie-break of
                # the dense path's ``min``.
                row = cross_distances(
                    question_features[question_index : question_index + 1],
                    pool_features[demonstration_set],
                    metric=self.metric,
                )[0]
                nearest_demo = demonstration_set[int(np.argmin(row))]
                if nearest_demo not in chosen:
                    chosen.append(nearest_demo)
            per_batch.append(chosen)

        self.last_diagnostics = CoveringDiagnostics(
            threshold=threshold,
            demonstration_set_size=len(demonstration_set),
            uncovered_questions=len(generation.uncovered_items),
            fallback_questions=len(fallback_questions),
        )
        return self._build_result(batches, per_batch, pool)

    # -- shared helpers ------------------------------------------------------

    def _token_weights(
        self, pool: Sequence[EntityPair], demonstration_set: Sequence[int]
    ) -> dict[int, float]:
        """Token weights of the generated set for the Batch Covering phase."""
        return {
            demo: max(1.0, float(self.tokenizer.count(serialize_pair(pool[demo]))))
            for demo in demonstration_set
        }
