"""Greedy (weighted) set cover — Algorithm 1 of the paper.

Both covering sub-problems are instances of weighted set cover:

* **Demonstration Set Generation** — items are all questions, candidate sets
  are pool demonstrations (each covering the questions within distance ``t``),
  weights are all 1; minimise the number of labeled demonstrations.
* **Batch Covering** — items are the questions of one batch, candidates are the
  demonstrations of the generated set, weights are token counts; minimise the
  prompt token cost.

The greedy rule picks, at each step, the candidate maximising
``(newly covered items) / weight``, which yields the classic ``H_k``
approximation guarantee cited by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SetCoverSolution:
    """Outcome of a greedy set cover run.

    Attributes:
        selected: indices of the chosen candidate sets, in selection order.
        covered_items: items covered by the selection.
        uncovered_items: items that no candidate could cover at all.
        total_weight: sum of weights of the selected candidates.
    """

    selected: tuple[int, ...]
    covered_items: frozenset[int]
    uncovered_items: frozenset[int]
    total_weight: float


def coverage_value(selected_coverage: Sequence[frozenset[int] | set[int]]) -> int:
    """Value function ``f_Q(Ds)`` of Algorithm 1: number of covered questions."""
    covered: set[int] = set()
    for cover in selected_coverage:
        covered |= set(cover)
    return len(covered)


def greedy_set_cover(
    num_items: int,
    coverage: Sequence[frozenset[int] | set[int]],
    weights: Sequence[float] | None = None,
) -> SetCoverSolution:
    """Greedy weighted set cover.

    Args:
        num_items: number of items (questions) to cover; items are
            ``0 .. num_items - 1``.
        coverage: for every candidate (demonstration), the set of item indices
            it covers.
        weights: positive weight per candidate; defaults to unit weights.

    Returns:
        The greedy solution.  Items that appear in no candidate's coverage are
        reported as ``uncovered_items`` rather than raising, because in the ER
        pipeline an uncoverable question simply falls back to nearest-neighbour
        demonstrations.

    Raises:
        ValueError: if weights are non-positive or the lengths disagree.
    """
    if weights is None:
        weights = [1.0] * len(coverage)
    if len(weights) != len(coverage):
        raise ValueError(
            f"coverage has {len(coverage)} candidates but weights has {len(weights)}"
        )
    if any(weight <= 0.0 for weight in weights):
        raise ValueError("all candidate weights must be positive")

    universe = set(range(num_items))
    coverable = set()
    candidate_sets = [set(cover) & universe for cover in coverage]
    for candidate in candidate_sets:
        coverable |= candidate
    uncoverable = universe - coverable

    uncovered = set(coverable)
    selected: list[int] = []
    remaining_candidates = set(range(len(candidate_sets)))
    total_weight = 0.0

    while uncovered and remaining_candidates:
        best_candidate = -1
        best_efficiency = 0.0
        best_gain = 0
        for candidate in remaining_candidates:
            gain = len(candidate_sets[candidate] & uncovered)
            if gain == 0:
                continue
            efficiency = gain / weights[candidate]
            if efficiency > best_efficiency or (
                efficiency == best_efficiency and gain > best_gain
            ):
                best_candidate = candidate
                best_efficiency = efficiency
                best_gain = gain
        if best_candidate < 0:
            break
        selected.append(best_candidate)
        remaining_candidates.discard(best_candidate)
        uncovered -= candidate_sets[best_candidate]
        total_weight += float(weights[best_candidate])

    covered = coverable - uncovered
    return SetCoverSolution(
        selected=tuple(selected),
        covered_items=frozenset(covered),
        uncovered_items=frozenset(uncoverable | uncovered),
        total_weight=total_weight,
    )
