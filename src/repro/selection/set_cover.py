"""Greedy (weighted) set cover — Algorithm 1 of the paper.

Both covering sub-problems are instances of weighted set cover:

* **Demonstration Set Generation** — items are all questions, candidate sets
  are pool demonstrations (each covering the questions within distance ``t``),
  weights are all 1; minimise the number of labeled demonstrations.
* **Batch Covering** — items are the questions of one batch, candidates are the
  demonstrations of the generated set, weights are token counts; minimise the
  prompt token cost.

The greedy rule picks, at each step, the candidate maximising
``(newly covered items) / weight``, which yields the classic ``H_k``
approximation guarantee cited by the paper.  Ties on ``(efficiency, gain)``
resolve deterministically to the lowest candidate index.

Two implementations of the same rule are provided:

* :func:`greedy_set_cover` — the default **lazy-greedy (CELF-style)**
  implementation.  Gains are kept in a max-heap and only re-evaluated when a
  candidate reaches the top with a stale value; because gains are
  non-increasing as the uncovered set shrinks (submodularity), a fresh
  heap-top is provably the global greedy choice — including its tie-break —
  so the selection sequence is identical to the eager scan while skipping
  the re-scan of candidates whose gain cannot have changed.
* :func:`greedy_set_cover_eager` — the straightforward every-round re-scan,
  kept as the equivalence oracle for tests and benchmarks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SetCoverSolution:
    """Outcome of a greedy set cover run.

    Attributes:
        selected: indices of the chosen candidate sets, in selection order.
        covered_items: items covered by the selection.
        uncovered_items: items that no candidate could cover at all.
        total_weight: sum of weights of the selected candidates.
    """

    selected: tuple[int, ...]
    covered_items: frozenset[int]
    uncovered_items: frozenset[int]
    total_weight: float


def coverage_value(selected_coverage: Sequence[frozenset[int] | set[int]]) -> int:
    """Value function ``f_Q(Ds)`` of Algorithm 1: number of covered questions."""
    covered: set[int] = set()
    for cover in selected_coverage:
        covered |= set(cover)
    return len(covered)


def _prepare(
    num_items: int,
    coverage: Sequence[frozenset[int] | set[int]],
    weights: Sequence[float] | None,
) -> tuple[Sequence[float], list[set[int]], set[int], set[int]]:
    """Shared validation and instance set-up of both implementations."""
    if weights is None:
        weights = [1.0] * len(coverage)
    if len(weights) != len(coverage):
        raise ValueError(
            f"coverage has {len(coverage)} candidates but weights has {len(weights)}"
        )
    if any(weight <= 0.0 for weight in weights):
        raise ValueError("all candidate weights must be positive")
    universe = set(range(num_items))
    coverable: set[int] = set()
    candidate_sets = [set(cover) & universe for cover in coverage]
    for candidate in candidate_sets:
        coverable |= candidate
    return weights, candidate_sets, coverable, universe - coverable


def greedy_set_cover(
    num_items: int,
    coverage: Sequence[frozenset[int] | set[int]],
    weights: Sequence[float] | None = None,
) -> SetCoverSolution:
    """Lazy-greedy (CELF-style) weighted set cover.

    Args:
        num_items: number of items (questions) to cover; items are
            ``0 .. num_items - 1``.
        coverage: for every candidate (demonstration), the set of item indices
            it covers.
        weights: positive weight per candidate; defaults to unit weights.

    Returns:
        The greedy solution — selection-for-selection identical to
        :func:`greedy_set_cover_eager`, including the deterministic
        lowest-index tie-break.  Items that appear in no candidate's coverage
        are reported as ``uncovered_items`` rather than raising, because in
        the ER pipeline an uncoverable question simply falls back to
        nearest-neighbour demonstrations.

    Raises:
        ValueError: if weights are non-positive or the lengths disagree.
    """
    weights, candidate_sets, coverable, uncoverable = _prepare(
        num_items, coverage, weights
    )
    uncovered = set(coverable)
    selected: list[int] = []
    total_weight = 0.0

    # Max-heap of (-efficiency, -gain, index): popping yields the candidate
    # that is best under (efficiency desc, gain desc, index asc) — exactly
    # the eager scan's selection rule.  ``stamp[i]`` records how many
    # selections had been made when candidate i's gain was last computed; a
    # popped entry is trusted only if nothing was selected since.
    heap: list[tuple[float, int, int]] = []
    stamp = [0] * len(candidate_sets)
    for index, candidate in enumerate(candidate_sets):
        gain = len(candidate)
        if gain:
            heap.append((-gain / weights[index], -gain, index))
    heapq.heapify(heap)

    rounds = 0
    while uncovered and heap:
        _, _, index = heapq.heappop(heap)
        if stamp[index] == rounds:
            # Fresh value: stale entries are upper bounds (gains only shrink
            # as ``uncovered`` shrinks), so a fresh top beats everything
            # still in the heap — select it.
            selected.append(index)
            uncovered -= candidate_sets[index]
            total_weight += float(weights[index])
            rounds += 1
        else:
            gain = len(candidate_sets[index] & uncovered)
            stamp[index] = rounds
            if gain:
                heapq.heappush(heap, (-gain / weights[index], -gain, index))

    covered = coverable - uncovered
    return SetCoverSolution(
        selected=tuple(selected),
        covered_items=frozenset(covered),
        uncovered_items=frozenset(uncoverable | uncovered),
        total_weight=total_weight,
    )


def greedy_set_cover_eager(
    num_items: int,
    coverage: Sequence[frozenset[int] | set[int]],
    weights: Sequence[float] | None = None,
) -> SetCoverSolution:
    """Eager greedy weighted set cover (the re-scan-every-round oracle).

    Recomputes every remaining candidate's gain each round.  Kept as the
    reference implementation :func:`greedy_set_cover` is verified against;
    prefer the lazy version everywhere else — it returns identical solutions.
    """
    weights, candidate_sets, coverable, uncoverable = _prepare(
        num_items, coverage, weights
    )
    uncovered = set(coverable)
    selected: list[int] = []
    remaining_candidates = list(range(len(candidate_sets)))
    total_weight = 0.0

    while uncovered and remaining_candidates:
        best_candidate = -1
        best_efficiency = 0.0
        best_gain = 0
        # Candidates are scanned in ascending index order and only a strict
        # improvement replaces the incumbent, so ties on (efficiency, gain)
        # deterministically resolve to the lowest candidate index.
        for candidate in remaining_candidates:
            gain = len(candidate_sets[candidate] & uncovered)
            if gain == 0:
                continue
            efficiency = gain / weights[candidate]
            if efficiency > best_efficiency or (
                efficiency == best_efficiency and gain > best_gain
            ):
                best_candidate = candidate
                best_efficiency = efficiency
                best_gain = gain
        if best_candidate < 0:
            break
        selected.append(best_candidate)
        remaining_candidates.remove(best_candidate)
        uncovered -= candidate_sets[best_candidate]
        total_weight += float(weights[best_candidate])

    covered = coverable - uncovered
    return SetCoverSolution(
        selected=tuple(selected),
        covered_items=frozenset(covered),
        uncovered_items=frozenset(uncoverable | uncovered),
        total_weight=total_weight,
    )
