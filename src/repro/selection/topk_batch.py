"""Top-k-batch demonstration selection (paper Section IV-B).

The relevance of a demonstration ``d`` to a batch ``B`` is defined as
``dist*(B, d) = min_{q in B} dist(q, d)`` (Eq. 6); the selector picks the ``K``
pool demonstrations with the smallest ``dist*`` per batch.  Labeling cost grows
with the number of batches because different batches tend to pick different
demonstrations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair
from repro.selection.base import DemonstrationSelector, SelectionResult


class TopKBatchSelector(DemonstrationSelector):
    """Select the K pool demonstrations nearest to each batch as a whole."""

    name = "topk-batch"

    def select(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        question_distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> SelectionResult:
        if not pool:
            raise ValueError("the demonstration pool is empty")
        distances = self._question_to_pool_distances(question_features, pool_features)
        count = min(self.num_demonstrations, len(pool))

        per_batch: list[list[int]] = []
        for batch in batches:
            batch_rows = distances[list(batch.indices), :]
            # Eq. 6: relevance of each pool demo to the batch is its distance to
            # the closest question of the batch.
            batch_to_pool = batch_rows.min(axis=0)
            nearest = np.argsort(batch_to_pool, kind="stable")[:count]
            per_batch.append([int(index) for index in nearest])
        return self._build_result(batches, per_batch, pool)
