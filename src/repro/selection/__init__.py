"""Demonstration selection strategies (paper Section IV, Table I).

Given the question batches and an unlabeled demonstration pool, a selector
chooses which pool pairs to (manually) label and which labeled demonstrations
to attach to each batch prompt.  Four strategies are provided:

* :class:`FixedDemonstrationSelector` — one random set of K demos reused for
  every batch;
* :class:`TopKBatchSelector` — the K pool pairs closest to the batch (minimum
  distance to any question in the batch);
* :class:`TopKQuestionSelector` — the k nearest pool pairs of *each* question,
  unioned per batch;
* :class:`CoveringSelector` — the paper's proposal: a greedy set cover first
  generates a minimal demonstration set covering all questions, then a greedy
  weighted (token-cost) set cover allocates demonstrations to each batch.
"""

from repro.selection.base import BatchDemonstrations, DemonstrationSelector, SelectionResult
from repro.selection.fixed import FixedDemonstrationSelector
from repro.selection.topk_batch import TopKBatchSelector
from repro.selection.topk_question import TopKQuestionSelector
from repro.selection.covering import CoveringSelector
from repro.selection.set_cover import (
    coverage_value,
    greedy_set_cover,
    greedy_set_cover_eager,
)
from repro.selection.factory import create_selector

__all__ = [
    "BatchDemonstrations",
    "CoveringSelector",
    "DemonstrationSelector",
    "FixedDemonstrationSelector",
    "SelectionResult",
    "TopKBatchSelector",
    "TopKQuestionSelector",
    "coverage_value",
    "create_selector",
    "greedy_set_cover",
    "greedy_set_cover_eager",
]
