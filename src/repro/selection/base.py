"""Demonstration selection base types.

A selector receives the question batches, the unlabeled demonstration pool and
feature vectors for both, and returns per-batch demonstration lists.  Selecting
a pool pair implies *manually labeling* it (paper Section II-C), so the result
also reports the distinct pool indices that were labeled — the labeling cost is
proportional to that count, and a demonstration labeled once can be reused by
many batches for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.batching.base import QuestionBatch
from repro.clustering.distance import cross_distances
from repro.clustering.neighbors import NeighborPlanner
from repro.data.schema import EntityPair


@dataclass(frozen=True)
class BatchDemonstrations:
    """The labeled demonstrations attached to one batch prompt."""

    batch_id: int
    pool_indices: tuple[int, ...]
    demonstrations: tuple[EntityPair, ...]

    def __len__(self) -> int:
        return len(self.demonstrations)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of demonstration selection over all batches.

    Attributes:
        per_batch: demonstrations per batch, aligned with the batch list.
        labeled_pool_indices: distinct pool indices whose gold label had to be
            acquired (the basis of the labeling cost).
    """

    per_batch: tuple[BatchDemonstrations, ...]
    labeled_pool_indices: frozenset[int] = field(default_factory=frozenset)

    @property
    def num_labeled(self) -> int:
        """Number of distinct demonstrations that were manually labeled."""
        return len(self.labeled_pool_indices)

    def demonstrations_for(self, batch_id: int) -> BatchDemonstrations:
        """Return the demonstrations selected for ``batch_id``.

        Raises:
            KeyError: if no demonstrations were selected for that batch.
        """
        for batch_demos in self.per_batch:
            if batch_demos.batch_id == batch_id:
                return batch_demos
        raise KeyError(f"no demonstrations selected for batch {batch_id}")


class DemonstrationSelector(ABC):
    """Base class for demonstration selection strategies.

    Args:
        num_demonstrations: the per-batch demonstration budget ``K`` (the paper
            uses 8 for the fixed / top-k strategies).
        metric: distance metric between feature vectors (paper: Euclidean).
        seed: RNG seed for randomised choices.
    """

    #: Strategy name used in configuration and reports.
    name: str = "selector"

    #: Whether :meth:`select` consumes the pairwise question-distance matrix
    #: (the covering strategy's threshold rule); the pipeline only fetches the
    #: engine-cached matrix for strategies that read it.
    uses_question_distances: bool = False

    def __init__(
        self, num_demonstrations: int = 8, metric: str = "euclidean", seed: int = 0
    ) -> None:
        if num_demonstrations < 1:
            raise ValueError(f"num_demonstrations must be >= 1, got {num_demonstrations}")
        self.num_demonstrations = num_demonstrations
        self.metric = metric
        self.seed = seed

    @abstractmethod
    def select(
        self,
        batches: Sequence[QuestionBatch],
        question_features: np.ndarray,
        pool: Sequence[EntityPair],
        pool_features: np.ndarray,
        question_distances: np.ndarray | None = None,
        planner: NeighborPlanner | None = None,
    ) -> SelectionResult:
        """Select demonstrations for every batch.

        Args:
            batches: the question batches produced by a batcher.
            question_features: ``(num_questions, d)`` feature matrix indexed by
                the *original question indices* used in the batches.
            pool: the unlabeled demonstration pool (gold labels are present on
                the pairs but conceptually hidden until selected).
            pool_features: ``(len(pool), d)`` feature matrix of the pool.
            question_distances: optional precomputed pairwise distance matrix
                over ``question_features`` in this selector's ``metric`` (the
                feature engine caches one for small question sets); only
                strategies with :attr:`uses_question_distances` read it.
            planner: optional dense/sparse routing policy
                (:class:`~repro.clustering.neighbors.NeighborPlanner`);
                strategies that can plan over sparse neighbor graphs (the
                covering strategy) use it to avoid dense distance matrices on
                large inputs, the rest ignore it.
        """

    # -- shared helpers ----------------------------------------------------

    def _question_to_pool_distances(
        self, question_features: np.ndarray, pool_features: np.ndarray
    ) -> np.ndarray:
        """Distance matrix between every question and every pool demonstration."""
        return cross_distances(
            np.asarray(question_features, dtype=float),
            np.asarray(pool_features, dtype=float),
            metric=self.metric,
        )

    def _annotate(self, pool: Sequence[EntityPair], index: int) -> EntityPair:
        """Simulate manual annotation of pool pair ``index``.

        The synthetic pool already stores gold labels, so annotation simply
        keeps the labeled pair; the *cost* of doing so is accounted by the
        caller via :attr:`SelectionResult.labeled_pool_indices`.
        """
        pair = pool[index]
        if pair.is_labeled:
            return pair
        raise ValueError(
            f"pool pair {pair.pair_id!r} has no gold label to reveal; the "
            "demonstration pool must be built from the labeled train split"
        )

    def _build_result(
        self,
        batches: Sequence[QuestionBatch],
        per_batch_indices: Sequence[Sequence[int]],
        pool: Sequence[EntityPair],
    ) -> SelectionResult:
        """Assemble a :class:`SelectionResult` from per-batch pool indices."""
        if len(per_batch_indices) != len(batches):
            raise ValueError(
                f"expected demonstrations for {len(batches)} batches, got "
                f"{len(per_batch_indices)}"
            )
        labeled: set[int] = set()
        per_batch = []
        for batch, indices in zip(batches, per_batch_indices):
            unique_indices = tuple(dict.fromkeys(indices))
            labeled.update(unique_indices)
            per_batch.append(
                BatchDemonstrations(
                    batch_id=batch.batch_id,
                    pool_indices=unique_indices,
                    demonstrations=tuple(
                        self._annotate(pool, index) for index in unique_indices
                    ),
                )
            )
        return SelectionResult(
            per_batch=tuple(per_batch), labeled_pool_indices=frozenset(labeled)
        )
