"""Per-model API pricing (paper Section VI-A, "Monetary Cost").

Prices are quoted in dollars per 1K tokens, separately for prompt (input) and
completion (output) tokens.  The values mirror the OpenAI pricing the paper
cites: GPT-4 input tokens cost roughly 10x GPT-3.5 input tokens, which is what
drives the Exp-5 (Table VI) cost column; the open-source Llama2 is priced at a
nominal self-hosting rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.base import UsageTracker


@dataclass(frozen=True)
class ModelPricing:
    """Dollar price per 1K prompt / completion tokens for one model."""

    model: str
    prompt_price_per_1k: float
    completion_price_per_1k: float

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Dollar cost of a call with the given token counts."""
        return (
            prompt_tokens * self.prompt_price_per_1k
            + completion_tokens * self.completion_price_per_1k
        ) / 1000.0


PRICING_TABLE: dict[str, ModelPricing] = {
    "gpt-3.5-03": ModelPricing("gpt-3.5-03", prompt_price_per_1k=0.001, completion_price_per_1k=0.002),
    "gpt-3.5-06": ModelPricing("gpt-3.5-06", prompt_price_per_1k=0.001, completion_price_per_1k=0.002),
    "gpt-4": ModelPricing("gpt-4", prompt_price_per_1k=0.01, completion_price_per_1k=0.03),
    "llama2-70b": ModelPricing("llama2-70b", prompt_price_per_1k=0.0007, completion_price_per_1k=0.0009),
}
"""Pricing registry keyed by the short model names used throughout the repo."""


def get_pricing(model: str) -> ModelPricing:
    """Look up the pricing entry of a model.

    Raises:
        KeyError: if the model has no pricing entry.
    """
    key = model.strip().lower()
    if key not in PRICING_TABLE:
        known = ", ".join(sorted(PRICING_TABLE))
        raise KeyError(f"no pricing for model {model!r}; expected one of: {known}")
    return PRICING_TABLE[key]


def prompt_cost(model: str, prompt_tokens: int, completion_tokens: int = 0) -> float:
    """Dollar cost of one call for ``model`` with the given token counts."""
    return get_pricing(model).cost(prompt_tokens, completion_tokens)


def usage_cost(model: str, usage: UsageTracker) -> float:
    """Dollar cost of all calls accumulated in ``usage`` for ``model``."""
    return get_pricing(model).cost(usage.prompt_tokens, usage.completion_tokens)
