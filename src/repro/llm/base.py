"""LLM client interface and usage accounting."""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.text.tokenizer import ApproxTokenizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.llm.executors import ExecutionBackend


@dataclass(frozen=True)
class LLMResponse:
    """One completion returned by an LLM client."""

    text: str
    model: str
    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion token count."""
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class UsageRecord:
    """Token usage of a single LLM call."""

    model: str
    prompt_tokens: int
    completion_tokens: int


@dataclass
class UsageTracker:
    """Accumulates token usage across LLM calls (the basis of the API cost).

    Only running totals are kept — constant memory regardless of how many
    calls a long-lived serving session makes.  Recording is thread-safe so
    that concurrent execution backends can share one tracker; totals are
    order-independent sums, which keeps costs deterministic regardless of
    call completion order.
    """

    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _num_calls: int = 0
    _prompt_tokens: int = 0
    _completion_tokens: int = 0

    def add(self, record: UsageRecord) -> None:
        """Record the usage of one call."""
        with self._lock:
            self._num_calls += 1
            self._prompt_tokens += record.prompt_tokens
            self._completion_tokens += record.completion_tokens

    @property
    def num_calls(self) -> int:
        """Number of LLM calls recorded."""
        return self._num_calls

    @property
    def prompt_tokens(self) -> int:
        """Total prompt tokens across all recorded calls."""
        return self._prompt_tokens

    @property
    def completion_tokens(self) -> int:
        """Total completion tokens across all recorded calls."""
        return self._completion_tokens

    @property
    def total_tokens(self) -> int:
        """Total tokens (prompt + completion) across all recorded calls."""
        return self.prompt_tokens + self.completion_tokens

    def add_totals(
        self, num_calls: int, prompt_tokens: int, completion_tokens: int
    ) -> None:
        """Record pre-aggregated usage (e.g. replayed from a run checkpoint).

        The run engine accounts resumed shards from their persisted per-batch
        usage rather than from live calls; folding those aggregates in through
        the same tracker keeps cost reporting identical whether the tokens
        were spent in this process or a crashed one.
        """
        if min(num_calls, prompt_tokens, completion_tokens) < 0:
            raise ValueError("usage totals must be >= 0")
        with self._lock:
            self._num_calls += num_calls
            self._prompt_tokens += prompt_tokens
            self._completion_tokens += completion_tokens

    def reset(self) -> None:
        """Forget all recorded usage."""
        with self._lock:
            self._num_calls = 0
            self._prompt_tokens = 0
            self._completion_tokens = 0


class LLMClient(ABC):
    """Base class for LLM clients.

    Subclasses implement :meth:`_generate`; the public :meth:`complete` wraps it
    with token counting and usage tracking so that every client, simulated or
    real, is priced identically.
    """

    def __init__(self, model_name: str, tokenizer: ApproxTokenizer | None = None) -> None:
        self.model_name = model_name
        self.tokenizer = tokenizer or ApproxTokenizer()
        self.usage = UsageTracker()
        self._completion_observers: list[Callable[[LLMResponse, float], None]] = []

    @abstractmethod
    def _generate(self, prompt_text: str) -> str:
        """Produce the completion text for ``prompt_text``."""

    def add_completion_observer(
        self, observer: Callable[["LLMResponse", float], None]
    ) -> None:
        """Register a per-call observer: ``observer(response, seconds)``.

        Observers see every completed call with its wall-clock latency — the
        seam the observability layer uses to record per-engine latency
        histograms and token counters.  Observation must not alter the
        response; with no observers registered the per-call overhead is one
        clock read and a truthiness check.
        """
        self._completion_observers.append(observer)

    def remove_completion_observer(
        self, observer: Callable[["LLMResponse", float], None]
    ) -> None:
        """Unregister a previously added completion observer."""
        self._completion_observers.remove(observer)

    def _notify_completion(self, response: "LLMResponse", seconds: float) -> None:
        """Fan one completed call out to the registered observers."""
        for observer in self._completion_observers:
            observer(response, seconds)

    def complete(self, prompt_text: str) -> LLMResponse:
        """Run one completion and record its token usage."""
        started = time.perf_counter()
        completion_text = self._generate(prompt_text)
        response = LLMResponse(
            text=completion_text,
            model=self.model_name,
            prompt_tokens=self.tokenizer.count(prompt_text),
            completion_tokens=self.tokenizer.count(completion_text),
        )
        self.usage.add(
            UsageRecord(
                model=self.model_name,
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
            )
        )
        if self._completion_observers:
            self._notify_completion(response, time.perf_counter() - started)
        return response

    def complete_many(
        self,
        prompt_texts: Sequence[str],
        executor: "ExecutionBackend | None" = None,
    ) -> list[LLMResponse]:
        """Run one completion per prompt and return responses in prompt order.

        The prompts are independent, so an execution backend may dispatch them
        concurrently; results are always aligned with ``prompt_texts`` so
        callers observe the same ordering regardless of the backend.

        Args:
            executor: optional :class:`~repro.llm.executors.ExecutionBackend`;
                ``None`` completes the prompts serially on the calling thread.
        """
        if executor is None:
            return [self.complete(text) for text in prompt_texts]
        return executor.map_completions(self, prompt_texts)

    def reset_usage(self) -> None:
        """Clear the accumulated usage (e.g. between experiment runs)."""
        self.usage.reset()
