"""LLM substrate: client interface, usage accounting, pricing and simulated models.

The paper interfaces proprietary LLM APIs (GPT-3.5-03, GPT-3.5-06, GPT-4) and
an open-source model (Llama2-chat-70B).  Offline we substitute
:class:`repro.llm.simulated.SimulatedLLM`, a behavioural model of an in-context
learner for ER: it reads the *actual prompt text*, forms a noisy internal
similarity judgement per question, calibrates its decision threshold from the
in-context demonstrations and from the other questions in the batch, and
answers in natural language that must be parsed back.  Model profiles differ in
perception noise, calibration skill, batch competence and pricing — see
DESIGN.md for why this substitution preserves the experiments' shape.

All clients honour the same :class:`repro.llm.base.LLMClient` interface, so a
real API-backed client could be dropped in without touching the framework.
Independent prompts can be dispatched through
:meth:`~repro.llm.base.LLMClient.complete_many` with an execution backend
(:mod:`repro.llm.executors`) — serial by default, thread-pooled when a
:class:`~repro.llm.executors.ConcurrentExecutor` is supplied.
"""

from repro.llm.base import LLMClient, LLMResponse, UsageRecord, UsageTracker
from repro.llm.executors import (
    AsyncExecutor,
    ConcurrentExecutor,
    ExecutionBackend,
    SerialExecutor,
    create_executor,
)
from repro.llm.pricing import ModelPricing, get_pricing, prompt_cost
from repro.llm.profiles import ModelProfile, get_profile, available_models
from repro.llm.simulated import SimulatedLLM
from repro.llm.registry import create_llm

__all__ = [
    "AsyncExecutor",
    "ConcurrentExecutor",
    "ExecutionBackend",
    "LLMClient",
    "LLMResponse",
    "ModelPricing",
    "ModelProfile",
    "SerialExecutor",
    "SimulatedLLM",
    "UsageRecord",
    "UsageTracker",
    "available_models",
    "create_executor",
    "create_llm",
    "get_pricing",
    "get_profile",
    "prompt_cost",
]
