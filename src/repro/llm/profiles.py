"""Behavioural profiles of the simulated LLMs.

Each profile parameterises the :class:`repro.llm.simulated.SimulatedLLM`
behavioural model:

* ``perception_noise`` — standard deviation of the Gaussian noise added to the
  model's internal similarity judgement of a question (lower = more capable);
* ``base_threshold`` — the decision threshold the model falls back to when the
  in-context demonstrations give it no calibration signal (a generic, slightly
  dataset-miscalibrated prior);
* ``calibration_skill`` — how strongly the model exploits relevant
  demonstrations to re-estimate the decision threshold (the essence of ICL);
* ``batch_gain`` — how much the model benefits from contrasting multiple
  questions inside one batch (cross-question calibration and noise reduction);
* ``batch_failure_rate`` — probability of failing to produce usable output for
  a multi-question prompt (Llama2 is reported by the paper to fail at batch
  prompting most of the time);
* ``herding_probability`` — probability of collapsing to identical answers when
  all questions in a batch look nearly identical (the failure mode the paper
  observes for similarity-based batching).

The relative ordering of the profiles reproduces the paper's Table VI:
GPT-4 > GPT-3.5-03 > GPT-3.5-06 in accuracy, GPT-4 ~10x more expensive,
Llama2 unusable for batch prompting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Static behavioural description of one simulated LLM."""

    name: str
    perception_noise: float
    base_threshold: float
    calibration_skill: float
    batch_gain: float
    batch_failure_rate: float = 0.0
    herding_probability: float = 0.35
    relevance_radius: float = 0.45
    max_context_tokens: int = 4096


PROFILES: dict[str, ModelProfile] = {
    "gpt-3.5-03": ModelProfile(
        name="gpt-3.5-03",
        perception_noise=0.070,
        base_threshold=0.74,
        calibration_skill=0.80,
        batch_gain=0.55,
        max_context_tokens=4096,
    ),
    "gpt-3.5-06": ModelProfile(
        name="gpt-3.5-06",
        perception_noise=0.110,
        base_threshold=0.67,
        calibration_skill=0.60,
        batch_gain=0.45,
        max_context_tokens=4096,
    ),
    "gpt-4": ModelProfile(
        name="gpt-4",
        perception_noise=0.045,
        base_threshold=0.75,
        calibration_skill=0.92,
        batch_gain=0.60,
        max_context_tokens=8192,
    ),
    "llama2-70b": ModelProfile(
        name="llama2-70b",
        perception_noise=0.150,
        base_threshold=0.69,
        calibration_skill=0.45,
        batch_gain=0.20,
        batch_failure_rate=0.9,
        max_context_tokens=4096,
    ),
}
"""Profile registry keyed by the short model names used throughout the repo."""


def available_models() -> tuple[str, ...]:
    """Return the names of all simulated model profiles."""
    return tuple(sorted(PROFILES))


def get_profile(model: str) -> ModelProfile:
    """Look up the behavioural profile of a model.

    Raises:
        KeyError: if the model has no profile.
    """
    key = model.strip().lower()
    if key not in PROFILES:
        known = ", ".join(available_models())
        raise KeyError(f"no profile for model {model!r}; expected one of: {known}")
    return PROFILES[key]
