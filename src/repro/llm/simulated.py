"""Simulated in-context-learning LLM for entity resolution.

This is the offline substitute for the proprietary LLM APIs the paper calls
(see DESIGN.md).  The simulation is *behavioural*: the model reads the actual
prompt text, and its accuracy depends on the same factors that drive a real
LLM's accuracy in the paper's experiments —

* **perception**: each question is judged by a noisy internal similarity score
  over the attribute values of the two entities (weighted towards the worst
  matching attribute, because identifiers and model numbers are what
  distinguish hard non-matches);
* **demonstration calibration** (ICL): demonstrations that are *relevant* to a
  question (nearby in per-attribute-similarity space) let the model re-estimate
  its decision threshold; irrelevant demonstrations leave it with a generic,
  mildly miscalibrated prior;
* **batch context**: when a prompt contains several questions with *contrasting*
  similarity levels, the model calibrates its threshold against that contrast
  and becomes less noisy (higher precision) — the mechanism the paper credits
  for batch prompting's accuracy gains.  Conversely, a batch of near-identical
  questions can make the model collapse to identical answers (the failure mode
  of similarity-based batching);
* **capability profile**: noise, calibration skill, batch competence and batch
  failure rate are per-model (:mod:`repro.llm.profiles`).

Every decision is driven by RNGs seeded from the model name, the client seed
and the question content, so the whole benchmark suite is reproducible.
"""

from __future__ import annotations

import hashlib
import math
import random

import numpy as np

from repro.llm.base import LLMClient
from repro.llm.comprehension import ReadDemonstration, ReadPair, read_prompt
from repro.llm.profiles import ModelProfile, get_profile
from repro.text.similarity import levenshtein_ratio
from repro.text.tokenizer import ApproxTokenizer

#: Weight of the mean attribute similarity in the internal score.
MEAN_WEIGHT = 0.6
#: Weight of the minimum attribute similarity in the internal score.
MIN_WEIGHT = 0.4
#: Batch score spread below which the model risks herding to identical answers.
HERDING_SPREAD = 0.04
#: Batch score spread at which the batch-contrast benefit saturates.
SPREAD_SATURATION = 0.25
#: Minimum number of questions for batch-contrast calibration to kick in.
MIN_BATCH_FOR_CONTRAST = 3
#: Extra noise factor applied to single-question (standard prompting) calls.
SINGLE_QUESTION_NOISE_PENALTY = 1.25

_MATCH_REASONS = (
    "the records agree on their key attributes",
    "the differences are only formatting and abbreviations",
    "both records describe the same item despite minor typos",
)
_NON_MATCH_REASONS = (
    "the identifying attributes differ",
    "the records describe related but distinct items",
    "key fields such as the model or edition do not agree",
)


def _stable_seed(*parts: str) -> int:
    """Derive a deterministic 64-bit seed from string parts."""
    digest = hashlib.blake2b("||".join(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _pair_signature(pair: ReadPair) -> str:
    """Stable textual signature of a question pair (order-independent per side)."""
    left = ";".join(f"{k}={v}" for k, v in sorted(pair.left.items()))
    right = ";".join(f"{k}={v}" for k, v in sorted(pair.right.items()))
    return f"{left}##{right}"


class SimulatedLLM(LLMClient):
    """Behavioural simulation of an LLM answering ER prompts.

    Args:
        model_name: one of the registered profiles (``"gpt-3.5-03"``,
            ``"gpt-3.5-06"``, ``"gpt-4"``, ``"llama2-70b"``).
        seed: base seed; varying it simulates independent runs (temperature /
            sampling variation), which the paper uses to report mean and
            standard deviation over three runs.
        temperature: kept for API fidelity; higher temperatures add a small
            amount of extra decision noise.
        profile: explicit profile override (useful for tests and ablations).
    """

    def __init__(
        self,
        model_name: str = "gpt-3.5-03",
        seed: int = 0,
        temperature: float = 0.01,
        profile: ModelProfile | None = None,
        tokenizer: ApproxTokenizer | None = None,
    ) -> None:
        super().__init__(model_name=model_name, tokenizer=tokenizer)
        self.profile = profile or get_profile(model_name)
        self.seed = seed
        self.temperature = max(0.0, float(temperature))

    # -- perception ---------------------------------------------------------

    def _attribute_similarities(self, pair: ReadPair) -> dict[str, float]:
        """Per-attribute similarity judgement over the attributes present on either side."""
        similarities: dict[str, float] = {}
        for attribute in sorted(set(pair.left) | set(pair.right)):
            left_value = pair.left.get(attribute, "").strip()
            right_value = pair.right.get(attribute, "").strip()
            if not left_value or not right_value:
                # A missing value is not evidence for or against a match; a
                # capable reader simply ignores that attribute.
                continue
            similarities[attribute] = levenshtein_ratio(left_value, right_value)
        return similarities

    def _perceive(self, pair: ReadPair) -> tuple[float, dict[str, float]]:
        """Internal (noise-free) match score of a question in ``[0, 1]``."""
        similarities = self._attribute_similarities(pair)
        if not similarities:
            return 0.5, similarities
        values = list(similarities.values())
        score = MEAN_WEIGHT * float(np.mean(values)) + MIN_WEIGHT * float(np.min(values))
        return score, similarities

    def _pair_distance(
        self, left: dict[str, float], right: dict[str, float]
    ) -> float:
        """Normalised distance between two per-attribute similarity profiles."""
        attributes = sorted(set(left) | set(right))
        if not attributes:
            return 1.0
        squared = 0.0
        for attribute in attributes:
            difference = left.get(attribute, 0.5) - right.get(attribute, 0.5)
            squared += difference * difference
        return math.sqrt(squared / len(attributes))

    # -- calibration ----------------------------------------------------------

    def _demo_calibrated_threshold(
        self,
        question_profile: dict[str, float],
        demonstrations: tuple[ReadDemonstration, ...],
        demo_scores: list[float],
        demo_profiles: list[dict[str, float]],
    ) -> tuple[float, float]:
        """Exploit relevant in-context demonstrations.

        Returns ``(threshold, score_adjustment)``: the calibrated decision
        threshold and an additive adjustment to the question score contributed
        by very close demonstrations (the nearest-neighbour flavour of ICL —
        a question whose attribute-similarity profile almost coincides with a
        labeled demonstration inherits evidence from that demonstration's
        label).
        """
        base = self.profile.base_threshold
        if not demonstrations:
            return base, 0.0

        radius = self.profile.relevance_radius
        weighted: list[tuple[float, float, float, bool]] = []  # (weight, distance, score, is_match)
        for demo, score, demo_profile in zip(demonstrations, demo_scores, demo_profiles):
            distance = self._pair_distance(question_profile, demo_profile)
            weight = max(0.0, 1.0 - distance / radius)
            if weight > 0.0:
                weighted.append((weight, distance, score, demo.is_match))
        if not weighted:
            return base, 0.0

        match_entries = [(w, s) for w, _, s, is_match in weighted if is_match]
        non_match_entries = [(w, s) for w, _, s, is_match in weighted if not is_match]

        def weighted_mean(entries: list[tuple[float, float]]) -> float:
            total_weight = sum(weight for weight, _ in entries)
            return sum(weight * score for weight, score in entries) / total_weight

        if match_entries and non_match_entries:
            estimate = (weighted_mean(match_entries) + weighted_mean(non_match_entries)) / 2.0
        elif match_entries:
            estimate = weighted_mean(match_entries) - 0.08
        else:
            estimate = weighted_mean(non_match_entries) + 0.08
        estimate = min(max(estimate, 0.05), 0.95)

        strongest = max(weight for weight, _, _, _ in weighted)
        calibration_weight = self.profile.calibration_skill * (0.35 + 0.65 * strongest)
        threshold = (1.0 - calibration_weight) * base + calibration_weight * estimate

        # Nearest-neighbour evidence: a demonstration whose attribute-similarity
        # profile is almost identical to the question's nudges the score toward
        # that demonstration's label.
        closest_weight, _, _, closest_is_match = max(weighted, key=lambda item: item[0])
        adjustment = 0.0
        if closest_weight > 0.4:
            direction = 1.0 if closest_is_match else -1.0
            strength = min(1.0, (closest_weight - 0.4) / 0.4)
            adjustment = direction * 0.15 * self.profile.calibration_skill * strength
        return threshold, adjustment

    def _batch_adjustments(
        self, question_scores: list[float], reference_threshold: float
    ) -> tuple[float | None, float]:
        """Batch-contrast calibration: (threshold estimate or None, noise multiplier).

        The threshold estimate is the midpoint of the largest gap in the batch's
        score distribution, but it is only trusted when it broadly agrees with
        the demonstration-calibrated threshold — the batch context refines the
        decision boundary, it does not override the demonstrations.
        """
        if len(question_scores) < MIN_BATCH_FOR_CONTRAST:
            return None, 1.0
        spread = float(np.std(question_scores))
        noise_multiplier = 1.0 - self.profile.batch_gain * min(1.0, spread / SPREAD_SATURATION)
        noise_multiplier = max(0.3, noise_multiplier)
        if spread < 0.12:
            return None, noise_multiplier
        ordered = sorted(question_scores)
        gaps = [
            (ordered[index + 1] - ordered[index], index)
            for index in range(len(ordered) - 1)
        ]
        largest_gap, gap_index = max(gaps)
        if largest_gap < 0.12:
            return None, noise_multiplier
        estimate = (ordered[gap_index] + ordered[gap_index + 1]) / 2.0
        if abs(estimate - reference_threshold) > 0.12:
            return None, noise_multiplier
        return estimate, noise_multiplier

    # -- generation ---------------------------------------------------------

    def _decide(
        self,
        question: ReadPair,
        question_score: float,
        score_adjustment: float,
        threshold: float,
        batch_threshold: float | None,
        noise_multiplier: float,
    ) -> bool:
        """Decide match / non-match for one question."""
        if batch_threshold is not None:
            blend = 0.5 * self.profile.batch_gain
            threshold = (1.0 - blend) * threshold + blend * batch_threshold

        rng = random.Random(
            _stable_seed(self.model_name, str(self.seed), _pair_signature(question))
        )
        sigma = self.profile.perception_noise * noise_multiplier + 0.02 * self.temperature
        noisy_score = question_score + score_adjustment + rng.gauss(0.0, sigma)
        return noisy_score >= threshold

    def _render_answers(self, decisions: list[bool], style_batch: bool, rng: random.Random) -> str:
        lines = []
        for index, is_match in enumerate(decisions, start=1):
            reason = rng.choice(_MATCH_REASONS if is_match else _NON_MATCH_REASONS)
            word = "Yes" if is_match else "No"
            if style_batch:
                lines.append(f"A{index}: {word}, {reason}.")
            else:
                lines.append(f"Answer: {word}, {reason}.")
        return "\n".join(lines)

    def _generate(self, prompt_text: str) -> str:
        parsed = read_prompt(prompt_text)
        if not parsed.questions:
            return "I could not find any question to answer in the prompt."

        call_rng = random.Random(
            _stable_seed(self.model_name, str(self.seed), prompt_text[:512], str(len(prompt_text)))
        )

        # Models that cannot handle batch prompting mostly fail to answer.
        if len(parsed.questions) > 1 and self.profile.batch_failure_rate > 0.0:
            if call_rng.random() < self.profile.batch_failure_rate:
                return "I am sorry, I cannot answer multiple questions in a single response."

        # Perceive each demonstration once per prompt: every question's
        # calibration reuses the same per-demonstration similarity profiles
        # (recomputing them per question is quadratic in batch size).
        demo_perceptions = [self._perceive(demo) for demo in parsed.demonstrations]
        demo_scores = [score for score, _ in demo_perceptions]
        demo_profiles = [profile for _, profile in demo_perceptions]
        question_perceptions = [self._perceive(question) for question in parsed.questions]
        question_scores = [score for score, _ in question_perceptions]

        calibrations = [
            self._demo_calibrated_threshold(
                profile_vector, parsed.demonstrations, demo_scores, demo_profiles
            )
            for _, profile_vector in question_perceptions
        ]

        # A lone question gives the model no in-prompt contrast to anchor
        # against, so its judgement is slightly noisier than in batch mode —
        # the mechanism behind the paper's observation that batch prompting is
        # more precise and more stable than standard prompting.
        batch_threshold, noise_multiplier = (None, SINGLE_QUESTION_NOISE_PENALTY)
        if len(parsed.questions) > 1:
            reference_threshold = float(np.median([threshold for threshold, _ in calibrations]))
            batch_threshold, noise_multiplier = self._batch_adjustments(
                question_scores, reference_threshold
            )

        decisions: list[bool] = []
        for question, (score, _), (threshold, adjustment) in zip(
            parsed.questions, question_perceptions, calibrations
        ):
            decisions.append(
                self._decide(
                    question,
                    score,
                    adjustment,
                    threshold,
                    batch_threshold,
                    noise_multiplier,
                )
            )

        # Herding failure mode: a batch of near-identical questions can push the
        # model into answering them all the same way.
        if len(decisions) > 2:
            spread = float(np.std(question_scores))
            if spread < HERDING_SPREAD and call_rng.random() < self.profile.herding_probability:
                majority = sum(decisions) >= len(decisions) / 2.0
                decisions = [majority] * len(decisions)

        return self._render_answers(decisions, style_batch=len(parsed.questions) > 1, rng=call_rng)
