"""Execution backends for dispatching independent LLM calls.

Batch prompts are independent of each other, so a run's LLM calls can be
dispatched serially (the reference behaviour) or concurrently.  Backends are
deliberately tiny: a backend maps a function over a list of items and returns
the results *in input order*, which is what keeps concurrent runs
deterministic — the caller never observes completion order, only input order.

The concurrent backend uses threads rather than processes because LLM calls
are I/O-bound against a real API (and the simulated client releases the GIL
often enough that tests still exercise true interleaving).
"""

from __future__ import annotations

import asyncio
import inspect
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.observability.tracing import carry_current_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.llm.base import LLMClient, LLMResponse

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Default worker count of the concurrent backend.
DEFAULT_MAX_WORKERS = 4


class ExecutionBackend(ABC):
    """Maps a callable over items with a backend-specific execution strategy.

    Implementations must return results aligned with the input order,
    regardless of completion order.
    """

    #: Backend name used in configuration and reports.
    name: str = "backend"

    @abstractmethod
    def map(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> list[ResultT]:
        """Apply ``fn`` to every item and return results in input order."""

    def map_settled(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> list[tuple[ResultT | None, Exception | None]]:
        """Like :meth:`map`, but per-item failures settle instead of raising.

        Returns one ``(result, error)`` pair per item, in input order, with
        exactly one side non-``None``.  Unlike :meth:`map` — where the first
        exception propagates while sibling items may still be running — every
        item has fully finished (or failed) by the time this returns, which is
        what lets the run engine checkpoint whatever *did* complete before
        re-raising a shard failure.
        """

        def settle(item: ItemT) -> tuple[ResultT | None, Exception | None]:
            try:
                return fn(item), None
            except Exception as error:  # noqa: BLE001 - settled by contract
                return None, error

        return self.map(settle, items)

    def map_completions(
        self, client: "LLMClient", prompt_texts: Sequence[str]
    ) -> "list[LLMResponse]":
        """Run one completion per prompt, in prompt order.

        The hook :meth:`~repro.llm.base.LLMClient.complete_many` dispatches
        through.  The default simply maps ``client.complete``; the async
        backend overrides it to prefer an engine's native ``acomplete`` lane.
        """
        return self.map(client.complete, prompt_texts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(ExecutionBackend):
    """Run calls one after the other on the calling thread (the default)."""

    name = "serial"

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> list[ResultT]:
        return [fn(item) for item in items]


class ConcurrentExecutor(ExecutionBackend):
    """Dispatch calls concurrently on a thread pool.

    Args:
        max_workers: maximum number of in-flight calls.  By default the pool
            is created per :meth:`map` call so a backend instance carries no
            OS resources between runs and can be shared freely across
            sessions.
        persistent: keep one long-lived pool across :meth:`map` calls instead.
            A serving deployment flushing many small micro-batches avoids the
            per-flush pool setup/teardown; the owner must call
            :meth:`shutdown` (or use the backend as a context manager) when
            done.
    """

    name = "concurrent"

    def __init__(
        self, max_workers: int = DEFAULT_MAX_WORKERS, persistent: bool = False
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.persistent = persistent
        self._shut_down = False
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=max_workers) if persistent else None
        )

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> list[ResultT]:
        if self._shut_down:
            raise RuntimeError("cannot dispatch on a shut-down ConcurrentExecutor")
        materialised: Sequence[ItemT] = list(items)
        if len(materialised) <= 1:
            return [fn(item) for item in materialised]
        # Worker threads have no ambient trace context; carry the submitting
        # thread's current span across so worker-side spans parent correctly.
        fn = carry_current_span(fn)
        if self._pool is not None:
            # Executor.map preserves input order, which is the determinism
            # guarantee callers rely on.
            return list(self._pool.map(fn, materialised))
        workers = min(self.max_workers, len(materialised))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, materialised))

    def shutdown(self) -> None:
        """Release the pool; further :meth:`map` calls raise ``RuntimeError``."""
        self._shut_down = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ConcurrentExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConcurrentExecutor(max_workers={self.max_workers}, "
            f"persistent={self.persistent})"
        )


class AsyncExecutor(ExecutionBackend):
    """Dispatch calls on one asyncio event loop with bounded concurrency.

    Where :class:`ConcurrentExecutor` holds one thread per in-flight call,
    the async backend multiplexes arbitrarily many in-flight completions on a
    single event loop — the natural shape for engines whose ``acomplete`` is
    (or delegates to) non-blocking I/O, and the only one that scales to
    hundreds of concurrent requests without hundreds of threads.

    Determinism: results are gathered with :func:`asyncio.gather`, which
    preserves argument order, so callers observe input order regardless of
    completion order — the same contract as every other backend.

    Plain synchronous callables still work: they are delegated to a thread
    pool sized to ``max_in_flight`` (the loop's default executor for the
    duration of the map, so an engine's ``asyncio.to_thread`` fallback is
    bounded by the same limit instead of the small interpreter default).

    Args:
        max_in_flight: maximum completions in flight at once.
    """

    name = "async"

    def __init__(self, max_in_flight: int = DEFAULT_MAX_WORKERS) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.max_in_flight = max_in_flight

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> list[ResultT]:
        materialised: Sequence[ItemT] = list(items)
        if not materialised:
            return []
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise RuntimeError(
                "AsyncExecutor.map cannot be called from a running event loop; "
                "await the engine's acomplete directly instead"
            )
        return asyncio.run(self._dispatch(fn, materialised))

    async def _dispatch(
        self, fn: Callable[[ItemT], object], items: Sequence[ItemT]
    ) -> list:
        semaphore = asyncio.Semaphore(self.max_in_flight)
        loop = asyncio.get_running_loop()
        is_async = inspect.iscoroutinefunction(fn)
        if not is_async:
            # Coroutines inherit the ambient context when their task is
            # created, but run_in_executor hops to a pool thread that does
            # not; carry the current span across explicitly.
            fn = carry_current_span(fn)
        workers = min(self.max_in_flight, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Bound asyncio.to_thread (used by Engine.acomplete's fallback)
            # by max_in_flight rather than the interpreter's default pool.
            loop.set_default_executor(pool)

            async def run_one(item: ItemT) -> object:
                async with semaphore:
                    if is_async:
                        return await fn(item)  # type: ignore[misc]
                    return await loop.run_in_executor(pool, fn, item)

            return list(await asyncio.gather(*(run_one(item) for item in items)))

    def map_completions(
        self, client: "LLMClient", prompt_texts: Sequence[str]
    ) -> "list[LLMResponse]":
        """Prefer the client's native async lane when it has one."""
        acomplete = getattr(client, "acomplete", None)
        if acomplete is not None and inspect.iscoroutinefunction(acomplete):
            return self.map(acomplete, prompt_texts)
        return self.map(client.complete, prompt_texts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsyncExecutor(max_in_flight={self.max_in_flight})"


def create_executor(jobs: int = 1, kind: str | None = None) -> ExecutionBackend:
    """Create a backend for ``jobs`` parallel calls.

    Args:
        jobs: parallelism budget (workers / in-flight completions).
        kind: explicit backend — ``"serial"``, ``"concurrent"`` or
            ``"async"``.  ``None`` keeps the historical rule: serial for one
            job, thread-based concurrency otherwise.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if kind is None:
        kind = "serial" if jobs == 1 else "concurrent"
    key = kind.strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key == "concurrent":
        return ConcurrentExecutor(max_workers=jobs)
    if key == "async":
        return AsyncExecutor(max_in_flight=jobs)
    raise ValueError(
        f"unknown executor kind {kind!r}; expected one of: async, concurrent, serial"
    )
