"""LLM client factory."""

from __future__ import annotations

from repro.llm.base import LLMClient
from repro.llm.profiles import available_models
from repro.llm.simulated import SimulatedLLM


def create_llm(model: str = "gpt-3.5-03", seed: int = 0, temperature: float = 0.01) -> LLMClient:
    """Create an LLM client for ``model``.

    Offline this always returns a :class:`SimulatedLLM`; the indirection exists
    so an API-backed client could be registered here without touching callers.

    Raises:
        ValueError: if the model name has no registered profile (the same
            error type :class:`repro.core.config.BatcherConfig` raises for an
            unknown model, so config and factory misuse fail uniformly).
    """
    key = model.strip().lower()
    if key not in available_models():
        known = ", ".join(available_models())
        raise ValueError(f"unknown model {model!r}; expected one of: {known}")
    return SimulatedLLM(model_name=key, seed=seed, temperature=temperature)
