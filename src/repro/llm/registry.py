"""LLM client factory."""

from __future__ import annotations

from repro.llm.base import LLMClient
from repro.llm.profiles import available_models


def create_llm(
    model: str = "gpt-3.5-03",
    seed: int = 0,
    temperature: float = 0.01,
    engine: str = "simulated",
) -> LLMClient:
    """Create an LLM client for ``model``.

    The call routes through the :mod:`repro.engines` registry; the default
    ``engine="simulated"`` returns the behavioural simulation (a
    :class:`~repro.llm.simulated.SimulatedLLM` subclass, byte-identical in
    output), while ``"openai"`` / ``"openai_compatible"`` / ``"anthropic"``
    build real HTTP-backed engines configured from the environment
    (``OPENAI_API_KEY``, ``REPRO_ENGINE_BASE_URL``, ...).  ``model`` stays a
    *logical* model name either way — it drives profiles and pricing; HTTP
    engines translate it to the provider's identifier separately.

    Raises:
        ValueError: if the model name has no registered profile (the same
            error type :class:`repro.core.config.BatcherConfig` raises for an
            unknown model, so config and factory misuse fail uniformly), or
            if ``engine`` names no registered backend.
    """
    key = model.strip().lower()
    if key not in available_models():
        known = ", ".join(available_models())
        raise ValueError(f"unknown model {model!r}; expected one of: {known}")
    # Imported lazily: repro.engines depends on repro.llm, not the reverse.
    from repro.engines.registry import create_engine

    return create_engine(engine, model=key, seed=seed, temperature=temperature)
