"""Prompt comprehension of the simulated LLM.

The simulated model only receives the prompt *text*; this module is its
"reading" step: it locates the demonstration blocks (``[D{i}]`` ... ``Answer:
Yes/No``) and question blocks (``[Q{i}]``), and parses each ``Entity A:`` /
``Entity B:`` line back into an attribute → value mapping.  Parsing lives in
its own module so that it can be tested independently of the decision model,
and so that prompt-format changes surface as explicit test failures rather than
silently degrading the simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_ATTRIBUTE_PATTERN = re.compile(r"([A-Za-z_][A-Za-z0-9_]*):\s*")
_DEMO_HEADER = re.compile(r"^\[D(\d+)\]\s*$")
_QUESTION_HEADER = re.compile(r"^\[Q(\d+)\]\s*$")
_ANSWER_LINE = re.compile(r"^Answer:\s*(yes|no)\b", re.IGNORECASE)
_ENTITY_LINE = re.compile(r"^Entity\s+([AB]):\s*(.*)$")


def parse_attribute_text(text: str) -> dict[str, str]:
    """Parse a serialized record ``attr1: val1, attr2: val2`` into a dict.

    Attribute names are single identifiers, so each ``name:`` occurrence starts
    a new attribute; the value runs until the next attribute name (values may
    therefore contain commas).
    """
    matches = list(_ATTRIBUTE_PATTERN.finditer(text))
    values: dict[str, str] = {}
    for index, match in enumerate(matches):
        name = match.group(1)
        start = match.end()
        end = matches[index + 1].start() if index + 1 < len(matches) else len(text)
        value = text[start:end].strip().rstrip(",").strip()
        values[name] = value
    return values


@dataclass(frozen=True)
class ReadPair:
    """One entity pair as understood by the simulated model."""

    index: int
    left: dict[str, str]
    right: dict[str, str]


@dataclass(frozen=True)
class ReadDemonstration(ReadPair):
    """A demonstration pair together with its stated answer (True = match)."""

    is_match: bool = False


@dataclass(frozen=True)
class ReadPrompt:
    """Everything the simulated model extracted from the prompt text."""

    demonstrations: tuple[ReadDemonstration, ...]
    questions: tuple[ReadPair, ...]


def read_prompt(prompt_text: str) -> ReadPrompt:
    """Parse a standard or batch ER prompt into demonstrations and questions."""
    demonstrations: list[ReadDemonstration] = []
    questions: list[ReadPair] = []

    current_kind: str | None = None
    current_index = 0
    current_left: dict[str, str] | None = None
    current_right: dict[str, str] | None = None

    def flush_question() -> None:
        nonlocal current_left, current_right
        if current_kind == "question" and current_left is not None and current_right is not None:
            questions.append(
                ReadPair(index=current_index, left=current_left, right=current_right)
            )
        current_left = None
        current_right = None

    for raw_line in prompt_text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        demo_header = _DEMO_HEADER.match(line)
        question_header = _QUESTION_HEADER.match(line)
        if demo_header is not None or question_header is not None:
            flush_question()
            current_kind = "demo" if demo_header is not None else "question"
            header = demo_header or question_header
            current_index = int(header.group(1))
            continue
        entity_line = _ENTITY_LINE.match(line)
        if entity_line is not None and current_kind is not None:
            values = parse_attribute_text(entity_line.group(2))
            if entity_line.group(1) == "A":
                current_left = values
            else:
                current_right = values
            continue
        answer_line = _ANSWER_LINE.match(line)
        if answer_line is not None and current_kind == "demo":
            if current_left is not None and current_right is not None:
                demonstrations.append(
                    ReadDemonstration(
                        index=current_index,
                        left=current_left,
                        right=current_right,
                        is_match=answer_line.group(1).lower() == "yes",
                    )
                )
            current_left = None
            current_right = None
            current_kind = None
            continue

    flush_question()
    return ReadPrompt(demonstrations=tuple(demonstrations), questions=tuple(questions))
