"""Unified tracing + metrics layer.

Three pieces, designed to be wired through the existing seams rather than
around them:

* :mod:`repro.observability.tracing` — nested :class:`Span` records produced
  by a :class:`Tracer`, with context propagation across thread pools and
  asyncio tasks.  :data:`NOOP_TRACER` (the default everywhere) makes disabled
  tracing near-free.
* :mod:`repro.observability.metrics` — a Prometheus-style
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket histograms,
  rendered in text exposition format for ``GET /metrics``.
* :mod:`repro.observability.export` — the append-only JSONL trace sink and
  reader behind the ``repro-trace`` CLI (:mod:`repro.observability.cli`).
"""

from repro.observability.export import JsonlTraceSink, read_trace_file
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanSink,
    Tracer,
    carry_current_span,
    current_span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanSink",
    "Tracer",
    "carry_current_span",
    "current_span",
    "read_trace_file",
]
