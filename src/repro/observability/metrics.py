"""Prometheus-style metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` owns a namespace of metric *families*; each family
holds one sample per label combination.  Three instrument kinds cover the
stack's needs:

* :class:`Counter` — monotonically increasing totals (retries, flushes);
* :class:`Gauge` — point-in-time values (queue depth, hit rates), either set
  directly or read from a callback at scrape time, so existing ad-hoc
  counters (cache stats, transport stats) surface without double-keeping;
* :class:`Histogram` — fixed-bucket latency/size distributions with the
  classic cumulative ``_bucket`` / ``_sum`` / ``_count`` exposition.

Everything is thread-safe (one lock per family), and durations are measured
through the injectable :class:`~repro.engines.transport.Clock` protocol, so
tests drive timing with a :class:`~repro.engines.faults.FakeClock` and make
sleepless, deterministic assertions.  :meth:`MetricsRegistry.render` emits
the Prometheus text exposition format (``text/plain; version=0.0.4``) served
by the HTTP front end's ``GET /metrics``.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

from repro.engines.transport import Clock

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets for request/call latencies, in seconds.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0,
)

_VALID_FIRST = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | frozenset("0123456789")


def _validate_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST or any(
        ch not in _VALID_REST for ch in name
    ):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


class _Metric:
    """Shared machinery of one metric family (name, help, labels, lock)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        for label in self.label_names:
            _validate_name(label)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, key))

    def header_lines(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing total, one sample per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}
        self._callbacks: dict[tuple[str, ...], Callable[[], float]] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the labeled sample."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Source the labeled sample from ``fn`` at scrape time.

        Bridges pre-existing monotonic counters (transport retry totals,
        cache hit counts) into the registry without double-keeping them.
        """
        key = self._key(labels)
        with self._lock:
            self._callbacks[key] = fn

    def value(self, **labels: str) -> float:
        """Current value of the labeled sample (0.0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            callback = self._callbacks.get(key)
        if callback is not None:
            return float(callback())
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        """All (labels, value) samples, callback-sourced ones included."""
        with self._lock:
            values = dict(self._values)
            callbacks = dict(self._callbacks)
        for key, callback in callbacks.items():
            values[key] = float(callback())
        return [(self._labels_of(key), value) for key, value in sorted(values.items())]

    def render(self) -> list[str]:
        lines = self.header_lines()
        samples = self.samples() or ([({}, 0.0)] if not self.label_names else [])
        for labels, value in samples:
            lines.append(f"{self.name}{_format_labels(labels)} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A point-in-time value, settable directly or from a scrape callback."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}
        self._callbacks: dict[tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled sample to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labeled sample."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labeled sample."""
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Source the labeled sample from ``fn`` at scrape time."""
        key = self._key(labels)
        with self._lock:
            self._callbacks[key] = fn

    def value(self, **labels: str) -> float:
        """Current value of the labeled sample (0.0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            callback = self._callbacks.get(key)
        if callback is not None:
            return float(callback())
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        """All (labels, value) samples, callback-sourced ones included."""
        with self._lock:
            values = dict(self._values)
            callbacks = dict(self._callbacks)
        for key, callback in callbacks.items():
            values[key] = float(callback())
        return [(self._labels_of(key), value) for key, value in sorted(values.items())]

    def render(self) -> list[str]:
        lines = self.header_lines()
        samples = self.samples() or ([({}, 0.0)] if not self.label_names else [])
        for labels, value in samples:
            lines.append(f"{self.name}{_format_labels(labels)} {_format_value(value)}")
        return lines


class Histogram(_Metric):
    """A fixed-bucket distribution with cumulative Prometheus exposition.

    Args:
        buckets: strictly increasing upper bounds; an implicit ``+Inf``
            bucket is always appended.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be strictly increasing, got {buckets}")
        self.buckets = bounds
        # key -> ([per-bucket counts..., +Inf count], sum)
        self._series: dict[tuple[str, ...], tuple[list[int], float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labeled series."""
        key = self._key(labels)
        with self._lock:
            counts, total = self._series.get(key, (None, 0.0))
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._series[key] = (counts, total + float(value))

    def count(self, **labels: str) -> int:
        """Total observations recorded for the labeled series."""
        key = self._key(labels)
        with self._lock:
            counts, _ = self._series.get(key, (None, 0.0))
            return sum(counts) if counts is not None else 0

    def sum(self, **labels: str) -> float:
        """Sum of all observed values for the labeled series."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, (None, 0.0))[1]

    def render(self) -> list[str]:
        lines = self.header_lines()
        with self._lock:
            series = {
                key: (list(counts), total)
                for key, (counts, total) in self._series.items()
            }
        if not series and not self.label_names:
            series = {(): ([0] * (len(self.buckets) + 1), 0.0)}
        for key in sorted(series):
            counts, total = series[key]
            labels = self._labels_of(key)
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                bucket_labels = {**labels, "le": _format_value(bound)}
                lines.append(
                    f"{self.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            cumulative += counts[-1]
            inf_labels = {**labels, "le": "+Inf"}
            lines.append(f"{self.name}_bucket{_format_labels(inf_labels)} {cumulative}")
            lines.append(f"{self.name}_sum{_format_labels(labels)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_format_labels(labels)} {cumulative}")
        return lines


class _Timer:
    """Context manager recording its enclosed duration into a histogram."""

    __slots__ = ("_histogram", "_labels", "_clock", "_started")

    def __init__(self, histogram: Histogram, labels: dict[str, str], clock: Clock) -> None:
        self._histogram = histogram
        self._labels = labels
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = self._clock.monotonic()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(
            self._clock.monotonic() - self._started, **self._labels
        )


class MetricsRegistry:
    """A namespace of metric families with Prometheus text exposition.

    Family registration is idempotent *per kind and label set*: asking for an
    existing family returns it, asking with a conflicting type or labels
    raises — one name means one thing.

    Args:
        clock: time source for :meth:`time`; inject a fake for sleepless,
            deterministic timing tests.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or Clock()
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    @property
    def clock(self) -> Clock:
        """The registry's time source."""
        return self._clock

    def _register(self, metric: _Metric, kind: type) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
            if type(existing) is not kind or existing.label_names != metric.label_names:
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{type(existing).__name__}{existing.label_names}"
                )
            return existing

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        """Get or create the named counter family."""
        return self._register(Counter(name, help, tuple(labels)), Counter)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        """Get or create the named gauge family."""
        return self._register(Gauge(name, help, tuple(labels)), Gauge)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the named histogram family."""
        return self._register(
            Histogram(name, help, tuple(labels), buckets=buckets), Histogram
        )  # type: ignore[return-value]

    def time(self, histogram: Histogram, **labels: str) -> _Timer:
        """Context manager observing its enclosed duration into ``histogram``."""
        return _Timer(histogram, labels, self._clock)

    def get(self, name: str) -> _Metric | None:
        """The named family, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, object]:
        """A JSON-serializable dump of every family's current samples.

        The consolidated ``GET /stats`` uses this so its numbers and the
        ``/metrics`` exposition come from the same source of truth.
        """
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        dump: dict[str, object] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                with metric._lock:
                    series = {
                        key: (sum(counts), total)
                        for key, (counts, total) in metric._series.items()
                    }
                dump[metric.name] = {
                    "type": metric.kind,
                    "series": [
                        {
                            "labels": metric._labels_of(key),
                            "count": count,
                            "sum": total,
                        }
                        for key, (count, total) in sorted(series.items())
                    ],
                }
            else:
                dump[metric.name] = {
                    "type": metric.kind,
                    "series": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()  # type: ignore[union-attr]
                    ],
                }
        return dump

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"MetricsRegistry(families={len(self._metrics)})"
