"""``repro-trace``: render a JSONL trace into a latency tree.

Reads a trace file written by :class:`~repro.observability.export.
JsonlTraceSink` and prints, per trace:

* the span tree with per-span duration, the *self* time (duration minus the
  time covered by child spans), and attributes;
* an aggregate per-name table (count, total, mean, max) — the "where did this
  run spend its time" answer across repeated operations;
* the top-N slowest spans overall.

.. code-block:: bash

    repro-trace run-trace.jsonl --top 10
    repro-trace run-trace.jsonl --tree      # span tree only
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Mapping, Sequence

from repro.observability.export import read_trace_file

__all__ = [
    "aggregate_by_name",
    "build_forest",
    "main",
    "render_tree",
    "slowest_spans",
]


def build_forest(
    spans: Sequence[Mapping[str, object]],
) -> tuple[list[Mapping[str, object]], dict[str, list[Mapping[str, object]]]]:
    """Organize span records into (roots, children-by-parent-id).

    Spans whose parent never finished (e.g. the process died mid-trace) are
    promoted to roots rather than dropped.  Children are ordered by start
    timestamp; roots by (trace id, start).
    """
    by_id = {str(span["span"]): span for span in spans}
    children: dict[str, list[Mapping[str, object]]] = defaultdict(list)
    roots: list[Mapping[str, object]] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and str(parent) in by_id:
            children[str(parent)].append(span)
        else:
            roots.append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: float(span.get("start", 0.0)))
    roots.sort(key=lambda span: (str(span.get("trace", "")), float(span.get("start", 0.0))))
    return roots, dict(children)


def self_time(
    span: Mapping[str, object], children: Mapping[str, list[Mapping[str, object]]]
) -> float:
    """Span duration not covered by its direct children."""
    own = float(span.get("duration", 0.0))
    covered = sum(
        float(child.get("duration", 0.0))
        for child in children.get(str(span["span"]), [])
    )
    return max(0.0, own - covered)


def render_tree(spans: Sequence[Mapping[str, object]]) -> str:
    """Render the span forest as an indented latency tree."""
    roots, children = build_forest(spans)
    lines: list[str] = []
    last_trace: str | None = None

    def walk(span: Mapping[str, object], depth: int) -> None:
        duration = float(span.get("duration", 0.0))
        own = self_time(span, children)
        status = str(span.get("status", "ok"))
        marker = "" if status == "ok" else f" [{status}]"
        attributes = span.get("attributes") or {}
        attr_text = (
            " " + " ".join(f"{key}={value}" for key, value in attributes.items())
            if attributes
            else ""
        )
        lines.append(
            f"{'  ' * depth}{span.get('name')}  "
            f"{duration * 1000:.2f}ms (self {own * 1000:.2f}ms){marker}{attr_text}"
        )
        for child in children.get(str(span["span"]), []):
            walk(child, depth + 1)

    for root in roots:
        trace = str(root.get("trace", ""))
        if trace != last_trace:
            lines.append(f"trace {trace}")
            last_trace = trace
        walk(root, 1)
    return "\n".join(lines)


def aggregate_by_name(
    spans: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    """Per-name aggregate rows (count/total/mean/max), slowest total first."""
    totals: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        totals[str(span.get("name"))].append(float(span.get("duration", 0.0)))
    rows = [
        {
            "name": name,
            "count": len(durations),
            "total_seconds": sum(durations),
            "mean_seconds": sum(durations) / len(durations),
            "max_seconds": max(durations),
        }
        for name, durations in totals.items()
    ]
    rows.sort(key=lambda row: row["total_seconds"], reverse=True)
    return rows


def slowest_spans(
    spans: Sequence[Mapping[str, object]], top: int = 10
) -> list[Mapping[str, object]]:
    """The ``top`` spans with the largest durations, slowest first."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    return sorted(
        spans, key=lambda span: float(span.get("duration", 0.0)), reverse=True
    )[:top]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-trace`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a repro observability trace (JSONL) as a latency tree.",
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--top", type=int, default=10, help="number of slowest spans to list"
    )
    parser.add_argument(
        "--tree", action="store_true", help="print only the span tree"
    )
    args = parser.parse_args(argv)

    try:
        spans = read_trace_file(args.trace)
    except (OSError, ValueError) as error:
        print(f"repro-trace: {error}", file=sys.stderr)
        return 1
    if not spans:
        print("repro-trace: trace file holds no spans", file=sys.stderr)
        return 1

    print(render_tree(spans))
    if args.tree:
        return 0

    print("\n== per-stage latency ==")
    print(f"{'name':40s} {'count':>6s} {'total':>10s} {'mean':>10s} {'max':>10s}")
    for row in aggregate_by_name(spans):
        print(
            f"{str(row['name'])[:40]:40s} {row['count']:6d} "
            f"{row['total_seconds'] * 1000:9.2f}m {row['mean_seconds'] * 1000:9.2f}m "
            f"{row['max_seconds'] * 1000:9.2f}m"
        )

    print(f"\n== top {args.top} slowest spans ==")
    for span in slowest_spans(spans, top=args.top):
        print(
            f"{float(span.get('duration', 0.0)) * 1000:9.2f}ms  "
            f"{span.get('name')}  (trace {span.get('trace')}, span {span.get('span')})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
