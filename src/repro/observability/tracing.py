"""Run-wide spans: nested, timestamped, attribute-carrying trace records.

A :class:`Tracer` produces :class:`Span` records organized into traces: each
span has an id, a parent, monotonic start/end timestamps, a status and a flat
attribute mapping.  The *current* span is tracked in a :class:`contextvars.
ContextVar`, so nesting falls out of lexical scoping::

    with tracer.span("resolve", pairs=8):
        with tracer.span("stage:featurize"):
            ...

Two properties shape the design:

* **Disabled tracing is near-free.**  :data:`NOOP_TRACER` is the default
  everywhere; its ``span()`` returns one shared do-nothing context manager
  without reading the clock, allocating a span or touching the context
  variable.  Hot paths that would build attribute dictionaries guard on
  :attr:`Tracer.enabled` first.
* **Context crosses execution boundaries.**  asyncio tasks copy the ambient
  context at creation, so spans started inside :class:`~repro.llm.executors.
  AsyncExecutor` tasks parent correctly for free.  Thread pools do *not*
  copy context; :func:`carry_current_span` captures the submitting thread's
  current span and re-establishes it around each worker-side call, which is
  how :class:`~repro.llm.executors.ConcurrentExecutor` keeps worker spans
  parented to the span that submitted them.

Time is read through the injectable :class:`~repro.engines.transport.Clock`
protocol, so tests drive tracing with a
:class:`~repro.engines.faults.FakeClock` and assert exact durations without
sleeping.
"""

from __future__ import annotations

import itertools
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Protocol, TypeVar

from repro.engines.transport import Clock

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanSink",
    "Tracer",
    "carry_current_span",
    "current_span",
]

ResultT = TypeVar("ResultT")

#: The ambient span of the calling context (task- and thread-scoped).
_current_span: ContextVar["Span | None"] = ContextVar("repro_current_span", default=None)


def current_span() -> "Span | None":
    """The span currently active in this context (``None`` outside any span)."""
    return _current_span.get()


@dataclass
class Span:
    """One traced operation: a named, timed, attributed interval.

    Attributes:
        name: operation name (e.g. ``"stage:inference"``).
        trace_id: id shared by every span of one root operation.
        span_id: unique id of this span within its tracer.
        parent_id: id of the enclosing span (``None`` for a trace root).
        started_at: monotonic start timestamp (tracer clock).
        ended_at: monotonic end timestamp (``None`` while running).
        status: ``"ok"``, ``"error"`` or ``"running"``.
        attributes: flat JSON-serializable key/value annotations.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    started_at: float
    ended_at: float | None = None
    status: str = "running"
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still running)."""
        if self.ended_at is None:
            return 0.0
        return self.ended_at - self.started_at

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one annotation to the span."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, object]:
        """The span's JSONL trace-file representation."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.started_at,
            "end": self.ended_at,
            "duration": self.duration,
            "status": self.status,
            "attributes": self.attributes,
        }


class SpanSink(Protocol):
    """Anything that accepts finished spans (e.g. a JSONL trace file)."""

    def write(self, span: Span) -> None:
        """Persist one finished span."""


class _ActiveSpan:
    """Context manager establishing one span as the current context span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None

    @property
    def span(self) -> Span:
        """The underlying span (for attaching attributes mid-flight)."""
        return self._span

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one annotation to the underlying span."""
        self._span.attributes[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self._token = _current_span.set(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        span = self._span
        span.ended_at = self._tracer._clock.monotonic()
        if span.status == "running":
            span.status = "error" if exc_type is not None else "ok"
        if exc is not None and "error" not in span.attributes:
            span.attributes["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer._record(span)


class _NoopActiveSpan:
    """Shared do-nothing stand-in returned by the no-op tracer."""

    __slots__ = ()

    span = None

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopActiveSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP_ACTIVE_SPAN = _NoopActiveSpan()


class Tracer:
    """Produces nested spans and collects them as they finish.

    Finished spans are kept in an in-memory ring (newest ``max_spans``) and,
    when a ``sink`` is attached, forwarded to it immediately — the sink is
    what persists a run's trace as JSONL
    (:class:`~repro.observability.export.JsonlTraceSink`).

    Args:
        sink: optional destination for finished spans.
        clock: time source; a :class:`~repro.engines.faults.FakeClock` makes
            every duration deterministic under test.
        max_spans: bound on the in-memory finished-span buffer (oldest spans
            are dropped first; the sink still sees every span).
    """

    #: Instance-level flag callers may guard attribute construction on.
    enabled: bool = True

    def __init__(
        self,
        sink: SpanSink | None = None,
        clock: Clock | None = None,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._sink = sink
        self._clock = clock or Clock()
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        """Open a child span of the current context span (or a new trace root).

        Use as a context manager; the span ends (and is recorded) on exit,
        with status ``"error"`` when the body raised.
        """
        parent = _current_span.get()
        if parent is None:
            trace_id = f"t{next(self._trace_ids):06d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(self._span_ids):08d}",
            parent_id=parent_id,
            started_at=self._clock.monotonic(),
            attributes=dict(attributes) if attributes else {},
        )
        return _ActiveSpan(self, span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)
            if len(self._finished) > self._max_spans:
                del self._finished[: len(self._finished) - self._max_spans]
        if self._sink is not None:
            self._sink.write(span)

    def finished_spans(self) -> list[Span]:
        """Snapshot of the finished spans recorded so far (oldest first)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop the in-memory finished-span buffer (the sink keeps its copy)."""
        with self._lock:
            self._finished.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(finished={len(self.finished_spans())}, sink={self._sink!r})"


class NoopTracer(Tracer):
    """The disabled tracer: every operation is a shared constant no-op.

    ``span()`` allocates nothing, never reads the clock and never touches the
    context variable — the cost of tracing-off on the hot path is one method
    call returning a module-level singleton (verified by
    ``benchmarks/bench_observability.py``).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attributes: object) -> _NoopActiveSpan:  # type: ignore[override]
        return _NOOP_ACTIVE_SPAN

    def _record(self, span: Span) -> None:  # pragma: no cover - unreachable
        pass


#: Shared default tracer: tracing disabled.
NOOP_TRACER = NoopTracer()


def carry_current_span(
    fn: Callable[..., ResultT],
) -> Callable[..., ResultT]:
    """Wrap ``fn`` so it runs under the *caller's* current span.

    Thread pools execute work in threads whose context has no ambient span,
    which would break parenting for any span the work starts.  This helper is
    called on the submitting thread: it snapshots the current span and
    returns a wrapper that re-establishes it around every invocation (and
    restores the worker's previous state after).  When no span is active the
    original callable is returned unchanged, so the untraced hot path pays a
    single context-variable read per ``map``.
    """
    span = _current_span.get()
    if span is None:
        return fn

    def wrapped(*args: object, **kwargs: object) -> ResultT:
        token = _current_span.set(span)
        try:
            return fn(*args, **kwargs)
        finally:
            _current_span.reset(token)

    return wrapped
