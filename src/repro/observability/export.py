"""Trace exporters: persist finished spans as append-only JSONL.

One span per line, written and flushed as each span finishes — the same
discipline as the run engine's :class:`~repro.engine.checkpoint.
CheckpointStore` appends: a killed process loses at most the span that was
mid-write, and a torn trailing line is skipped (not fatal) when the file is
read back.  The format is :meth:`~repro.observability.tracing.Span.to_dict`,
which the ``repro-trace`` CLI (:mod:`repro.observability.cli`) renders into a
latency tree.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.observability.tracing import Span

__all__ = ["JsonlTraceSink", "read_trace_file"]


class JsonlTraceSink:
    """Append-only JSONL span sink with per-span flush.

    Args:
        path: destination file; parent directories are created.  An existing
            file is appended to, so several runs can share one trace file
            (each run's spans carry their own trace ids).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        self._written = 0

    @property
    def num_written(self) -> int:
        """Spans written by this sink instance."""
        with self._lock:
            return self._written

    def write(self, span: Span) -> None:
        """Append one finished span and flush it to the OS."""
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._file.closed:
                raise ValueError(f"trace sink {self.path} is closed")
            self._file.write(line + "\n")
            self._file.flush()
            self._written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlTraceSink(path={str(self.path)!r})"


def read_trace_file(path: str | Path) -> list[dict[str, object]]:
    """Parse a JSONL trace file back into span dictionaries.

    A torn trailing line (the kill-mid-write artifact) is tolerated; a
    corrupt line anywhere *else* raises, because it means the file was not
    produced by an append-only sink.

    Raises:
        ValueError: on a malformed non-trailing line or a non-object line.
    """
    path = Path(path)
    spans: list[dict[str, object]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn tail: the process died mid-append
            raise ValueError(f"{path}:{number}: malformed trace line") from None
        if not isinstance(entry, dict) or "span" not in entry:
            raise ValueError(f"{path}:{number}: not a span record")
        spans.append(entry)
    return spans
