"""Matching accuracy metrics (paper Section VI-A).

The paper evaluates matchers with the F1 score over the matching class:
``P = TP / (TP + FP)``, ``R = TP / (TP + FN)``, ``F1 = 2PR / (P + R)``.
F1 values are reported on the paper's 0-100 scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.schema import MatchLabel


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion counts for the matching class."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def total(self) -> int:
        """Total number of evaluated pairs."""
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )


@dataclass(frozen=True)
class MatchingMetrics:
    """Precision, recall and F1 (0-100 scale) plus the underlying counts."""

    precision: float
    recall: float
    f1: float
    counts: ConfusionCounts

    @property
    def accuracy(self) -> float:
        """Plain accuracy (0-100 scale), provided for completeness."""
        if self.counts.total == 0:
            return 0.0
        correct = self.counts.true_positives + self.counts.true_negatives
        return 100.0 * correct / self.counts.total


def confusion_counts(
    gold: Sequence[MatchLabel], predicted: Sequence[MatchLabel]
) -> ConfusionCounts:
    """Compute confusion counts between gold and predicted labels.

    Raises:
        ValueError: if the two sequences have different lengths.
    """
    if len(gold) != len(predicted):
        raise ValueError(
            f"gold has {len(gold)} labels but predictions have {len(predicted)}"
        )
    tp = fp = fn = tn = 0
    for gold_label, predicted_label in zip(gold, predicted):
        if predicted_label is MatchLabel.MATCH and gold_label is MatchLabel.MATCH:
            tp += 1
        elif predicted_label is MatchLabel.MATCH and gold_label is MatchLabel.NON_MATCH:
            fp += 1
        elif predicted_label is MatchLabel.NON_MATCH and gold_label is MatchLabel.MATCH:
            fn += 1
        else:
            tn += 1
    return ConfusionCounts(
        true_positives=tp, false_positives=fp, false_negatives=fn, true_negatives=tn
    )


def evaluate_predictions(
    gold: Sequence[MatchLabel], predicted: Sequence[MatchLabel]
) -> MatchingMetrics:
    """Compute precision / recall / F1 (0-100) for the matching class."""
    counts = confusion_counts(gold, predicted)
    tp = counts.true_positives
    precision = tp / (tp + counts.false_positives) if (tp + counts.false_positives) else 0.0
    recall = tp / (tp + counts.false_negatives) if (tp + counts.false_negatives) else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return MatchingMetrics(
        precision=100.0 * precision,
        recall=100.0 * recall,
        f1=100.0 * f1,
        counts=counts,
    )
