"""Evaluation: matching metrics (precision / recall / F1) and report rendering."""

from repro.evaluation.metrics import (
    ConfusionCounts,
    MatchingMetrics,
    confusion_counts,
    evaluate_predictions,
)
from repro.evaluation.report import format_table, format_markdown_table

__all__ = [
    "ConfusionCounts",
    "MatchingMetrics",
    "confusion_counts",
    "evaluate_predictions",
    "format_markdown_table",
    "format_table",
]
