"""Plain-text and markdown table rendering for experiment reports.

The experiment runners and benchmark harnesses print tables shaped like the
paper's (rows = datasets, columns = methods / metrics).  These helpers keep
formatting out of the experiment logic.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render rows of dictionaries as an aligned plain-text table.

    Args:
        rows: one mapping per row; missing keys render as empty cells.
        columns: explicit column ordering; defaults to the keys of the first
            row.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_stringify(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(rendered, widths))
        for rendered in rendered_rows
    )
    return "\n".join((header, separator, body))


def format_markdown_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render rows of dictionaries as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(column) for column in columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = "\n".join(
        "| " + " | ".join(_stringify(row.get(column, "")) for column in columns) + " |"
        for row in rows
    )
    return "\n".join((header, separator, body))
