"""Numpy building blocks of the simulated PLM matchers.

* :class:`RandomFeatureMap` — a fixed random non-linear feature expansion
  (random projection + cosine activation, in the spirit of random Fourier
  features).  It gives the classifier enough capacity to overfit small
  training sets, which is what makes the baselines data hungry like fine-tuned
  PLMs.
* :class:`LogisticRegressionClassifier` — L2-regularised logistic regression
  trained with full-batch gradient descent, optional class weighting (used by
  the RobEM variant to correct class imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RandomFeatureMap:
    """Fixed random non-linear feature expansion.

    Args:
        input_dimension: dimensionality of the raw feature vectors.
        output_dimension: dimensionality of the expanded representation.
        bandwidth: scale of the random projection (larger = smoother features).
        seed: RNG seed; the map is frozen at construction.
    """

    input_dimension: int
    output_dimension: int = 192
    bandwidth: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.input_dimension < 1:
            raise ValueError("input_dimension must be >= 1")
        if self.output_dimension < 1:
            raise ValueError("output_dimension must be >= 1")
        rng = np.random.default_rng(self.seed)
        self._projection = rng.normal(
            scale=self.bandwidth, size=(self.input_dimension, self.output_dimension)
        )
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=self.output_dimension)

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Expand raw features into the random non-linear representation."""
        data = np.atleast_2d(np.asarray(features, dtype=float))
        if data.shape[1] != self.input_dimension:
            raise ValueError(
                f"expected {self.input_dimension} input features, got {data.shape[1]}"
            )
        projected = data @ self._projection + self._phase
        expanded = np.sqrt(2.0 / self.output_dimension) * np.cos(projected)
        # Keep the raw features alongside the expansion so the classifier can
        # still find the simple signal once it has enough data.
        return np.hstack([data, expanded])


class LogisticRegressionClassifier:
    """L2-regularised logistic regression trained with gradient descent.

    Args:
        l2_regularization: weight of the L2 penalty.
        learning_rate: gradient-descent step size.
        epochs: number of full-batch passes.
        class_weighting: ``"none"`` or ``"balanced"`` (inverse-frequency class
            weights, the RobEM-style imbalance correction).
        seed: seed for weight initialisation.
    """

    def __init__(
        self,
        l2_regularization: float = 1e-3,
        learning_rate: float = 0.5,
        epochs: int = 300,
        class_weighting: str = "none",
        seed: int = 0,
    ) -> None:
        if class_weighting not in ("none", "balanced"):
            raise ValueError("class_weighting must be 'none' or 'balanced'")
        self.l2_regularization = l2_regularization
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.class_weighting = class_weighting
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._bias: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    @staticmethod
    def _sigmoid(values: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(values, -35.0, 35.0)))

    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weighting == "none":
            return np.ones_like(labels, dtype=float)
        positives = float(np.sum(labels == 1))
        negatives = float(np.sum(labels == 0))
        total = positives + negatives
        weights = np.where(
            labels == 1,
            total / (2.0 * positives) if positives > 0 else 1.0,
            total / (2.0 * negatives) if negatives > 0 else 1.0,
        )
        return weights

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionClassifier":
        """Fit the classifier on ``features`` / binary ``labels``."""
        data = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(labels, dtype=float).ravel()
        if data.shape[0] != targets.shape[0]:
            raise ValueError(
                f"features have {data.shape[0]} rows but labels have {targets.shape[0]}"
            )
        if data.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")

        rng = np.random.default_rng(self.seed)
        weights = rng.normal(scale=0.01, size=data.shape[1])
        bias = 0.0
        sample_weights = self._sample_weights(targets)
        normaliser = float(np.sum(sample_weights))

        for _ in range(self.epochs):
            logits = data @ weights + bias
            probabilities = self._sigmoid(logits)
            errors = (probabilities - targets) * sample_weights
            gradient_weights = data.T @ errors / normaliser + self.l2_regularization * weights
            gradient_bias = float(np.sum(errors)) / normaliser
            weights -= self.learning_rate * gradient_weights
            bias -= self.learning_rate * gradient_bias

        self._weights = weights
        self._bias = bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return the probability of the matching class for each row.

        Raises:
            RuntimeError: if the classifier has not been fitted.
        """
        if self._weights is None:
            raise RuntimeError("classifier must be fitted before predicting")
        data = np.atleast_2d(np.asarray(features, dtype=float))
        return self._sigmoid(data @ self._weights + self._bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Return binary match predictions for each row."""
        return (self.predict_proba(features) >= threshold).astype(int)
