"""JointBERT-style matcher (Peeters & Bizer, VLDB 2021) — simulated.

JointBERT adds a multi-class entity-identifier objective on top of binary
matching.  The auxiliary objective acts as a regulariser, so our stand-in uses
a slightly smaller expansion and stronger L2 than Ditto, giving it marginally
better small-sample behaviour while converging to a similar plateau.
"""

from __future__ import annotations

from repro.baselines.plm.base import PLMMatcher


class JointBertMatcher(PLMMatcher):
    """Simulated JointBERT: auxiliary-objective regularisation."""

    name = "jointbert"
    expansion_dimension = 224
    l2_regularization = 2e-3
    class_weighting = "none"
    epochs = 320
