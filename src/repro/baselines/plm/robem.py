"""RobEM-style matcher (Akbarian Rastaghi et al., CIKM 2022) — simulated.

RobEM identifies class imbalance as the key robustness issue of PLM-based ER
and corrects for it.  Our stand-in therefore uses balanced class weighting and
stronger regularisation, which makes it the quickest of the three baselines to
catch up with BatchER as training data grows — consistent with the paper's
Figure 7 discussion.
"""

from __future__ import annotations

from repro.baselines.plm.base import PLMMatcher


class RobEMMatcher(PLMMatcher):
    """Simulated RobEM: class-imbalance correction and stronger regularisation."""

    name = "robem"
    expansion_dimension = 192
    l2_regularization = 5e-3
    class_weighting = "balanced"
    epochs = 300
