"""Base class of the simulated PLM matchers (Ditto / JointBERT / RobEM).

A matcher is trained on ``num_training_samples`` labeled pairs from the train
split and evaluated on the test split.  Its cost is the labeling cost of those
training pairs (no API cost), which is what Exp-3 compares against BatchER's
API-plus-labeling cost.
"""

from __future__ import annotations

from abc import ABC

import numpy as np

from repro.baselines.plm.classifier import LogisticRegressionClassifier, RandomFeatureMap
from repro.core.result import RunResult
from repro.cost.labeling_cost import labeling_cost
from repro.cost.tracker import CostBreakdown
from repro.data.schema import Dataset, EntityPair, MatchLabel
from repro.evaluation.metrics import evaluate_predictions
from repro.features.structure_aware import StructureAwareExtractor

#: Similarity functions stacked into the raw feature vector of each pair.
RAW_SIMILARITIES = ("levenshtein_ratio", "jaccard", "overlap")


class PLMMatcher(ABC):
    """Trainable matcher with a learning curve, standing in for a fine-tuned PLM.

    Subclasses set the class attributes below to model the (mild) behavioural
    differences between Ditto, JointBERT and RobEM.

    Args:
        seed: controls the training subset, the random feature map and the
            classifier initialisation.
    """

    #: Human-readable method name recorded on results.
    name: str = "plm"
    #: Dimension of the random non-linear feature expansion (capacity).
    expansion_dimension: int = 192
    #: L2 regularisation of the logistic head.
    l2_regularization: float = 1e-3
    #: Class weighting mode (``"none"`` or ``"balanced"``).
    class_weighting: str = "none"
    #: Gradient-descent epochs.
    epochs: int = 300

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._extractors: list[StructureAwareExtractor] | None = None
        self._feature_map: RandomFeatureMap | None = None
        self._classifier: LogisticRegressionClassifier | None = None

    # -- featurisation -------------------------------------------------------

    def _build_extractors(self, attributes: tuple[str, ...]) -> list[StructureAwareExtractor]:
        return [
            StructureAwareExtractor(attributes, similarity=similarity)
            for similarity in RAW_SIMILARITIES
        ]

    def _raw_features(self, pairs: list[EntityPair]) -> np.ndarray:
        if self._extractors is None:
            raise RuntimeError("matcher must be fitted before featurising pairs")
        blocks = [extractor.extract_matrix(pairs) for extractor in self._extractors]
        return np.hstack(blocks)

    # -- training / prediction -----------------------------------------------

    def fit(self, dataset: Dataset, num_training_samples: int) -> "PLMMatcher":
        """Fine-tune the matcher on the first ``num_training_samples`` train pairs.

        Raises:
            ValueError: if the requested sample count is not positive.
        """
        if num_training_samples < 1:
            raise ValueError(
                f"num_training_samples must be >= 1, got {num_training_samples}"
            )
        train_pairs = list(dataset.splits.train)
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(train_pairs))
        chosen = [train_pairs[index] for index in order[:num_training_samples]]
        self.num_training_samples = len(chosen)

        self._extractors = self._build_extractors(dataset.attributes)
        raw = self._raw_features(chosen)
        self._feature_map = RandomFeatureMap(
            input_dimension=raw.shape[1],
            output_dimension=self.expansion_dimension,
            seed=self.seed + 1,
        )
        expanded = self._feature_map.transform(raw)
        labels = np.array([int(pair.label) for pair in chosen])
        self._classifier = LogisticRegressionClassifier(
            l2_regularization=self.l2_regularization,
            epochs=self.epochs,
            class_weighting=self.class_weighting,
            seed=self.seed + 2,
        ).fit(expanded, labels)
        return self

    def predict(self, pairs: list[EntityPair]) -> list[MatchLabel]:
        """Predict match / non-match for each pair.

        Raises:
            RuntimeError: if the matcher has not been fitted.
        """
        if self._classifier is None or self._feature_map is None:
            raise RuntimeError("matcher must be fitted before predicting")
        raw = self._raw_features(pairs)
        expanded = self._feature_map.transform(raw)
        predictions = self._classifier.predict(expanded)
        return [MatchLabel(int(value)) for value in predictions]

    def evaluate(self, dataset: Dataset, num_training_samples: int) -> RunResult:
        """Train on ``num_training_samples`` pairs and evaluate on the test split."""
        self.fit(dataset, num_training_samples)
        test_pairs = list(dataset.splits.test)
        predictions = self.predict(test_pairs)
        gold = [pair.label for pair in test_pairs]
        metrics = evaluate_predictions(gold, predictions)
        cost = CostBreakdown(
            api_cost=0.0,
            labeling_cost=labeling_cost(self.num_training_samples),
            num_labeled_pairs=self.num_training_samples,
        )
        return RunResult(
            dataset=dataset.name,
            method=self.name,
            metrics=metrics,
            cost=cost,
            num_questions=len(test_pairs),
            predictions=tuple(predictions),
            config={"num_training_samples": self.num_training_samples, "seed": self.seed},
        )
