"""Simulated PLM-based matchers (Ditto, JointBERT, RobEM).

The paper fine-tunes Transformer PLMs on hundreds to thousands of labeled
pairs.  Offline we substitute trainable matchers that share the property
Exp-3 actually measures: accuracy grows with the number of labeled training
pairs and saturates, while small training sets overfit (see DESIGN.md).  Each
matcher is a logistic-regression head over a high-dimensional random non-linear
feature expansion of per-attribute similarity signals — high capacity relative
to small training sets, which is what makes the baselines *data hungry* like
their PLM counterparts.
"""

from repro.baselines.plm.base import PLMMatcher
from repro.baselines.plm.classifier import LogisticRegressionClassifier, RandomFeatureMap
from repro.baselines.plm.ditto import DittoMatcher
from repro.baselines.plm.jointbert import JointBertMatcher
from repro.baselines.plm.robem import RobEMMatcher

__all__ = [
    "DittoMatcher",
    "JointBertMatcher",
    "LogisticRegressionClassifier",
    "PLMMatcher",
    "RandomFeatureMap",
    "RobEMMatcher",
]
