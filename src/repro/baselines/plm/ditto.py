"""Ditto-style matcher (Li et al., VLDB 2021) — simulated.

Ditto casts ER as sequence-pair classification over a fine-tuned RoBERTa.  Our
stand-in uses the largest feature expansion (highest capacity) and plain
unweighted training, which gives it the most pronounced data hunger of the
three baselines — matching its position in the paper's Figure 7, where it needs
the most labeled pairs to converge.
"""

from __future__ import annotations

from repro.baselines.plm.base import PLMMatcher


class DittoMatcher(PLMMatcher):
    """Simulated Ditto: high-capacity matcher, no class weighting."""

    name = "ditto"
    expansion_dimension = 256
    l2_regularization = 5e-4
    class_weighting = "none"
    epochs = 350
