"""Baselines the paper compares BatchER against.

* :mod:`repro.baselines.plm` — supervised, fine-tuned PLM-style matchers
  (Ditto, JointBERT, RobEM) simulated as trainable feature-based classifiers
  with learning-curve behaviour (Exp-3 / Figure 7);
* :mod:`repro.baselines.manual_prompt` — the ManualPrompt LLM baseline: standard
  prompting with hand-designed demonstrations (Exp-4 / Table V).
"""

from repro.baselines.manual_prompt import ManualPromptBaseline
from repro.baselines.plm import DittoMatcher, JointBertMatcher, RobEMMatcher, PLMMatcher

__all__ = [
    "DittoMatcher",
    "JointBertMatcher",
    "ManualPromptBaseline",
    "PLMMatcher",
    "RobEMMatcher",
]
