"""ManualPrompt baseline (Narayan et al., VLDB 2023) — Exp-4 / Table V.

The original ManualPrompt queries the LLM one question at a time with a small
set of *hand-designed* demonstrations crafted by a domain expert.  We simulate
the expert's curation with a deterministic heuristic over the train split:
pick prototypical cases that span the decision space —

* the clearest matching pair (highest structural similarity among matches),
* a *hard* non-match (the non-matching pair that looks most like a match),
* an easy non-match (lowest similarity), and
* a borderline match (lowest-similarity matching pair),

repeated until the demonstration budget is filled.  This mirrors what a good
prompt engineer does by hand, and gives the baseline the paper's profile:
strong F1, but standard-prompting API cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BatcherConfig
from repro.core.result import RunResult
from repro.core.standard import StandardPromptingER
from repro.data.schema import Dataset, EntityPair, MatchLabel
from repro.features.structure_aware import StructureAwareExtractor
from repro.llm.base import LLMClient


class ManualPromptBaseline:
    """Standard prompting with expert-style, hand-picked demonstrations.

    Args:
        config: shared knobs (model, demonstration budget, question cap, seed).
        llm: optional pre-built LLM client.
    """

    def __init__(self, config: BatcherConfig | None = None, llm: LLMClient | None = None) -> None:
        self.config = config or BatcherConfig()
        self._llm = llm

    def design_demonstrations(self, dataset: Dataset) -> list[EntityPair]:
        """Pick prototypical demonstrations from the train split.

        Returns at most ``config.num_demonstrations`` labeled pairs covering the
        clearest and hardest cases of both classes.
        """
        pool = list(dataset.splits.train)
        if not pool:
            raise ValueError(f"dataset {dataset.name!r} has an empty train split")
        extractor = StructureAwareExtractor(dataset.attributes)
        features = extractor.extract_matrix(pool)
        scores = features.mean(axis=1)

        match_indices = [i for i, pair in enumerate(pool) if pair.label is MatchLabel.MATCH]
        non_match_indices = [
            i for i, pair in enumerate(pool) if pair.label is MatchLabel.NON_MATCH
        ]

        ordered: list[int] = []

        def add(index: int | None) -> None:
            if index is not None and index not in ordered:
                ordered.append(index)

        if match_indices:
            match_scores = scores[match_indices]
            add(match_indices[int(np.argmax(match_scores))])   # clearest match
            add(match_indices[int(np.argmin(match_scores))])   # borderline match
        if non_match_indices:
            non_match_scores = scores[non_match_indices]
            add(non_match_indices[int(np.argmax(non_match_scores))])  # hard non-match
            add(non_match_indices[int(np.argmin(non_match_scores))])  # easy non-match

        # Fill the remaining budget alternating between medium-difficulty cases
        # of both classes.
        budget = self.config.num_demonstrations
        remaining_matches = sorted(
            (index for index in match_indices if index not in ordered),
            key=lambda index: -scores[index],
        )
        remaining_non_matches = sorted(
            (index for index in non_match_indices if index not in ordered),
            key=lambda index: -scores[index],
        )
        take_from_match = True
        while len(ordered) < budget and (remaining_matches or remaining_non_matches):
            source = remaining_matches if take_from_match else remaining_non_matches
            if source:
                add(source.pop(len(source) // 2))
            take_from_match = not take_from_match

        return [pool[index] for index in ordered[:budget]]

    def run(self, dataset: Dataset) -> RunResult:
        """Run the ManualPrompt baseline on the dataset's test split."""
        demonstrations = self.design_demonstrations(dataset)
        pipeline = StandardPromptingER(
            config=self.config,
            demonstrations=demonstrations,
            method_name="manual-prompt",
            llm=self._llm,
        )
        return pipeline.run(dataset)
