"""Tests for dataset splitting and the dataset registry."""

import pytest

from repro.data.registry import available_datasets, dataset_statistics, load_dataset
from repro.data.schema import CandidateSet, EntityPair, MatchLabel, Record
from repro.data.splits import split_candidate_set


def make_labeled_pairs(num_matches, num_non_matches):
    pairs = []
    for i in range(num_matches + num_non_matches):
        label = MatchLabel.MATCH if i < num_matches else MatchLabel.NON_MATCH
        pairs.append(
            EntityPair(
                pair_id=f"p{i}",
                left=Record(f"A-{i}", {"name": f"left {i}"}),
                right=Record(f"B-{i}", {"name": f"right {i}"}),
                label=label,
            )
        )
    return CandidateSet(tuple(pairs))


class TestSplits:
    def test_ratio_sizes(self):
        candidates = make_labeled_pairs(20, 80)
        splits = split_candidate_set(candidates, seed=0)
        assert splits.total_pairs() == 100
        assert len(splits.train) == pytest.approx(60, abs=2)
        assert len(splits.validation) == pytest.approx(20, abs=2)
        assert len(splits.test) == pytest.approx(20, abs=2)

    def test_stratification_preserves_match_rate(self):
        candidates = make_labeled_pairs(30, 120)
        splits = split_candidate_set(candidates, seed=1)
        overall_rate = 30 / 150
        for part in (splits.train, splits.validation, splits.test):
            rate = part.match_count() / len(part)
            assert rate == pytest.approx(overall_rate, abs=0.06)

    def test_no_overlap_between_splits(self):
        candidates = make_labeled_pairs(10, 40)
        splits = split_candidate_set(candidates, seed=2)
        train_ids = {p.pair_id for p in splits.train}
        validation_ids = {p.pair_id for p in splits.validation}
        test_ids = {p.pair_id for p in splits.test}
        assert not (train_ids & validation_ids)
        assert not (train_ids & test_ids)
        assert not (validation_ids & test_ids)

    def test_unlabeled_pairs_rejected(self):
        pair = EntityPair("p0", Record("A-0", {"name": "x"}), Record("B-0", {"name": "y"}), None)
        with pytest.raises(ValueError, match="unlabeled"):
            split_candidate_set(CandidateSet((pair,)))

    def test_invalid_ratio_rejected(self):
        candidates = make_labeled_pairs(5, 5)
        with pytest.raises(ValueError, match="positive"):
            split_candidate_set(candidates, ratios=(3, 0, 1))

    def test_deterministic_given_seed(self):
        candidates = make_labeled_pairs(15, 60)
        first = split_candidate_set(candidates, seed=9)
        second = split_candidate_set(candidates, seed=9)
        assert [p.pair_id for p in first.test] == [p.pair_id for p in second.test]


class TestRegistry:
    def test_available_datasets(self):
        assert set(available_datasets()) == {"wa", "ab", "ag", "ds", "da", "fz", "ia", "beer"}

    def test_load_dataset_case_insensitive(self):
        dataset = load_dataset("BEER", seed=7)
        assert dataset.name == "Beer"

    def test_load_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("movies")

    def test_loading_is_cached(self):
        first = load_dataset("beer", seed=7)
        second = load_dataset("beer", seed=7)
        assert first is second

    def test_different_scale_not_shared(self):
        full = load_dataset("beer", seed=7)
        small = load_dataset("beer", seed=7, scale=0.5)
        assert len(small.candidate_pairs) < len(full.candidate_pairs)

    def test_dataset_statistics_rows(self):
        rows = dataset_statistics(seed=7, scale=0.05)
        assert len(rows) == 8
        assert all(row["num_matches"] <= row["num_pairs"] for row in rows)
