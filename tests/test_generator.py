"""Tests for the synthetic Magellan-style benchmark generator."""

import pytest

from repro.data.generator import GeneratorConfig, MagellanStyleGenerator, generate_dataset
from repro.data.schema import MatchLabel
from repro.data.specs import DATASET_SPECS, get_spec


class TestGeneratorConfig:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(scale=0.0)

    def test_hard_negative_fraction_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(hard_negative_fraction=1.5)

    def test_none_hard_fraction_allowed(self):
        GeneratorConfig(hard_negative_fraction=None)


class TestSpecs:
    def test_all_eight_datasets_registered(self):
        assert set(DATASET_SPECS) == {"wa", "ab", "ag", "ds", "da", "fz", "ia", "beer"}

    def test_get_spec_case_insensitive(self):
        assert get_spec("WA").code == "WA"
        assert get_spec("beer").full_name == "BeerAdvo-RateBeer"

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("imdb")

    def test_table2_statistics_match_paper(self):
        # The spec-level pair/match counts are exactly the paper's Table II.
        expected = {
            "wa": (10242, 962),
            "ab": (9575, 1028),
            "ag": (11460, 1167),
            "ds": (28707, 5347),
            "da": (12363, 2220),
            "fz": (946, 110),
            "ia": (532, 132),
            "beer": (450, 68),
        }
        for code, (pairs, matches) in expected.items():
            spec = get_spec(code)
            assert (spec.num_pairs, spec.num_matches) == (pairs, matches)

    def test_attribute_counts_match_paper(self):
        expected = {"wa": 5, "ab": 3, "ag": 3, "ds": 4, "da": 4, "fz": 6, "ia": 8, "beer": 4}
        for code, count in expected.items():
            assert len(get_spec(code).attributes) == count

    def test_entity_factories_produce_full_schemas(self):
        import random

        rng = random.Random(0)
        for spec in DATASET_SPECS.values():
            entity = spec.entity_factory(rng, 0)
            assert set(entity) == set(spec.attributes)
            variant = spec.variant_factory(entity, rng)
            assert set(variant) == set(spec.attributes)
            assert variant != entity


class TestGeneratedDatasets:
    def test_full_scale_counts_match_spec(self):
        dataset = generate_dataset("beer", seed=3, scale=1.0)
        spec = get_spec("beer")
        assert len(dataset.candidate_pairs) == spec.num_pairs
        assert dataset.candidate_pairs.match_count() == spec.num_matches

    def test_scaled_counts_are_proportional(self):
        dataset = generate_dataset("wa", seed=3, scale=0.02)
        spec = get_spec("wa")
        assert len(dataset.candidate_pairs) == pytest.approx(spec.num_pairs * 0.02, rel=0.1)
        assert dataset.candidate_pairs.match_count() == pytest.approx(
            spec.num_matches * 0.02, rel=0.15
        )

    def test_every_pair_is_labeled(self, beer_dataset):
        assert all(pair.is_labeled for pair in beer_dataset.candidate_pairs)

    def test_records_follow_schema(self, beer_dataset):
        for record in list(beer_dataset.table_a)[:20]:
            assert set(record.values) <= set(beer_dataset.attributes)

    def test_reproducible_given_seed(self):
        first = generate_dataset("fz", seed=11, scale=0.3)
        second = generate_dataset("fz", seed=11, scale=0.3)
        assert [p.pair_id for p in first.candidate_pairs] == [
            p.pair_id for p in second.candidate_pairs
        ]
        assert [p.label for p in first.splits.test] == [p.label for p in second.splits.test]
        first_values = [dict(p.left.values) for p in first.candidate_pairs[:20]]
        second_values = [dict(p.left.values) for p in second.candidate_pairs[:20]]
        assert first_values == second_values

    def test_different_seeds_differ(self):
        first = generate_dataset("fz", seed=1, scale=0.3)
        second = generate_dataset("fz", seed=2, scale=0.3)
        first_values = [dict(p.left.values) for p in first.candidate_pairs[:20]]
        second_values = [dict(p.left.values) for p in second.candidate_pairs[:20]]
        assert first_values != second_values

    def test_matches_are_more_similar_than_non_matches(self, beer_dataset, beer_extractor):
        # The structural similarity of matching pairs should exceed that of
        # non-matching pairs on average — otherwise the benchmark is unusable.
        match_scores, non_match_scores = [], []
        for pair in beer_dataset.candidate_pairs:
            score = float(beer_extractor.extract(pair).mean())
            if pair.label is MatchLabel.MATCH:
                match_scores.append(score)
            else:
                non_match_scores.append(score)
        assert sum(match_scores) / len(match_scores) > sum(non_match_scores) / len(non_match_scores) + 0.1

    def test_generator_respects_hard_negative_fraction_zero(self):
        spec = get_spec("beer")
        generator = MagellanStyleGenerator(
            spec, GeneratorConfig(seed=0, scale=0.2, hard_negative_fraction=0.0)
        )
        dataset = generator.generate()
        assert dataset.candidate_pairs.match_count() == generator.target_num_matches()

    def test_record_ids_unique_per_table(self, beer_dataset):
        ids_a = [record.record_id for record in beer_dataset.table_a]
        ids_b = [record.record_id for record in beer_dataset.table_b]
        assert len(ids_a) == len(set(ids_a))
        assert len(ids_b) == len(set(ids_b))
