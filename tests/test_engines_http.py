"""HTTP engine tests: dialects, usage accounting, structured output, faults.

Every test is hermetic: the engines talk to scripted transports or to the
simulated backend transport, never to a network, and every clock is fake.
"""

import json

import pytest

from repro.engines import (
    BATCH_ANSWERS_SCHEMA,
    AnthropicEngine,
    AnthropicEngineConfig,
    FakeClock,
    FlakyTransport,
    OpenAIEngineConfig,
    ScriptedTransport,
    SimulatedBackendTransport,
    TerminalTransportError,
    create_engine,
    render_structured_answers,
)
from repro.engines.faults import extract_prompt
from repro.llm.simulated import SimulatedLLM

PROMPT = "Q1: do entity A and entity B match? Answer 'A1: Yes' or 'A1: No'."


def openai_payload(text, prompt_tokens=20, completion_tokens=7):
    return {
        "choices": [{"index": 0, "message": {"role": "assistant", "content": text}}],
        "usage": {
            "prompt_tokens": prompt_tokens,
            "completion_tokens": completion_tokens,
        },
    }


def anthropic_payload(text, input_tokens=20, output_tokens=7):
    return {
        "content": [{"type": "text", "text": text}],
        "usage": {"input_tokens": input_tokens, "output_tokens": output_tokens},
    }


def make_openai(script_or_transport, **config_overrides):
    transport = (
        script_or_transport
        if not isinstance(script_or_transport, list)
        else ScriptedTransport(script_or_transport)
    )
    return create_engine(
        "openai",
        transport=transport,
        clock=FakeClock(),
        api_key="sk-test",
        **config_overrides,
    )


class TestOpenAIDialect:
    def test_request_shape_and_auth(self):
        transport = ScriptedTransport([openai_payload("A1: Yes")])
        engine = make_openai(transport, model="gpt-3.5-03", temperature=0.5, seed=9)
        engine.complete(PROMPT)
        request = transport.requests[0]
        assert request.url == "https://api.openai.com/v1/chat/completions"
        assert request.headers["Authorization"] == "Bearer sk-test"
        assert request.payload["model"] == "gpt-3.5-turbo-0301"
        assert request.payload["messages"] == [{"role": "user", "content": PROMPT}]
        assert request.payload["temperature"] == 0.5
        assert request.payload["seed"] == 9
        assert request.estimated_tokens > 0

    def test_usage_comes_from_provider_counts(self):
        engine = make_openai([openai_payload("A1: Yes", 123, 45)])
        response = engine.complete(PROMPT)
        assert response.text == "A1: Yes"
        assert response.prompt_tokens == 123
        assert response.completion_tokens == 45
        assert engine.usage.num_calls == 1
        assert engine.usage.prompt_tokens == 123
        assert engine.usage.completion_tokens == 45

    def test_missing_usage_falls_back_to_tokenizer(self):
        payload = openai_payload("A1: Yes")
        del payload["usage"]
        engine = make_openai([payload])
        response = engine.complete(PROMPT)
        assert response.prompt_tokens == engine.tokenizer.count(PROMPT)
        assert response.completion_tokens == engine.tokenizer.count("A1: Yes")

    def test_missing_api_key_raises(self):
        engine = create_engine(
            "openai", transport=ScriptedTransport([]), api_key_env="MISSING_TEST_KEY"
        )
        with pytest.raises(RuntimeError, match="MISSING_TEST_KEY"):
            engine.complete(PROMPT)

    def test_compatible_server_needs_no_key(self):
        transport = ScriptedTransport([openai_payload("A1: No")])
        engine = create_engine(
            "openai_compatible",
            transport=transport,
            api_key_env="MISSING_TEST_KEY",
            model="llama2-70b",
        )
        assert engine.complete(PROMPT).text == "A1: No"
        assert "Authorization" not in transport.requests[0].headers
        assert transport.requests[0].payload["model"] == "llama2-70b"


class TestAnthropicDialect:
    def make(self, script, **overrides):
        return create_engine(
            "anthropic",
            transport=ScriptedTransport(script),
            clock=FakeClock(),
            api_key="sk-ant",
            **overrides,
        )

    def test_request_shape_and_auth(self):
        engine = self.make([anthropic_payload("A1: Yes")])
        engine.complete(PROMPT)
        request = engine.transport.inner.requests[0]
        assert request.url == "https://api.anthropic.com/v1/messages"
        assert request.headers["x-api-key"] == "sk-ant"
        assert request.headers["anthropic-version"] == "2023-06-01"
        assert "max_tokens" in request.payload

    def test_usage_from_input_output_tokens(self):
        engine = self.make([anthropic_payload("A1: Yes", 200, 31)])
        response = engine.complete(PROMPT)
        assert (response.prompt_tokens, response.completion_tokens) == (200, 31)

    def test_structured_mode_uses_forced_tool(self):
        document = {"answers": [{"index": 1, "match": True}]}
        payload = {
            "content": [
                {"type": "tool_use", "name": "record_batch_answers", "input": document}
            ],
            "usage": {"input_tokens": 10, "output_tokens": 5},
        }
        engine = self.make([payload], json_schema_mode=True)
        response = engine.complete(PROMPT)
        assert response.text == "A1: Yes"
        request = engine.transport.inner.requests[0]
        assert request.payload["tool_choice"] == {
            "type": "tool",
            "name": "record_batch_answers",
        }
        assert request.payload["tools"][0]["input_schema"] == dict(BATCH_ANSWERS_SCHEMA)


class TestStructuredOutput:
    def test_render_structured_answers(self):
        document = json.dumps(
            {"answers": [{"index": 1, "match": True}, {"index": 2, "match": False}]}
        )
        assert render_structured_answers(document) == "A1: Yes\nA2: No"

    @pytest.mark.parametrize(
        "document",
        ["not json", "{}", '{"answers": [{"index": "one", "match": true}]}'],
    )
    def test_render_rejects_malformed_documents(self, document):
        with pytest.raises(ValueError):
            render_structured_answers(document)

    def test_openai_json_schema_mode_is_transparent(self):
        document = json.dumps({"answers": [{"index": 1, "match": False}]})
        transport = ScriptedTransport([openai_payload(document)])
        engine = make_openai(transport, json_schema_mode=True)
        response = engine.complete(PROMPT)
        # The caller sees canonical answer lines, parseable by the regex oracle.
        assert response.text == "A1: No"
        request = transport.requests[0]
        assert request.payload["response_format"]["type"] == "json_schema"
        assert (
            request.payload["response_format"]["json_schema"]["schema"]
            == dict(BATCH_ANSWERS_SCHEMA)
        )

    def test_structured_complete_returns_raw_document(self):
        document = json.dumps({"answers": [{"index": 1, "match": True}]})
        engine = make_openai([openai_payload(document)])
        response = engine.structured_complete(PROMPT, BATCH_ANSWERS_SCHEMA)
        assert json.loads(response.text) == {"answers": [{"index": 1, "match": True}]}

    def test_structured_complete_unsupported_engine_raises(self):
        engine = create_engine("openai_compatible", transport=ScriptedTransport([]))
        with pytest.raises(NotImplementedError, match="openai_compatible"):
            engine.structured_complete(PROMPT, BATCH_ANSWERS_SCHEMA)

    def test_simulated_engine_has_no_structured_mode(self):
        engine = create_engine("simulated")
        with pytest.raises(NotImplementedError, match="simulated"):
            engine.structured_complete(PROMPT, BATCH_ANSWERS_SCHEMA)


class TestSimulatedBackendTransport:
    def test_serves_simulated_completions(self):
        sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        engine = make_openai(SimulatedBackendTransport(sim))
        response = engine.complete(PROMPT)
        assert response.text == sim._generate(PROMPT)

    def test_anthropic_shape(self):
        sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        engine = create_engine(
            "anthropic",
            transport=SimulatedBackendTransport(sim, shape="anthropic"),
            api_key="sk-ant",
        )
        assert engine.complete(PROMPT).text == sim._generate(PROMPT)

    def test_extract_prompt_skips_system_messages(self):
        payload = {
            "messages": [
                {"role": "system", "content": "be terse"},
                {"role": "user", "content": "hello"},
            ]
        }
        assert extract_prompt(payload) == "hello"

    def test_prompt_is_pure_function_of_request(self):
        sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        backend = SimulatedBackendTransport(sim)
        engine = make_openai(backend)
        first = engine.complete(PROMPT)
        second = engine.complete(PROMPT)
        assert first.text == second.text
        assert backend.calls == 2


class TestRetriesAndUsage:
    def test_retry_after_flake_gives_identical_result_and_single_usage_record(self):
        sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        clean = make_openai(SimulatedBackendTransport(sim))
        expected = clean.complete(PROMPT)

        flaky_sim = SimulatedLLM(model_name="gpt-3.5-03", seed=0)
        flaky = make_openai(
            FlakyTransport(SimulatedBackendTransport(flaky_sim), fail_at={1, 2}),
            backoff_base_seconds=1.0,
        )
        response = flaky.complete(PROMPT)
        assert response == expected
        # Two failed attempts, one success — exactly one usage record.
        assert flaky.usage.num_calls == 1
        assert flaky.usage.prompt_tokens == expected.prompt_tokens
        stats = flaky.transport.stats()
        assert stats == {"requests": 1, "attempts": 3, "retries": 2, "failures": 0}

    def test_terminal_failure_records_no_usage(self):
        engine = make_openai([400])
        with pytest.raises(TerminalTransportError):
            engine.complete(PROMPT)
        assert engine.usage.num_calls == 0
        assert engine.usage.total_tokens == 0

    def test_exhausted_retries_record_no_usage(self):
        engine = make_openai([503] * 5, max_attempts=5)
        with pytest.raises(Exception):
            engine.complete(PROMPT)
        assert engine.usage.num_calls == 0

    def test_describe_surfaces_transport_counters(self):
        engine = make_openai(
            [503, openai_payload("A1: Yes")], requests_per_second=100.0
        )
        engine.complete(PROMPT)
        snapshot = engine.describe()
        assert snapshot["transport"]["retries"] == 1
        assert snapshot["transport"]["requests"] == 1
        assert "throttled_requests" in snapshot["transport"]
        assert snapshot["requests"] == 1  # usage-level counter
