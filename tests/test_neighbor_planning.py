"""Tests for the sparse neighbor-graph planning subsystem.

The contract under test is *equivalence*: for any input, planning over the
sparse blocked path (forced via ``NeighborPlanner(dense_threshold=0)``) must
produce exactly the plans of the historical dense-matrix path — DBSCAN
labels, covering selections, set-cover solutions and end-to-end pipeline
results alike.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.batching.diversity_batching import DiversityQuestionBatcher
from repro.clustering.dbscan import DBSCAN
from repro.clustering.distance import cross_distances, pairwise_distances
from repro.clustering.neighbors import (
    LSHConfig,
    NeighborGraph,
    NeighborPlanner,
    build_cross_neighbor_graph,
    build_lsh_neighbor_graph,
    build_neighbor_graph,
    default_planner,
    sample_percentile_radius,
)
from repro.data.schema import EntityPair, MatchLabel, Record
from repro.selection.covering import CoveringSelector

SPARSE = dict(dense_threshold=0, block_size=13)


def random_features(seed, n=None, d=None, degenerate=True):
    rng = np.random.default_rng(seed)
    n = n if n is not None else int(rng.integers(2, 120))
    d = d if d is not None else int(rng.integers(1, 9))
    features = rng.normal(size=(n, d))
    if degenerate:
        if seed % 4 == 0:
            features[: n // 3] = features[0]  # duplicate rows
        if seed % 7 == 0:
            features[:] = 0.0  # all-zero vectors
        elif seed % 5 == 0:
            features[n // 2 :] = 0.0  # mixed zero rows
    return features


def make_pair(index, label=MatchLabel.MATCH):
    values = {"name": f"item {index}", "price": str(index)}
    return EntityPair(
        pair_id=f"p{index}",
        left=Record(record_id=f"l{index}", values=values),
        right=Record(record_id=f"r{index}", values=values),
        label=label,
    )


class TestNeighborGraph:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    @pytest.mark.parametrize("inclusive", [True, False])
    def test_blocked_graph_matches_dense_adjacency(self, metric, inclusive):
        for seed in range(8):
            features = random_features(seed)
            distances = pairwise_distances(features, metric=metric)
            positive = distances[distances > 0]
            radius = float(np.median(positive)) if positive.size else 0.5
            graph = build_neighbor_graph(
                features, radius, metric=metric, inclusive=inclusive, block_size=7
            )
            dense = NeighborGraph.from_dense(
                distances, radius, metric=metric, inclusive=inclusive
            )
            assert np.array_equal(graph.indptr, dense.indptr)
            assert np.array_equal(graph.indices, dense.indices)

    def test_neighbors_sorted_and_self_excluded(self):
        features = random_features(3)
        graph = build_neighbor_graph(features, 1.0, block_size=5)
        for row in range(graph.num_rows):
            neighbours = graph.neighbors(row)
            assert row not in neighbours
            assert np.array_equal(neighbours, np.sort(neighbours))

    def test_empty_and_single_point(self):
        empty = build_neighbor_graph(np.zeros((0, 3)), 1.0)
        assert empty.num_rows == 0 and empty.num_edges == 0
        single = build_neighbor_graph(np.zeros((1, 3)), 1.0)
        assert single.num_rows == 1 and single.num_edges == 0

    def test_transpose_roundtrip(self):
        features = random_features(9)
        graph = build_neighbor_graph(features, 1.5, block_size=11)
        transposed = graph.transpose()
        assert transposed.num_rows == graph.num_cols
        back = transposed.transpose()
        assert np.array_equal(back.indptr, graph.indptr)
        assert np.array_equal(back.indices, graph.indices)

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_cross_graph_matches_dense_and_nearest(self, metric):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            left = random_features(seed, n=int(rng.integers(1, 60)))
            right = random_features(
                seed + 100, n=int(rng.integers(1, 40)), d=left.shape[1]
            )
            distances = cross_distances(left, right, metric=metric)
            radius = float(np.median(distances))
            graph, nearest = build_cross_neighbor_graph(
                left, right, radius, metric=metric, block_size=9, return_nearest=True
            )
            rows, cols = np.nonzero(distances < radius)
            assert np.array_equal(graph.indices, cols)
            assert np.array_equal(graph.degrees(), np.bincount(rows, minlength=len(left)))
            assert np.array_equal(nearest, np.argmin(distances, axis=1))

    def test_cross_graph_rejects_empty_right(self):
        with pytest.raises(ValueError):
            build_cross_neighbor_graph(np.zeros((2, 3)), np.zeros((0, 3)), 1.0)


class TestSamplePercentileRadius:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_exact_regime_matches_dense_percentile(self, metric):
        for seed in range(8):
            features = random_features(seed)
            n = features.shape[0]
            distances = pairwise_distances(features, metric=metric)
            off = distances[~np.eye(n, dtype=bool)]
            positive = off[off > 0.0]
            expected = (
                1.0 if positive.size == 0 else float(np.percentile(positive, 15.0))
            )
            assert sample_percentile_radius(features, 15.0, metric=metric) == expected

    def test_sampled_regime_deterministic_and_positive(self):
        features = np.random.default_rng(0).normal(size=(300, 4))
        first = sample_percentile_radius(features, 10.0, sample_size=2000, seed=3)
        second = sample_percentile_radius(features, 10.0, sample_size=2000, seed=3)
        other_seed = sample_percentile_radius(features, 10.0, sample_size=2000, seed=4)
        assert first == second > 0.0
        assert other_seed > 0.0

    def test_degenerate_inputs(self):
        assert sample_percentile_radius(np.zeros((0, 3)), 15.0) == 1.0
        assert sample_percentile_radius(np.zeros((1, 3)), 15.0) == 1.0
        assert sample_percentile_radius(np.zeros((40, 3)), 15.0) == 1.0
        # identical points in the sampled regime: every distance is zero
        identical = np.ones((200, 2))
        assert sample_percentile_radius(identical, 15.0, sample_size=100) == 1.0

    def test_validation(self):
        features = np.zeros((3, 2))
        with pytest.raises(ValueError):
            sample_percentile_radius(features, 0.0)
        with pytest.raises(ValueError):
            sample_percentile_radius(features, 15.0, sample_size=0)
        with pytest.raises(ValueError):
            sample_percentile_radius(np.zeros(3), 15.0)


class TestNeighborPlanner:
    def test_routing_thresholds(self):
        planner = NeighborPlanner(dense_threshold=10)
        assert planner.use_dense(10) and not planner.use_dense(11)
        assert planner.use_dense_cross(10, 10) and not planner.use_dense_cross(101, 1)
        forced = NeighborPlanner(dense_threshold=0)
        assert not forced.use_dense(1)
        assert not forced.use_dense_cross(1, 1)

    def test_resolve_radius_matches_dense_rule(self):
        features = random_features(2)
        n = features.shape[0]
        distances = pairwise_distances(features)
        off = distances[~np.eye(n, dtype=bool)]
        expected = float(np.percentile(off[off > 0.0], 15.0))
        dense = NeighborPlanner(dense_threshold=4096)
        sparse = NeighborPlanner(**SPARSE)
        assert dense.resolve_radius(features, 15.0) == expected
        # the sparse planner's exact regime reproduces the same value
        assert sparse.resolve_radius(features, 15.0) == expected

    def test_stats_counters(self):
        features = random_features(1, n=20)
        planner = NeighborPlanner(**SPARSE)
        planner.graph(features, 1.0)
        planner.resolve_radius(features, 15.0)
        planner.cross_graph(features, features, 1.0)
        stats = planner.stats().to_dict()
        assert stats["sparse_graphs"] == 1
        assert stats["dense_graphs"] == 0
        assert stats["cross_joins"] == 1
        assert stats["edges_built"] > 0
        dense = NeighborPlanner(dense_threshold=4096)
        dense.graph(features, 1.0)
        assert dense.stats().dense_graphs == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborPlanner(dense_threshold=-1)
        with pytest.raises(ValueError):
            NeighborPlanner(block_size=0)
        with pytest.raises(ValueError):
            NeighborPlanner(sample_size=0)

    def test_default_planner_is_shared(self):
        assert default_planner() is default_planner()


class TestSparseDBSCANEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    @pytest.mark.parametrize("min_samples", [1, 2, 3])
    def test_labels_match_dense_across_seeds(self, metric, min_samples):
        for seed in range(12):
            features = random_features(seed)
            dense = DBSCAN(min_samples=min_samples, metric=metric).fit(features)
            sparse = DBSCAN(
                min_samples=min_samples,
                metric=metric,
                planner=NeighborPlanner(**SPARSE),
            ).fit(features)
            assert np.array_equal(dense.labels, sparse.labels)
            assert dense.num_clusters == sparse.num_clusters
            assert np.array_equal(dense.core_point_mask, sparse.core_point_mask)

    def test_explicit_eps_and_degenerate_inputs(self):
        planner = NeighborPlanner(**SPARSE)
        empty = DBSCAN(planner=planner).fit(np.zeros((0, 2)))
        assert empty.num_clusters == 0
        single = DBSCAN(planner=planner).fit(np.zeros((1, 2)))
        assert single.labels.size == 1
        blob = np.zeros((10, 2))
        dense = DBSCAN(eps=0.5, min_samples=2).fit(blob)
        sparse = DBSCAN(eps=0.5, min_samples=2, planner=planner).fit(blob)
        assert np.array_equal(dense.labels, sparse.labels)

    def test_precomputed_distances_stay_dense(self):
        features = random_features(6, n=30)
        distances = pairwise_distances(features)
        planner = NeighborPlanner(**SPARSE)
        with_matrix = DBSCAN(min_samples=2, planner=planner).fit(
            features, distances=distances
        )
        reference = DBSCAN(min_samples=2).fit(features)
        assert np.array_equal(with_matrix.labels, reference.labels)
        # supplying the matrix must not build sparse graphs
        assert planner.stats().sparse_graphs == 0


class TestSparseCoveringEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_selections_match_dense_across_seeds(self, metric):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(2, 80))
            m = int(rng.integers(1, 50))
            d = int(rng.integers(1, 7))
            question_features = random_features(seed, n=n, d=d)
            pool_features = random_features(seed + 500, n=m, d=d)
            questions = [make_pair(i) for i in range(n)]
            pool = [
                make_pair(1000 + i, MatchLabel(int(rng.integers(0, 2))))
                for i in range(m)
            ]
            batches = DiversityQuestionBatcher(batch_size=5, seed=seed).create_batches(
                questions, question_features
            )
            dense_selector = CoveringSelector(metric=metric)
            sparse_selector = CoveringSelector(
                metric=metric, planner=NeighborPlanner(**SPARSE)
            )
            dense = dense_selector.select(
                batches, question_features, pool, pool_features
            )
            sparse = sparse_selector.select(
                batches, question_features, pool, pool_features
            )
            assert dense.labeled_pool_indices == sparse.labeled_pool_indices
            for dense_batch, sparse_batch in zip(dense.per_batch, sparse.per_batch):
                assert dense_batch.pool_indices == sparse_batch.pool_indices
            assert dense_selector.last_diagnostics == sparse_selector.last_diagnostics

    def test_single_question_and_pool(self):
        questions = [make_pair(0)]
        pool = [make_pair(1, MatchLabel.NON_MATCH)]
        features = np.zeros((1, 3))
        batches = DiversityQuestionBatcher(batch_size=4).create_batches(
            questions, features
        )
        selector = CoveringSelector(planner=NeighborPlanner(**SPARSE))
        result = selector.select(batches, features, pool, np.zeros((1, 3)))
        assert result.per_batch[0].pool_indices == (0,)

    def test_empty_pool_raises(self):
        selector = CoveringSelector(planner=NeighborPlanner(**SPARSE))
        with pytest.raises(ValueError):
            selector.select([], np.zeros((2, 2)), [], np.zeros((0, 2)))

    def test_resolve_threshold_sparse_matches_dense(self):
        features = random_features(11)
        dense = CoveringSelector().resolve_threshold(features)
        sparse = CoveringSelector(
            planner=NeighborPlanner(**SPARSE)
        ).resolve_threshold(features)
        assert dense == sparse


class TestEndToEndGoldenEquivalence:
    """Fixed-seed BatchER runs are byte-identical with sparse planning forced."""

    @pytest.mark.parametrize("extractor", ["lr", "semantic"])
    def test_batcher_run_identical_with_sparse_planning(self, beer_dataset, extractor):
        from repro.core.batcher import BatchER
        from repro.core.config import BatcherConfig
        from repro.features.engine import FeatureStore
        from repro.features.factory import create_feature_extractor
        from repro.pipeline.context import PipelineContext
        from repro.pipeline.pipeline import Pipeline

        config = BatcherConfig(feature_extractor=extractor, seed=0, max_questions=60)
        reference = BatchER(config).run(beer_dataset)

        context = PipelineContext.from_dataset(beer_dataset, config)
        context.feature_store = FeatureStore(
            create_feature_extractor(extractor, beer_dataset.attributes),
            dense_planning_threshold=0,  # force sparse planning everywhere
        )
        Pipeline.default().run(context)
        sparse = context.result

        assert sparse is not None
        assert sparse.predictions == reference.predictions
        assert sparse.metrics == reference.metrics
        assert sparse.cost == reference.cost
        assert sparse.num_batches == reference.num_batches
        assert sparse.num_unanswered == reference.num_unanswered
        assert sparse.summary() == reference.summary()
        planning = context.feature_store.stats().planning
        assert planning["sparse_graphs"] >= 1
        assert planning["dense_graphs"] == 0

    def test_resolver_uses_store_planner(self, beer_dataset):
        from repro.core.config import BatcherConfig
        from repro.pipeline.resolver import Resolver

        resolver = Resolver.from_dataset(
            beer_dataset, config=BatcherConfig(max_questions=None)
        )
        assert resolver.planner is not None
        resolver.resolve(list(beer_dataset.splits.test)[:10])
        stats = resolver.feature_store.stats()
        assert "planning" in stats.to_dict()
        # Small chunks stay in the dense regime by default — the planner
        # routes (and counts) dense planning, never building a sparse graph,
        # and its dense provider populates the engine's distance cache.
        assert stats.planning["sparse_graphs"] == 0
        assert stats.planning["dense_graphs"] >= 1
        assert stats.planning["dense_radii"] >= 1
        assert stats.distance_misses >= 1


def blob_features(seed, n, d=6, blob_size=20):
    """Clustered (blobby) features: realistic geometry for the LSH recall tests."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(max(1, n // blob_size), d))
    assignments = rng.integers(0, len(centers), size=n)
    return centers[assignments] + rng.normal(scale=0.25, size=(n, d))


def edge_keys(graph):
    counts = np.diff(graph.indptr)
    rows = np.repeat(np.arange(graph.num_rows, dtype=np.uint64), counts)
    return rows * np.uint64(graph.num_cols) + graph.indices.astype(np.uint64)


def assert_subgraph(approx, exact, features, radius, metric="euclidean"):
    """Every LSH edge is an exact edge, modulo exact-boundary rounding ties.

    The LSH verifier and the blocked join use two different exact formulas
    that can disagree by one ulp (documented on ``build_lsh_neighbor_graph``);
    an extra edge is only a bug when its distance is genuinely away from the
    radius boundary.
    """
    extra = np.setdiff1d(edge_keys(approx), edge_keys(exact))
    if extra.size == 0:
        return
    from repro.clustering.distance import elementwise_distances

    n = exact.num_cols
    rows = (extra // np.uint64(n)).astype(np.int64)
    cols = (extra % np.uint64(n)).astype(np.int64)
    distances = elementwise_distances(features[rows], features[cols], metric)
    assert np.allclose(distances, radius, rtol=1e-9, atol=1e-12), (
        f"{extra.size} non-boundary false edges; distances {distances[:5]} "
        f"vs radius {radius}"
    )


class TestLSHNeighborGraph:
    """The approximate graph may miss edges but must never invent them."""

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    @pytest.mark.parametrize("inclusive", [True, False])
    def test_subgraph_of_exact_across_seeds(self, metric, inclusive):
        for seed in range(8):
            features = random_features(seed)
            distances = pairwise_distances(features, metric=metric)
            positive = distances[distances > 0]
            radius = float(np.median(positive)) if positive.size else 0.5
            exact = build_neighbor_graph(
                features, radius, metric=metric, inclusive=inclusive
            )
            approx, _ = build_lsh_neighbor_graph(
                features, radius, metric=metric, inclusive=inclusive
            )
            assert approx.num_rows == exact.num_rows
            assert_subgraph(approx, exact, features, radius, metric)
            for row in range(approx.num_rows):
                neighbours = approx.neighbors(row)
                assert row not in neighbours
                assert np.array_equal(neighbours, np.sort(neighbours))

    @pytest.mark.parametrize("n", [512, 4096])
    def test_recall_floor_on_blobby_workload(self, n):
        features = blob_features(17, n)
        radius = sample_percentile_radius(features, 0.5)
        exact = build_neighbor_graph(features, radius)
        approx, num_candidates = build_lsh_neighbor_graph(features, radius)
        assert num_candidates >= approx.num_edges
        # Subgraph + edge counts make the ratio the (clamped) edge recall.
        assert_subgraph(approx, exact, features, radius)
        assert exact.num_edges > 0
        assert min(1.0, approx.num_edges / exact.num_edges) >= 0.95

    def test_deterministic_across_calls(self):
        features = blob_features(3, 700)
        radius = sample_percentile_radius(features, 1.0)
        first, candidates_first = build_lsh_neighbor_graph(features, radius)
        second, candidates_second = build_lsh_neighbor_graph(features, radius)
        assert candidates_first == candidates_second
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.indices, second.indices)

    def test_small_inputs_fall_back_to_exact(self):
        empty, candidates = build_lsh_neighbor_graph(np.zeros((0, 3)), 1.0)
        assert empty.num_rows == 0 and candidates == 0
        single, candidates = build_lsh_neighbor_graph(np.zeros((1, 3)), 1.0)
        assert single.num_rows == 1 and single.num_edges == 0 and candidates == 0
        pair, _ = build_lsh_neighbor_graph(np.zeros((2, 3)), 1.0)
        assert pair.num_edges == 2  # coincident points within any radius

    def test_degenerate_radius_and_duplicates(self):
        features = np.zeros((50, 4))
        exact = build_neighbor_graph(features, 0.0, inclusive=True)
        approx, _ = build_lsh_neighbor_graph(features, 0.0, inclusive=True)
        assert np.array_equal(approx.indptr, exact.indptr)
        assert np.array_equal(approx.indices, exact.indices)

    def test_candidate_cap_bounds_row_candidates(self):
        features = blob_features(5, 600, d=4)
        radius = sample_percentile_radius(features, 25.0)  # huge neighbourhoods
        config = LSHConfig(candidate_cap=7)
        approx, _ = build_lsh_neighbor_graph(features, radius, config=config)
        assert int(np.diff(approx.indptr).max()) <= 7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            build_lsh_neighbor_graph(
                np.zeros((10, 2)), 1.0, config=LSHConfig(num_perm=64, bands=7)
            )
        with pytest.raises(ValueError):
            build_lsh_neighbor_graph(np.zeros(10), 1.0)


class TestLSHRouting:
    def test_use_lsh_thresholds(self):
        planner = NeighborPlanner(dense_threshold=10, approx_threshold=100)
        assert not planner.use_lsh(10)  # dense wins below the dense threshold
        assert not planner.use_lsh(100)  # at the threshold: still exact sparse
        assert planner.use_lsh(101)
        disabled = NeighborPlanner(dense_threshold=10, approx_threshold=None)
        assert not disabled.use_lsh(10**9)
        forced = NeighborPlanner(dense_threshold=0, approx_threshold=0)
        assert forced.use_lsh(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborPlanner(approx_threshold=-1)
        with pytest.raises(ValueError):
            NeighborPlanner(recall_oracle_max=-1)

    def test_lsh_stats_and_alias(self):
        features = blob_features(9, 300)
        planner = NeighborPlanner(dense_threshold=0, approx_threshold=0)
        radius = planner.resolve_radius(features, 1.0)
        planner.graph(features, radius)
        stats = planner.stats()
        assert stats.lsh_graphs == 1
        assert stats.sparse_graphs == 0
        assert stats.lsh_candidates >= stats.lsh_edges > 0
        as_dict = stats.to_dict()
        assert as_dict["lsh_routes"] == 1  # the serving-surface alias
        assert as_dict["lsh_recall_min"] is None  # oracle never ran

    def test_recall_oracle_records_minimum(self):
        features = blob_features(21, 400)
        planner = NeighborPlanner(
            dense_threshold=0, approx_threshold=0, recall_oracle_max=1024
        )
        radius = planner.resolve_radius(features, 1.0)
        planner.graph(features, radius)
        stats = planner.stats()
        assert stats.lsh_oracle_runs == 1
        assert stats.lsh_recall_min is not None
        assert 0.95 <= stats.lsh_recall_min <= 1.0

    def test_lsh_labels_match_exact_on_blobby_workload(self):
        # At full recall the approximate graph IS the exact graph, so DBSCAN
        # over it reproduces the exact labels.  The eps percentile stays in
        # the within-blob distance regime on purpose: the default (15.0)
        # resolves a whole-blob-scale radius whose giant LSH buckets are
        # exactly where truncation loses edges.  Everything is seeded, so the
        # full-recall premise asserted via the planner's oracle is stable.
        features = blob_features(13, 900)
        exact = DBSCAN(min_samples=2, eps_percentile=2.0).fit(features)
        planner = NeighborPlanner(
            dense_threshold=0, approx_threshold=0, recall_oracle_max=1024
        )
        approx = DBSCAN(min_samples=2, eps_percentile=2.0, planner=planner).fit(features)
        assert planner.stats().lsh_recall_min == 1.0
        assert np.array_equal(exact.labels, approx.labels)

    def test_cross_joins_stay_exact_under_forced_lsh(self):
        features = blob_features(7, 300)
        pool = blob_features(8, 40, d=features.shape[1])
        planner = NeighborPlanner(dense_threshold=0, approx_threshold=0)
        graph, nearest = planner.cross_graph(
            features, pool, 1.0, return_nearest=True
        )
        reference, reference_nearest = build_cross_neighbor_graph(
            features, pool, 1.0, return_nearest=True
        )
        assert np.array_equal(graph.indptr, reference.indptr)
        assert np.array_equal(graph.indices, reference.indices)
        assert np.array_equal(nearest, reference_nearest)
        assert planner.stats().lsh_graphs == 0

    def test_planner_spans_carry_regime(self):
        from repro.observability.tracing import Tracer

        tracer = Tracer()
        planner = NeighborPlanner(dense_threshold=4, approx_threshold=16)
        planner.tracer = tracer
        planner.graph(np.zeros((3, 2)), 1.0)  # dense
        planner.graph(np.ones((10, 2)), 1.0)  # exact sparse
        planner.graph(blob_features(2, 40, d=2), 1.0)  # lsh
        regimes = [
            span.attributes["regime"]
            for span in tracer.finished_spans()
            if span.name == "planner:graph"
        ]
        assert regimes == ["dense", "sparse", "lsh"]


class TestRadiusSeedStability:
    """Sampled radii are a pure function of (features, percentile, metric, seed)."""

    def test_call_order_independent(self):
        features_a = np.random.default_rng(0).normal(size=(300, 4))
        features_b = np.random.default_rng(1).normal(size=(280, 4))
        planner_one = NeighborPlanner(dense_threshold=0, sample_size=2000)
        planner_two = NeighborPlanner(dense_threshold=0, sample_size=2000)
        first = planner_one.resolve_radius(features_a, 10.0)
        # A different call history must not perturb later resolutions.
        planner_two.resolve_radius(features_b, 10.0)
        planner_two.resolve_radius(features_a, 35.0)
        assert planner_two.resolve_radius(features_a, 10.0) == first

    def test_content_and_seed_sensitivity(self):
        features = np.random.default_rng(2).normal(size=(300, 4))
        base = NeighborPlanner(dense_threshold=0, sample_size=2000)
        reseeded = NeighborPlanner(dense_threshold=0, sample_size=2000, seed=99)
        assert base.resolve_radius(features, 10.0) == NeighborPlanner(
            dense_threshold=0, sample_size=2000
        ).resolve_radius(features, 10.0)
        # A different planner seed draws a different sample (with overwhelming
        # probability on continuous data).
        assert reseeded.resolve_radius(features, 10.0) != base.resolve_radius(
            features, 10.0
        )

    def test_byte_stable_across_processes(self):
        # The sample seed is derived from the feature bytes via blake2b, not
        # from Python's per-process salted hash() — so a fresh interpreter
        # resolves the identical radius.
        script = (
            "import numpy as np\n"
            "from repro.clustering.neighbors import NeighborPlanner\n"
            "features = np.random.default_rng(7).normal(size=(300, 4))\n"
            "planner = NeighborPlanner(dense_threshold=0, sample_size=2000)\n"
            "print(repr(planner.resolve_radius(features, 10.0)))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        features = np.random.default_rng(7).normal(size=(300, 4))
        planner = NeighborPlanner(dense_threshold=0, sample_size=2000)
        assert completed.stdout.strip() == repr(planner.resolve_radius(features, 10.0))


class TestEndToEndForcedLSH:
    """Fixed-seed BatchER runs stay byte-identical with LSH planning forced.

    At benchmark scale the approximate graph achieves full recall, so every
    plan (batches, selections) and therefore every prediction must match the
    reference run exactly — LSH planning changes the route, not the result.
    """

    @pytest.mark.parametrize("dataset_fixture", ["beer_dataset", "fz_dataset"])
    def test_batcher_run_identical_with_forced_lsh(self, request, dataset_fixture):
        from repro.core.batcher import BatchER
        from repro.core.config import BatcherConfig
        from repro.features.engine import FeatureStore
        from repro.features.factory import create_feature_extractor
        from repro.pipeline.context import PipelineContext
        from repro.pipeline.pipeline import Pipeline

        dataset = request.getfixturevalue(dataset_fixture)
        config = BatcherConfig(seed=0, max_questions=60)
        reference = BatchER(config).run(dataset)

        context = PipelineContext.from_dataset(dataset, config)
        context.feature_store = FeatureStore(
            create_feature_extractor(config.feature_extractor, dataset.attributes),
            dense_planning_threshold=0,  # bypass the dense regime...
            approx_planning_threshold=0,  # ...and force LSH for every self-join
        )
        Pipeline.default().run(context)
        forced = context.result

        assert forced is not None
        assert forced.predictions == reference.predictions
        assert forced.metrics == reference.metrics
        assert forced.cost == reference.cost
        assert forced.num_batches == reference.num_batches
        assert forced.summary() == reference.summary()
        planning = context.feature_store.stats().planning
        assert planning["lsh_routes"] >= 1
        assert planning["dense_graphs"] == 0
