"""Tests for the dirtiness / corruption operators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.corruption import (
    CorruptionPipeline,
    abbreviate_tokens,
    append_noise_token,
    change_case,
    drop_token,
    introduce_typo,
    perturb_number,
    shuffle_tokens,
)

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters=" "),
    min_size=1,
    max_size=40,
)


class TestOperators:
    def setup_method(self):
        self.rng = random.Random(0)

    def test_typo_changes_or_keeps_length_by_one(self):
        value = "professional"
        corrupted = introduce_typo(value, self.rng)
        assert abs(len(corrupted) - len(value)) <= 1

    def test_typo_on_single_char_is_noop(self):
        assert introduce_typo("a", self.rng) == "a"

    def test_abbreviation_shortens_a_long_token(self):
        value = "Panasonic Professional Camcorder"
        corrupted = abbreviate_tokens(value, self.rng)
        assert corrupted != value
        assert "." in corrupted

    def test_abbreviation_noop_without_long_tokens(self):
        assert abbreviate_tokens("ab cd", self.rng) == "ab cd"

    def test_drop_token_keeps_at_least_one(self):
        assert drop_token("only", self.rng) == "only"
        dropped = drop_token("alpha beta gamma", self.rng)
        assert len(dropped.split()) == 2

    def test_shuffle_tokens_preserves_multiset(self):
        value = "alpha beta gamma delta"
        shuffled = shuffle_tokens(value, self.rng)
        assert sorted(shuffled.split()) == sorted(value.split())

    def test_change_case_preserves_letters(self):
        value = "Samsung LED TV"
        changed = change_case(value, self.rng)
        assert changed.lower() == value.lower()

    def test_append_noise_token_extends_value(self):
        value = "Here Comes the Fuzz"
        noisy = append_noise_token(value, self.rng)
        assert noisy.startswith(value)
        assert len(noisy) > len(value)

    def test_perturb_number_keeps_numeric_format(self):
        perturbed = perturb_number("19.99", self.rng)
        float(perturbed)  # must still parse

    def test_perturb_number_noop_on_non_numeric(self):
        assert perturb_number("abc", self.rng) == "abc"


class TestCorruptionPipeline:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorruptionPipeline(corruption_probability=1.5)
        with pytest.raises(ValueError):
            CorruptionPipeline(missing_probability=-0.1)
        with pytest.raises(ValueError):
            CorruptionPipeline(max_operations=0)

    def test_zero_probabilities_are_identity(self):
        pipeline = CorruptionPipeline(corruption_probability=0.0, missing_probability=0.0, seed=3)
        values = {"name": "golden dragon", "city": "seattle"}
        assert pipeline.corrupt_record_values(values) == values

    def test_full_missing_probability_drops_everything(self):
        pipeline = CorruptionPipeline(corruption_probability=0.0, missing_probability=1.0, seed=3)
        corrupted = pipeline.corrupt_record_values({"name": "golden dragon", "city": "austin"})
        assert corrupted == {"name": None, "city": None}

    def test_none_values_stay_none(self):
        pipeline = CorruptionPipeline(seed=1)
        assert pipeline.corrupt_value(None) is None

    def test_reproducibility_with_same_seed(self):
        values = {"title": "Samsung Portable LCD Monitor SX-1000", "price": "299.99"}
        first = CorruptionPipeline(corruption_probability=1.0, seed=11).corrupt_record_values(
            values, numeric_attributes=frozenset({"price"})
        )
        second = CorruptionPipeline(corruption_probability=1.0, seed=11).corrupt_record_values(
            values, numeric_attributes=frozenset({"price"})
        )
        assert first == second

    def test_numeric_attributes_stay_numeric_when_corrupted(self):
        pipeline = CorruptionPipeline(corruption_probability=1.0, missing_probability=0.0, seed=5)
        corrupted = pipeline.corrupt_record_values(
            {"price": "42.00"}, numeric_attributes=frozenset({"price"})
        )
        float(corrupted["price"])

    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_corrupt_value_always_string_or_none(self, value):
        pipeline = CorruptionPipeline(corruption_probability=1.0, missing_probability=0.2, seed=9)
        corrupted = pipeline.corrupt_value(value)
        assert corrupted is None or isinstance(corrupted, str)
