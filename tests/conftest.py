"""Shared fixtures for the test suite.

Datasets are generated once per session at small scales so the whole suite
stays fast while still exercising realistic data.
"""

from __future__ import annotations

import pytest

from repro.data.registry import load_dataset
from repro.engine.faults import CrashingLLM
from repro.features.structure_aware import StructureAwareExtractor
from repro.llm.registry import create_llm


@pytest.fixture(scope="session")
def beer_dataset():
    """The full-size (450-pair) Beer benchmark — small enough to use everywhere."""
    return load_dataset("beer", seed=7)


@pytest.fixture(scope="session")
def fz_dataset():
    """A scaled-down Fodors-Zagats benchmark."""
    return load_dataset("fz", seed=7, scale=0.5)


@pytest.fixture(scope="session")
def wa_dataset():
    """A small Walmart-Amazon benchmark (5 attributes, product domain)."""
    return load_dataset("wa", seed=7, scale=0.02)


@pytest.fixture(scope="session")
def beer_questions(beer_dataset):
    """The Beer test split as a list of questions."""
    return list(beer_dataset.splits.test)


@pytest.fixture(scope="session")
def beer_pool(beer_dataset):
    """The Beer train split as the unlabeled demonstration pool."""
    return list(beer_dataset.splits.train)


@pytest.fixture(scope="session")
def beer_extractor(beer_dataset):
    """Structure-aware (Levenshtein ratio) extractor for the Beer schema."""
    return StructureAwareExtractor(beer_dataset.attributes)


@pytest.fixture(scope="session")
def beer_question_features(beer_extractor, beer_questions):
    return beer_extractor.extract_matrix(beer_questions)


@pytest.fixture()
def checkpoint_dir(tmp_path):
    """A fresh per-test checkpoint root for engine crash/resume tests."""
    path = tmp_path / "checkpoints"
    path.mkdir()
    return path


@pytest.fixture()
def make_crashing_llm():
    """Factory building a deterministic :class:`CrashingLLM` for a config.

    The wrapped client is created exactly as the pipeline would create it
    (same model/seed/temperature), so successful calls are byte-identical to
    an unwrapped run and ``fail_at_call=k`` is the only difference.
    """

    def factory(config, fail_at_call: int) -> CrashingLLM:
        inner = create_llm(
            config.model, seed=config.seed, temperature=config.temperature
        )
        return CrashingLLM(inner, fail_at_call=fail_at_call)

    return factory


@pytest.fixture(scope="session")
def beer_pool_features(beer_extractor, beer_pool):
    return beer_extractor.extract_matrix(beer_pool)
