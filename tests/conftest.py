"""Shared fixtures for the test suite.

Datasets are generated once per session at small scales so the whole suite
stays fast while still exercising realistic data.
"""

from __future__ import annotations

import pytest

from repro.data.registry import load_dataset
from repro.features.structure_aware import StructureAwareExtractor


@pytest.fixture(scope="session")
def beer_dataset():
    """The full-size (450-pair) Beer benchmark — small enough to use everywhere."""
    return load_dataset("beer", seed=7)


@pytest.fixture(scope="session")
def fz_dataset():
    """A scaled-down Fodors-Zagats benchmark."""
    return load_dataset("fz", seed=7, scale=0.5)


@pytest.fixture(scope="session")
def wa_dataset():
    """A small Walmart-Amazon benchmark (5 attributes, product domain)."""
    return load_dataset("wa", seed=7, scale=0.02)


@pytest.fixture(scope="session")
def beer_questions(beer_dataset):
    """The Beer test split as a list of questions."""
    return list(beer_dataset.splits.test)


@pytest.fixture(scope="session")
def beer_pool(beer_dataset):
    """The Beer train split as the unlabeled demonstration pool."""
    return list(beer_dataset.splits.train)


@pytest.fixture(scope="session")
def beer_extractor(beer_dataset):
    """Structure-aware (Levenshtein ratio) extractor for the Beer schema."""
    return StructureAwareExtractor(beer_dataset.attributes)


@pytest.fixture(scope="session")
def beer_question_features(beer_extractor, beer_questions):
    return beer_extractor.extract_matrix(beer_questions)


@pytest.fixture(scope="session")
def beer_pool_features(beer_extractor, beer_pool):
    return beer_extractor.extract_matrix(beer_pool)
