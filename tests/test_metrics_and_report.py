"""Tests for the evaluation metrics and the table rendering helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import MatchLabel
from repro.evaluation import (
    confusion_counts,
    evaluate_predictions,
    format_markdown_table,
    format_table,
)

labels = st.lists(st.sampled_from([MatchLabel.MATCH, MatchLabel.NON_MATCH]), min_size=1, max_size=40)


class TestConfusionCounts:
    def test_known_counts(self):
        gold = [MatchLabel.MATCH, MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.NON_MATCH]
        pred = [MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.MATCH, MatchLabel.NON_MATCH]
        counts = confusion_counts(gold, pred)
        assert (counts.true_positives, counts.false_negatives) == (1, 1)
        assert (counts.false_positives, counts.true_negatives) == (1, 1)
        assert counts.total == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_counts([MatchLabel.MATCH], [])


class TestEvaluatePredictions:
    def test_perfect_predictions(self):
        gold = [MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.MATCH]
        metrics = evaluate_predictions(gold, gold)
        assert metrics.precision == 100.0
        assert metrics.recall == 100.0
        assert metrics.f1 == 100.0
        assert metrics.accuracy == 100.0

    def test_all_wrong(self):
        gold = [MatchLabel.MATCH, MatchLabel.NON_MATCH]
        pred = [MatchLabel.NON_MATCH, MatchLabel.MATCH]
        metrics = evaluate_predictions(gold, pred)
        assert metrics.f1 == 0.0

    def test_known_f1_value(self):
        # P = 2/3, R = 2/4 -> F1 = 2 * (2/3 * 1/2) / (2/3 + 1/2) = 57.14
        gold = [MatchLabel.MATCH] * 4 + [MatchLabel.NON_MATCH] * 3
        pred = [MatchLabel.MATCH, MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.NON_MATCH,
                MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.NON_MATCH]
        metrics = evaluate_predictions(gold, pred)
        assert metrics.f1 == pytest.approx(57.14, abs=0.01)

    def test_no_predicted_positives(self):
        gold = [MatchLabel.MATCH, MatchLabel.NON_MATCH]
        pred = [MatchLabel.NON_MATCH, MatchLabel.NON_MATCH]
        metrics = evaluate_predictions(gold, pred)
        assert metrics.precision == 0.0
        assert metrics.f1 == 0.0

    @given(gold=labels, flips=st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_f1_bounds_property(self, gold, flips):
        pred = list(gold)
        for i in range(min(flips, len(pred))):
            pred[i] = MatchLabel.MATCH if pred[i] is MatchLabel.NON_MATCH else MatchLabel.NON_MATCH
        metrics = evaluate_predictions(gold, pred)
        assert 0.0 <= metrics.f1 <= 100.0
        assert 0.0 <= metrics.precision <= 100.0
        assert 0.0 <= metrics.recall <= 100.0
        # F1 is the harmonic mean: it never exceeds either component.
        assert metrics.f1 <= max(metrics.precision, metrics.recall) + 1e-9
        assert metrics.f1 >= min(metrics.precision, metrics.recall) - 1e-9

    @given(gold=labels)
    @settings(max_examples=30, deadline=None)
    def test_perfect_prediction_property(self, gold):
        metrics = evaluate_predictions(gold, gold)
        if any(label is MatchLabel.MATCH for label in gold):
            assert metrics.f1 == 100.0
        assert metrics.accuracy == 100.0


class TestReportFormatting:
    ROWS = [
        {"dataset": "WA", "f1": 80.662, "api": 0.28},
        {"dataset": "Beer", "f1": 96.55, "api": 0.01},
    ]

    def test_plain_table_contains_all_cells(self):
        table = format_table(self.ROWS)
        assert "dataset" in table and "WA" in table and "96.55" in table

    def test_plain_table_column_selection_and_order(self):
        table = format_table(self.ROWS, columns=["f1", "dataset"])
        header = table.splitlines()[0]
        assert header.index("f1") < header.index("dataset")
        assert "api" not in header

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"
        assert format_markdown_table([]) == "(no rows)"

    def test_markdown_table_structure(self):
        table = format_markdown_table(self.ROWS)
        lines = table.splitlines()
        assert lines[0].startswith("| dataset")
        assert set(lines[1].replace("|", "").strip().split()) == {"---"}
        assert len(lines) == 4

    def test_floats_rounded_to_two_decimals(self):
        table = format_table(self.ROWS)
        assert "80.66" in table
        assert "80.662" not in table
