"""Tests for the core data model (records, tables, pairs, datasets, splits)."""

import pytest

from repro.data.schema import (
    CandidateSet,
    EntityPair,
    MatchLabel,
    Record,
    Table,
)


def make_record(record_id="A-0", **values):
    return Record(record_id=record_id, values=values or {"name": "golden dragon"})


def make_pair(pair_id="p0", label=MatchLabel.MATCH):
    return EntityPair(
        pair_id=pair_id,
        left=make_record("A-0", name="golden dragon", city="seattle"),
        right=make_record("B-0", name="golden dragon", city="seattle"),
        label=label,
    )


class TestMatchLabel:
    def test_from_bool(self):
        assert MatchLabel.from_bool(True) is MatchLabel.MATCH
        assert MatchLabel.from_bool(False) is MatchLabel.NON_MATCH

    def test_int_values(self):
        assert int(MatchLabel.MATCH) == 1
        assert int(MatchLabel.NON_MATCH) == 0


class TestRecord:
    def test_value_lookup(self):
        record = make_record(name="blue bistro", city="austin")
        assert record.value("city") == "austin"
        assert record.value("missing") is None

    def test_non_missing_attributes(self):
        record = Record("A-1", {"name": "x", "city": None, "phone": ""})
        assert record.non_missing_attributes() == ["name"]


class TestTable:
    def test_len_iter_and_lookup(self):
        records = tuple(make_record(f"A-{i}", name=f"r{i}") for i in range(3))
        table = Table(name="A", attributes=("name",), records=records)
        assert len(table) == 3
        assert [r.record_id for r in table] == ["A-0", "A-1", "A-2"]
        assert table.record_by_id("A-1").value("name") == "r1"

    def test_lookup_missing_record_raises(self):
        table = Table(name="A", attributes=("name",), records=(make_record(),))
        with pytest.raises(KeyError):
            table.record_by_id("nope")

    def test_schema_violation_raises(self):
        bad_record = Record("A-0", {"unexpected": "value"})
        with pytest.raises(ValueError, match="outside the schema"):
            Table(name="A", attributes=("name",), records=(bad_record,))


class TestEntityPair:
    def test_labeled_flag(self):
        assert make_pair().is_labeled
        assert not make_pair(label=None).is_labeled

    def test_with_label_and_without_label(self):
        pair = make_pair(label=None)
        labeled = pair.with_label(MatchLabel.NON_MATCH)
        assert labeled.label is MatchLabel.NON_MATCH
        assert labeled.pair_id == pair.pair_id
        assert labeled.without_label().label is None
        # The original is unchanged (immutability).
        assert pair.label is None


class TestCandidateSet:
    def test_len_iter_getitem(self):
        pairs = tuple(make_pair(f"p{i}") for i in range(4))
        candidates = CandidateSet(pairs)
        assert len(candidates) == 4
        assert candidates[2].pair_id == "p2"
        assert [p.pair_id for p in candidates] == ["p0", "p1", "p2", "p3"]

    def test_match_count_and_labeled(self):
        pairs = (
            make_pair("p0", MatchLabel.MATCH),
            make_pair("p1", MatchLabel.NON_MATCH),
            make_pair("p2", None),
        )
        candidates = CandidateSet(pairs)
        assert candidates.match_count() == 1
        assert len(candidates.labeled()) == 2

    def test_from_pairs_accepts_generator(self):
        candidates = CandidateSet.from_pairs(make_pair(f"p{i}") for i in range(2))
        assert len(candidates) == 2


class TestDataset:
    def test_statistics(self, beer_dataset):
        stats = beer_dataset.statistics()
        assert stats["code"] == "Beer"
        assert stats["num_attributes"] == 4
        assert stats["num_pairs"] == len(beer_dataset.candidate_pairs)
        assert stats["num_matches"] == beer_dataset.candidate_pairs.match_count()

    def test_attributes_shared_by_both_tables(self, beer_dataset):
        assert beer_dataset.table_a.attributes == beer_dataset.table_b.attributes
        assert beer_dataset.attributes == beer_dataset.table_a.attributes

    def test_splits_partition_all_pairs(self, beer_dataset):
        splits = beer_dataset.splits
        assert splits.total_pairs() == len(beer_dataset.candidate_pairs)
        all_ids = {p.pair_id for p in beer_dataset.candidate_pairs}
        split_ids = (
            {p.pair_id for p in splits.train}
            | {p.pair_id for p in splits.validation}
            | {p.pair_id for p in splits.test}
        )
        assert split_ids == all_ids
