"""Tests for the hashing sentence encoder (the offline SBERT substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.embeddings import HashingSentenceEncoder


class TestHashingSentenceEncoder:
    def setup_method(self):
        self.encoder = HashingSentenceEncoder(dimension=128)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            HashingSentenceEncoder(dimension=0)

    def test_output_shape(self):
        vector = self.encoder.encode("title: iphone 13, price: 799")
        assert vector.shape == (128,)

    def test_empty_text_is_zero_vector(self):
        assert np.allclose(self.encoder.encode(""), 0.0)
        assert np.allclose(self.encoder.encode(None), 0.0)

    def test_unit_norm(self):
        vector = self.encoder.encode("samsung galaxy tab 10.1")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_determinism(self):
        text = "authors: Stonebraker, DeWitt, venue: SIGMOD"
        assert np.allclose(self.encoder.encode(text), self.encoder.encode(text))

    def test_similar_texts_are_closer_than_dissimilar(self):
        anchor = "title: Here Comes the Fuzz, genre: Hip-Hop"
        near = "title: Here Comes The Fuzz [Explicit], genre: Music"
        far = "title: Database query optimization survey, venue: VLDB"
        assert self.encoder.similarity(anchor, near) > self.encoder.similarity(anchor, far)

    def test_encode_batch_shape_and_rows(self):
        texts = ["alpha beta", "gamma delta", "epsilon"]
        matrix = self.encoder.encode_batch(texts)
        assert matrix.shape == (3, 128)
        assert np.allclose(matrix[1], self.encoder.encode(texts[1]))

    def test_encode_batch_empty(self):
        assert self.encoder.encode_batch([]).shape == (0, 128)

    def test_char_ngrams_give_typo_robustness(self):
        with_ngrams = HashingSentenceEncoder(dimension=256, use_char_ngrams=True)
        without_ngrams = HashingSentenceEncoder(dimension=256, use_char_ngrams=False)
        clean = "panasonic camcorder"
        typo = "panasonc camcorder"
        assert with_ngrams.similarity(clean, typo) > without_ngrams.similarity(clean, typo)

    @given(st.text(max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_norm_is_zero_or_one(self, text):
        norm = float(np.linalg.norm(self.encoder.encode(text)))
        assert norm == pytest.approx(0.0) or norm == pytest.approx(1.0)

    @given(st.text(min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_maximal(self, text):
        vector = self.encoder.encode(text)
        if np.linalg.norm(vector) == 0.0:
            return
        assert self.encoder.similarity(text, text) == pytest.approx(1.0)
