"""Tests for the structure-aware and semantics-based feature extractors."""

import numpy as np
import pytest

from repro.data.schema import EntityPair, MatchLabel, Record
from repro.features import (
    SemanticExtractor,
    StructureAwareExtractor,
    create_feature_extractor,
)
from repro.features.structure_aware import BOTH_MISSING_SIMILARITY


def make_pair(left_values, right_values, label=MatchLabel.MATCH):
    return EntityPair(
        pair_id="p0",
        left=Record("A-0", left_values),
        right=Record("B-0", right_values),
        label=label,
    )


MUSIC_ATTRIBUTES = ("title", "album", "genre")


class TestStructureAwareExtractor:
    def test_dimension_equals_attribute_count(self):
        extractor = StructureAwareExtractor(MUSIC_ATTRIBUTES)
        assert extractor.dimension == 3

    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError):
            StructureAwareExtractor(())

    def test_identical_pair_has_all_ones(self):
        values = {"title": "Rashi", "album": "Here Comes the Fuzz", "genre": "Music"}
        extractor = StructureAwareExtractor(MUSIC_ATTRIBUTES)
        vector = extractor.extract(make_pair(values, dict(values)))
        assert np.allclose(vector, 1.0)

    def test_paper_example5_shape(self):
        # Paper Example 5: titles identical, album slightly different, genres
        # quite different -> monotonically decreasing similarities.
        extractor = StructureAwareExtractor(MUSIC_ATTRIBUTES)
        pair = make_pair(
            {"title": "Rashi", "album": "Here Comes the Fuzz", "genre": "Dance,Music,Hip-Hop"},
            {"title": "Rashi", "album": "Here Comes The Fuzz [Explicit]", "genre": "Music"},
        )
        vector = extractor.extract(pair)
        assert vector[0] == pytest.approx(1.0)
        assert 0.5 < vector[1] < 1.0
        assert vector[2] < vector[1]

    def test_missing_value_handling(self):
        extractor = StructureAwareExtractor(MUSIC_ATTRIBUTES)
        pair = make_pair(
            {"title": "Rashi", "album": None, "genre": None},
            {"title": "Rashi", "album": "FOUR", "genre": None},
        )
        vector = extractor.extract(pair)
        assert vector[1] == 0.0  # one side missing
        assert vector[2] == BOTH_MISSING_SIMILARITY  # both sides missing

    def test_jaccard_variant_uses_token_sets(self):
        extractor = StructureAwareExtractor(("title",), similarity="jaccard")
        pair = make_pair({"title": "red wireless mouse"}, {"title": "wireless red mouse"})
        assert extractor.extract(pair)[0] == pytest.approx(1.0)

    def test_extract_matrix_shape(self, beer_dataset, beer_extractor):
        pairs = list(beer_dataset.splits.test)[:10]
        matrix = beer_extractor.extract_matrix(pairs)
        assert matrix.shape == (10, len(beer_dataset.attributes))
        assert ((matrix >= 0.0) & (matrix <= 1.0)).all()

    def test_extract_matrix_empty(self, beer_extractor):
        assert beer_extractor.extract_matrix([]).shape == (0, beer_extractor.dimension)

    def test_values_bounded(self, beer_dataset, beer_question_features):
        assert ((beer_question_features >= 0.0) & (beer_question_features <= 1.0)).all()


class TestSemanticExtractor:
    def test_dimension_from_encoder(self):
        extractor = SemanticExtractor(MUSIC_ATTRIBUTES)
        assert extractor.dimension == 256

    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError):
            SemanticExtractor(())

    def test_deterministic(self):
        extractor = SemanticExtractor(MUSIC_ATTRIBUTES)
        pair = make_pair(
            {"title": "Rashi", "album": "Here Comes the Fuzz", "genre": "Music"},
            {"title": "Rashi", "album": "Here Comes The Fuzz", "genre": "Pop"},
        )
        assert np.allclose(extractor.extract(pair), extractor.extract(pair))

    def test_similar_pairs_have_similar_embeddings(self):
        extractor = SemanticExtractor(MUSIC_ATTRIBUTES)
        base = make_pair(
            {"title": "Rashi", "album": "Here Comes the Fuzz", "genre": "Music"},
            {"title": "Rashi", "album": "Here Comes The Fuzz", "genre": "Music"},
        )
        near = make_pair(
            {"title": "Rashi", "album": "Here Comes the Fuzz", "genre": "Pop"},
            {"title": "Rashi", "album": "Here Comes The Fuzz", "genre": "Music"},
        )
        far = make_pair(
            {"title": "Act My Age", "album": "FOUR", "genre": "Pop"},
            {"title": "Change My Mind", "album": "Take Me Home", "genre": "Pop"},
        )
        base_vector = extractor.extract(base)
        assert np.linalg.norm(base_vector - extractor.extract(near)) < np.linalg.norm(
            base_vector - extractor.extract(far)
        )


class TestFactory:
    def test_lr_variant(self):
        extractor = create_feature_extractor("lr", MUSIC_ATTRIBUTES)
        assert isinstance(extractor, StructureAwareExtractor)
        assert extractor.similarity_name == "levenshtein_ratio"

    def test_jaccard_aliases(self):
        for alias in ("jaccard", "JAC", "jac"):
            extractor = create_feature_extractor(alias, MUSIC_ATTRIBUTES)
            assert extractor.similarity_name == "jaccard"

    def test_semantic_aliases(self):
        for alias in ("semantic", "SEM", "sbert"):
            assert isinstance(create_feature_extractor(alias, MUSIC_ATTRIBUTES), SemanticExtractor)

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError, match="unknown feature extractor"):
            create_feature_extractor("tfidf", MUSIC_ATTRIBUTES)
