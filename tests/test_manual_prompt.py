"""Tests for the ManualPrompt baseline."""

import pytest

from repro.baselines.manual_prompt import ManualPromptBaseline
from repro.core.config import BatcherConfig
from repro.data.schema import MatchLabel


class TestDemonstrationDesign:
    def test_budget_respected_and_balanced(self, beer_dataset):
        baseline = ManualPromptBaseline(BatcherConfig(num_demonstrations=8, seed=0))
        demos = baseline.design_demonstrations(beer_dataset)
        assert 1 <= len(demos) <= 8
        labels = {demo.label for demo in demos}
        assert labels == {MatchLabel.MATCH, MatchLabel.NON_MATCH}
        assert all(demo.is_labeled for demo in demos)

    def test_demonstrations_are_distinct(self, beer_dataset):
        baseline = ManualPromptBaseline(BatcherConfig(num_demonstrations=8, seed=0))
        demos = baseline.design_demonstrations(beer_dataset)
        assert len({demo.pair_id for demo in demos}) == len(demos)

    def test_deterministic(self, beer_dataset):
        config = BatcherConfig(num_demonstrations=6, seed=0)
        first = ManualPromptBaseline(config).design_demonstrations(beer_dataset)
        second = ManualPromptBaseline(config).design_demonstrations(beer_dataset)
        assert [demo.pair_id for demo in first] == [demo.pair_id for demo in second]


class TestManualPromptRun:
    def test_run_reports_standard_prompting_costs(self, beer_dataset):
        config = BatcherConfig(num_demonstrations=8, seed=1, max_questions=40)
        result = ManualPromptBaseline(config).run(beer_dataset)
        assert result.method == "manual-prompt"
        assert result.num_questions == 40
        # Standard prompting: one LLM call per question.
        assert result.cost.num_llm_calls == 40
        assert result.cost.api_cost > 0.0
        assert 0.0 <= result.metrics.f1 <= 100.0

    def test_reasonable_accuracy_on_easy_dataset(self, fz_dataset):
        config = BatcherConfig(num_demonstrations=8, seed=1, max_questions=80)
        result = ManualPromptBaseline(config).run(fz_dataset)
        assert result.metrics.f1 > 50.0
