"""Tests for prompt construction and answer parsing."""

import pytest

from repro.data.schema import EntityPair, MatchLabel, Record
from repro.prompting import (
    BatchPromptBuilder,
    StandardPromptBuilder,
    parse_batch_answers,
    parse_standard_answer,
)
from repro.prompting.templates import render_demonstration, render_question
from repro.text.tokenizer import count_tokens


def make_pair(pair_id="p0", label=MatchLabel.MATCH):
    return EntityPair(
        pair_id=pair_id,
        left=Record(f"A-{pair_id}", {"title": f"item {pair_id} alpha", "price": "9.99"}),
        right=Record(f"B-{pair_id}", {"title": f"item {pair_id} alpha", "price": "9.99"}),
        label=label,
    )


ATTRIBUTES = ("title", "price")


class TestTemplates:
    def test_demonstration_includes_label_word(self):
        text = render_demonstration(1, make_pair(label=MatchLabel.MATCH), ATTRIBUTES)
        assert text.startswith("[D1]")
        assert "Answer: Yes" in text
        text = render_demonstration(2, make_pair(label=MatchLabel.NON_MATCH), ATTRIBUTES)
        assert "Answer: No" in text

    def test_unlabeled_demonstration_rejected(self):
        with pytest.raises(ValueError, match="no label"):
            render_demonstration(1, make_pair(label=None), ATTRIBUTES)

    def test_question_has_no_answer(self):
        text = render_question(3, make_pair(), ATTRIBUTES)
        assert text.startswith("[Q3]")
        assert "Answer:" not in text
        assert "Entity A:" in text and "Entity B:" in text


class TestStandardPromptBuilder:
    def test_prompt_contains_all_sections(self):
        builder = StandardPromptBuilder(ATTRIBUTES)
        demos = [make_pair("d0"), make_pair("d1", MatchLabel.NON_MATCH)]
        prompt = builder.build(make_pair("q0"), demos)
        assert prompt.style == "standard"
        assert prompt.num_questions == 1
        assert prompt.num_demonstrations == 2
        assert "[D1]" in prompt.text and "[D2]" in prompt.text
        assert "[Q1]" in prompt.text
        assert "entity resolution" in prompt.text.lower()

    def test_zero_shot_prompt(self):
        prompt = StandardPromptBuilder(ATTRIBUTES).build(make_pair("q0"), [])
        assert "[D1]" not in prompt.text
        assert prompt.num_demonstrations == 0

    def test_build_all_shares_demonstrations(self):
        builder = StandardPromptBuilder(ATTRIBUTES)
        questions = [make_pair(f"q{i}") for i in range(3)]
        prompts = builder.build_all(questions, [make_pair("d0")])
        assert len(prompts) == 3
        assert all(prompt.num_demonstrations == 1 for prompt in prompts)


class TestBatchPromptBuilder:
    def test_prompt_contains_every_question_once(self):
        builder = BatchPromptBuilder(ATTRIBUTES)
        questions = [make_pair(f"q{i}") for i in range(4)]
        prompt = builder.build(questions, [make_pair("d0")])
        assert prompt.style == "batch"
        assert prompt.num_questions == 4
        for index in range(1, 5):
            assert f"[Q{index}]" in prompt.text
        assert "[Q5]" not in prompt.text

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one question"):
            BatchPromptBuilder(ATTRIBUTES).build([], [make_pair("d0")])

    def test_batch_prompt_cheaper_per_question_than_standard(self):
        questions = [make_pair(f"q{i}") for i in range(8)]
        demos = [make_pair(f"d{i}") for i in range(8)]
        batch_prompt = BatchPromptBuilder(ATTRIBUTES).build(questions, demos)
        standard_prompts = StandardPromptBuilder(ATTRIBUTES).build_all(questions, demos)
        batch_tokens = count_tokens(batch_prompt.text)
        standard_tokens = sum(count_tokens(prompt.text) for prompt in standard_prompts)
        # The paper's headline: batching amortises task description and
        # demonstrations over the whole batch (4x-7x savings at batch size 8).
        assert standard_tokens / batch_tokens > 3.0


class TestStandardAnswerParsing:
    def test_yes_answer(self):
        parsed = parse_standard_answer("Answer: Yes, both records describe the same product.")
        assert parsed.labels == (MatchLabel.MATCH,)

    def test_no_answer(self):
        parsed = parse_standard_answer("Answer: No, the model numbers differ.")
        assert parsed.labels == (MatchLabel.NON_MATCH,)

    def test_casual_phrasing(self):
        assert parse_standard_answer("yes — same entity").labels == (MatchLabel.MATCH,)
        assert parse_standard_answer("No.").labels == (MatchLabel.NON_MATCH,)

    def test_unparseable_answer(self):
        parsed = parse_standard_answer("I am not sure about this one.")
        assert parsed.labels == (None,)
        assert parsed.num_unanswered == 1
        assert parsed.resolved() == (MatchLabel.NON_MATCH,)

    def test_empty_answer(self):
        assert parse_standard_answer("").labels == (None,)


class TestBatchAnswerParsing:
    def test_indexed_answers(self):
        response = "A1: Yes, same item.\nA2: No, different brands.\nA3: Yes."
        parsed = parse_batch_answers(response, 3)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.MATCH)
        assert parsed.num_unanswered == 0

    def test_out_of_order_answers(self):
        response = "A2: No\nA1: Yes"
        parsed = parse_batch_answers(response, 2)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH)

    def test_q_prefix_and_numbered_list(self):
        response = "Q1: yes\n2. no\n3) yes"
        parsed = parse_batch_answers(response, 3)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.MATCH)

    def test_dash_separated_answers(self):
        response = "A1 - Yes, same item.\nA2 - No, different brands."
        parsed = parse_batch_answers(response, 2)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH)

    def test_equals_separated_answers(self):
        response = "Q1 = no\nQ2 = yes\n3 = no"
        parsed = parse_batch_answers(response, 3)
        assert parsed.labels == (MatchLabel.NON_MATCH, MatchLabel.MATCH, MatchLabel.NON_MATCH)

    def test_mixed_separator_styles(self):
        response = "A1: Yes\nA2 - no\nQ3 = yes"
        parsed = parse_batch_answers(response, 3)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.MATCH)
        assert parsed.num_unanswered == 0

    def test_bare_yes_no_lines_in_order(self):
        response = "yes\nno\nno"
        parsed = parse_batch_answers(response, 3)
        assert parsed.labels == (MatchLabel.MATCH, MatchLabel.NON_MATCH, MatchLabel.NON_MATCH)

    def test_missing_answers_reported(self):
        response = "A1: Yes"
        parsed = parse_batch_answers(response, 3)
        assert parsed.labels[0] is MatchLabel.MATCH
        assert parsed.num_unanswered == 2
        assert parsed.resolved(MatchLabel.NON_MATCH)[1] is MatchLabel.NON_MATCH

    def test_out_of_range_indices_ignored(self):
        response = "A7: Yes\nA1: No"
        parsed = parse_batch_answers(response, 2)
        assert parsed.labels == (MatchLabel.NON_MATCH, None)

    def test_empty_response(self):
        parsed = parse_batch_answers("", 4)
        assert parsed.num_unanswered == 4

    def test_refusal_text(self):
        parsed = parse_batch_answers(
            "I am sorry, I cannot answer multiple questions in a single response.", 5
        )
        assert parsed.num_unanswered == 5

    def test_single_question_batch_accepts_standard_style(self):
        # A batch that degenerates to one question (e.g. a micro-batch
        # deadline firing with a lone request) is often answered in
        # standard-prompting style with no index.
        parsed = parse_batch_answers("Answer: Yes, same beer.", 1)
        assert parsed.labels == (MatchLabel.MATCH,)
        parsed = parse_batch_answers("Answer: No, the breweries differ.", 1)
        assert parsed.labels == (MatchLabel.NON_MATCH,)

    def test_single_question_standard_fallback_only_for_one_question(self):
        # With several questions, an unindexed standard-style line must NOT
        # silently answer all of them.
        parsed = parse_batch_answers("Answer: Yes.", 3)
        assert parsed.num_unanswered == 3

    def test_single_question_prose_is_not_an_answer(self):
        # The fallback is line-anchored: keywords buried in explanatory prose
        # must stay unanswered (a cached misparse would be served forever).
        parsed = parse_batch_answers(
            "The brewery names do not match exactly, so I cannot decide.", 1
        )
        assert parsed.labels == (None,)
